#include "bench/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_allocations{0};
std::atomic<uint64_t> g_bytes{0};

void* CountedAlloc(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(size_t size, size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of alignment.
  const size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
}

}  // namespace

namespace antipode {
namespace benchhook {

uint64_t AllocationCount() { return g_allocations.load(std::memory_order_relaxed); }
uint64_t AllocatedBytes() { return g_bytes.load(std::memory_order_relaxed); }

}  // namespace benchhook
}  // namespace antipode

// Replaceable global allocation functions ([new.delete]): every form routes
// through the two counted helpers above. Throwing forms keep the required
// bad_alloc contract.

void* operator new(size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](size_t size) { return ::operator new(size); }

void* operator new(size_t size, const std::nothrow_t&) noexcept { return CountedAlloc(size); }

void* operator new[](size_t size, const std::nothrow_t&) noexcept { return CountedAlloc(size); }

void* operator new(size_t size, std::align_val_t alignment) {
  void* p = CountedAlignedAlloc(size, static_cast<size_t>(alignment));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(size_t size, std::align_val_t alignment, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<size_t>(alignment));
}

void* operator new[](size_t size, std::align_val_t alignment, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t, std::align_val_t) noexcept { std::free(p); }
