// Schema check for the BENCH_*.json artifacts: parses the document with a
// minimal recursive-descent JSON reader (no dependencies) and asserts the
// keys every future PR's delta-comparison relies on. Dispatches on the root
// "bench" tag:
//
//   * (absent) / load_sweep — a non-empty `phases` array whose every element
//     carries peak_req_s, p50/p99/p999, an enforcement `backend` tag, the
//     strategy's metadata_bytes_per_req, and a scoped_skips count (with at
//     least one phase actually backend-tagged, and a locality phase pair —
//     scoped with scoped_skips>0, plus an unscoped baseline).
//   * trace_mesh — additionally a `graph` shape block proving the deep-graph
//     regime (min_stateful_calls ≥ 20, min_depth ≥ 5, and ≥200 live services
//     on non-quick runs), a `carry` array with the legacy-vs-native lineage
//     carry pair at ≥20 deps, per-phase violations (must be 0 under
//     enforcement) and allocs_per_req, both enforcement backends present,
//     and the scoped/unscoped global-barrier pair.
//   * sim_sweep — the deterministic seed-sweep verdict: seeds_run ≥ 200,
//     always_violations == 0, unreached_sometimes == 0, a configs array
//     covering both enforcement backends × scoped/unscoped with episodes in
//     every cell, a non-empty properties array (name/kind/passes/failures,
//     every SOMETIMES and REACHABLE with passes > 0, every ALWAYS with
//     failures == 0), and a replay block with checked ≥ 1, mismatches == 0.
//
// Usage: validate_bench_json <path> — exit 0 on a valid report, 1 with a
// diagnostic otherwise. Wired into bench-smoke right after each bench's
// --quick run emits its file.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace {

// A parsed JSON value. Only what the schema check needs: object/array
// containers, numbers, and a catch-all for the scalar leaves.
struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;
  bool boolean = false;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after document");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Expect("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      if (!Consume(':')) {
        return Fail("expected ':' after key \"" + key + "\"");
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"':
          case '\\':
          case '/':
            out->push_back(escaped);
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
          case 'f':
            out->push_back(' ');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            pos_ += 4;            // skip the code point
            out->push_back('?');  // keys never use \u; value fidelity not needed
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseLiteral(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_[pos_] == 't') {
      out->boolean = true;
      return Expect("true");
    }
    out->boolean = false;
    return Expect("false");
  }

  bool Expect(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    out->kind = JsonValue::Kind::kNumber;
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    out->number = std::atof(std::string(text_.substr(start, pos_ - start)).c_str());
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

// Checks that `value` (phase `index` of the artifact) has every key in
// `keys` with JSON kind `kind`; returns the number of schema errors.
int RequireFields(const JsonValue& value, size_t index, const char* const* keys, size_t num_keys,
                  JsonValue::Kind kind, const char* kind_name) {
  int errors = 0;
  for (size_t k = 0; k < num_keys; ++k) {
    const JsonValue* field = value.Find(keys[k]);
    if (field == nullptr) {
      std::fprintf(stderr, "validate_bench_json: phases[%zu] missing \"%s\"\n", index, keys[k]);
      ++errors;
    } else if (field->kind != kind) {
      std::fprintf(stderr, "validate_bench_json: phases[%zu].%s is not a %s\n", index, keys[k],
                   kind_name);
      ++errors;
    }
  }
  return errors;
}

double NumberOr(const JsonValue& value, const std::string& key, double fallback) {
  const JsonValue* field = value.Find(key);
  return field != nullptr && field->kind == JsonValue::Kind::kNumber ? field->number : fallback;
}

bool BoolOr(const JsonValue& value, const std::string& key, bool fallback) {
  const JsonValue* field = value.Find(key);
  return field != nullptr && field->kind == JsonValue::Kind::kBool ? field->boolean : fallback;
}

// The trace-mesh macrobench schema (emitted by bench/trace_mesh, documented
// in DESIGN.md §14).
int CheckTraceMesh(const char* path, const JsonValue& root) {
  int errors = 0;
  const bool quick = BoolOr(root, "quick", false);

  // Graph-shape block: the acceptance regime must be visible in the artifact.
  const JsonValue* graph = root.Find("graph");
  if (graph == nullptr || graph->kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "validate_bench_json: missing \"graph\" shape object\n");
    ++errors;
  } else {
    const double live = NumberOr(*graph, "live_services", 0.0);
    const double min_stateful = NumberOr(*graph, "min_stateful_calls", 0.0);
    const double min_depth = NumberOr(*graph, "min_depth", 0.0);
    if (min_stateful < 20) {
      std::fprintf(stderr,
                   "validate_bench_json: graph.min_stateful_calls %.0f < 20 — not the "
                   "deep-graph regime\n",
                   min_stateful);
      ++errors;
    }
    if (min_depth < 5) {
      std::fprintf(stderr, "validate_bench_json: graph.min_depth %.0f < 5\n", min_depth);
      ++errors;
    }
    if (!quick && live < 200) {
      std::fprintf(stderr,
                   "validate_bench_json: graph.live_services %.0f < 200 on a full run\n", live);
      ++errors;
    }
  }

  // Carry pair: the legacy-vs-native lineage-carry comparison at ≥20 deps.
  const JsonValue* carry = root.Find("carry");
  bool carry_legacy = false;
  bool carry_native = false;
  if (carry == nullptr || carry->kind != JsonValue::Kind::kArray || carry->array.empty()) {
    std::fprintf(stderr, "validate_bench_json: missing or empty \"carry\" array\n");
    ++errors;
  } else {
    for (const JsonValue& point : carry->array) {
      if (point.kind != JsonValue::Kind::kObject ||
          point.Find("p50_ns") == nullptr || point.Find("allocs_per_hop") == nullptr) {
        std::fprintf(stderr, "validate_bench_json: malformed carry point\n");
        ++errors;
        continue;
      }
      if (NumberOr(point, "deps", 0.0) >= 20) {
        (BoolOr(point, "native", false) ? carry_native : carry_legacy) = true;
      }
    }
    if (!carry_legacy || !carry_native) {
      std::fprintf(stderr,
                   "validate_bench_json: carry array lacks the legacy/native pair at "
                   ">=20 deps\n");
      ++errors;
    }
  }

  const JsonValue* phases = root.Find("phases");
  if (phases == nullptr || phases->kind != JsonValue::Kind::kArray || phases->array.empty()) {
    std::fprintf(stderr, "validate_bench_json: missing or empty \"phases\" array\n");
    return 1;
  }
  const char* required_numbers[] = {"peak_req_s",   "p50_ms",
                                    "p99_ms",       "p999_ms",
                                    "scoped_skips", "metadata_bytes_per_req",
                                    "violations",   "allocs_per_req"};
  const char* required_strings[] = {"name", "backend"};
  const char* required_bools[] = {"antipode", "native_slot", "use_scope"};
  bool any_lineage = false;
  bool any_frontier = false;
  bool any_scoped_engaged = false;
  bool any_unscoped = false;
  for (size_t i = 0; i < phases->array.size(); ++i) {
    const JsonValue& phase = phases->array[i];
    if (phase.kind != JsonValue::Kind::kObject) {
      std::fprintf(stderr, "validate_bench_json: phases[%zu] is not an object\n", i);
      ++errors;
      continue;
    }
    errors += RequireFields(phase, i, required_numbers,
                            sizeof(required_numbers) / sizeof(required_numbers[0]),
                            JsonValue::Kind::kNumber, "number");
    errors += RequireFields(phase, i, required_strings,
                            sizeof(required_strings) / sizeof(required_strings[0]),
                            JsonValue::Kind::kString, "string");
    errors += RequireFields(phase, i, required_bools,
                            sizeof(required_bools) / sizeof(required_bools[0]),
                            JsonValue::Kind::kBool, "bool");
    const JsonValue* backend = phase.Find("backend");
    if (backend != nullptr && backend->kind == JsonValue::Kind::kString) {
      any_lineage |= backend->string == "lineage";
      any_frontier |= backend->string == "stable_frontier";
    }
    const bool antipode = BoolOr(phase, "antipode", false);
    if (antipode && NumberOr(phase, "violations", -1.0) != 0.0) {
      std::fprintf(stderr,
                   "validate_bench_json: phases[%zu] ran under enforcement with %.0f XCY "
                   "violations\n",
                   i, NumberOr(phase, "violations", -1.0));
      ++errors;
    }
    if (antipode) {
      if (BoolOr(phase, "use_scope", true)) {
        any_scoped_engaged |= NumberOr(phase, "scoped_skips", 0.0) > 0;
      } else {
        any_unscoped = true;
      }
    }
  }
  if (!any_lineage || !any_frontier) {
    std::fprintf(stderr,
                 "validate_bench_json: need phases under both enforcement backends "
                 "(lineage + stable_frontier)\n");
    ++errors;
  }
  if (!any_scoped_engaged || !any_unscoped) {
    std::fprintf(stderr,
                 "validate_bench_json: missing the scoped/unscoped barrier pair (one scoped "
                 "phase with scoped_skips>0, one with use_scope=false)\n");
    ++errors;
  }
  if (errors != 0) {
    return 1;
  }
  std::printf("validate_bench_json: %s OK (trace_mesh, %zu phases)\n", path,
              phases->array.size());
  return 0;
}

// The deterministic seed-sweep verdict artifact (emitted by bench/sim_sweep,
// documented in DESIGN.md §15).
int CheckSimSweep(const char* path, const JsonValue& root) {
  int errors = 0;

  const double seeds_run = NumberOr(root, "seeds_run", -1.0);
  if (seeds_run < 200) {
    std::fprintf(stderr, "validate_bench_json: seeds_run %.0f < 200\n", seeds_run);
    ++errors;
  }
  if (NumberOr(root, "always_violations", -1.0) != 0.0) {
    std::fprintf(stderr, "validate_bench_json: always_violations %.0f != 0\n",
                 NumberOr(root, "always_violations", -1.0));
    ++errors;
  }
  if (NumberOr(root, "unreached_sometimes", -1.0) != 0.0) {
    std::fprintf(stderr,
                 "validate_bench_json: %.0f SOMETIMES/REACHABLE properties never reached\n",
                 NumberOr(root, "unreached_sometimes", -1.0));
    ++errors;
  }
  if (NumberOr(root, "failing_seeds", -1.0) != 0.0) {
    std::fprintf(stderr, "validate_bench_json: failing_seeds %.0f != 0\n",
                 NumberOr(root, "failing_seeds", -1.0));
    ++errors;
  }

  // Config grid: both backends × scoped/unscoped, every cell exercised.
  const JsonValue* configs = root.Find("configs");
  if (configs == nullptr || configs->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "validate_bench_json: missing \"configs\" array\n");
    ++errors;
  } else {
    const char* required[] = {"lineage/scoped", "lineage/unscoped", "frontier/scoped",
                              "frontier/unscoped"};
    for (const char* label : required) {
      bool found = false;
      for (const JsonValue& config : configs->array) {
        const JsonValue* name = config.Find("label");
        if (name != nullptr && name->kind == JsonValue::Kind::kString &&
            name->string == label && NumberOr(config, "episodes", 0.0) > 0) {
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr,
                     "validate_bench_json: config cell \"%s\" missing or ran 0 episodes\n",
                     label);
        ++errors;
      }
    }
  }

  // Per-property verdicts. ALWAYS must be failure-free; SOMETIMES/REACHABLE
  // must have actually passed at least once over the sweep.
  const JsonValue* properties = root.Find("properties");
  if (properties == nullptr || properties->kind != JsonValue::Kind::kArray ||
      properties->array.empty()) {
    std::fprintf(stderr, "validate_bench_json: missing or empty \"properties\" array\n");
    ++errors;
  } else {
    for (size_t i = 0; i < properties->array.size(); ++i) {
      const JsonValue& property = properties->array[i];
      const JsonValue* name = property.Find("name");
      const JsonValue* kind = property.Find("kind");
      if (name == nullptr || name->kind != JsonValue::Kind::kString || kind == nullptr ||
          kind->kind != JsonValue::Kind::kString ||
          property.Find("passes") == nullptr || property.Find("failures") == nullptr) {
        std::fprintf(stderr, "validate_bench_json: malformed properties[%zu]\n", i);
        ++errors;
        continue;
      }
      const double passes = NumberOr(property, "passes", 0.0);
      const double failures = NumberOr(property, "failures", 0.0);
      if (kind->string == "ALWAYS" && failures != 0.0) {
        std::fprintf(stderr, "validate_bench_json: ALWAYS property \"%s\" has %.0f failures\n",
                     name->string.c_str(), failures);
        ++errors;
      }
      if ((kind->string == "SOMETIMES" || kind->string == "REACHABLE") && passes <= 0.0) {
        std::fprintf(stderr, "validate_bench_json: %s property \"%s\" was never reached\n",
                     kind->string.c_str(), name->string.c_str());
        ++errors;
      }
    }
  }

  // Replay determinism: at least one seed re-run, zero trace-hash mismatches.
  const JsonValue* replay = root.Find("replay");
  if (replay == nullptr || replay->kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "validate_bench_json: missing \"replay\" object\n");
    ++errors;
  } else {
    if (NumberOr(*replay, "checked", 0.0) < 1) {
      std::fprintf(stderr, "validate_bench_json: replay.checked %.0f < 1\n",
                   NumberOr(*replay, "checked", 0.0));
      ++errors;
    }
    if (NumberOr(*replay, "mismatches", -1.0) != 0.0) {
      std::fprintf(stderr, "validate_bench_json: replay.mismatches %.0f != 0\n",
                   NumberOr(*replay, "mismatches", -1.0));
      ++errors;
    }
  }

  if (errors != 0) {
    return 1;
  }
  std::printf("validate_bench_json: %s OK (sim_sweep, %.0f seeds)\n", path, seeds_run);
  return 0;
}

int Check(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "validate_bench_json: cannot open %s\n", path);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  JsonValue root;
  Parser parser(text);
  if (!parser.Parse(&root)) {
    std::fprintf(stderr, "validate_bench_json: %s does not parse: %s\n", path,
                 parser.error().c_str());
    return 1;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "validate_bench_json: top level is not an object\n");
    return 1;
  }
  const JsonValue* bench = root.Find("bench");
  if (bench != nullptr && bench->kind == JsonValue::Kind::kString &&
      bench->string == "trace_mesh") {
    return CheckTraceMesh(path, root);
  }
  if (bench != nullptr && bench->kind == JsonValue::Kind::kString &&
      bench->string == "sim_sweep") {
    return CheckSimSweep(path, root);
  }
  const JsonValue* phases = root.Find("phases");
  if (phases == nullptr || phases->kind != JsonValue::Kind::kArray || phases->array.empty()) {
    std::fprintf(stderr, "validate_bench_json: missing or empty \"phases\" array\n");
    return 1;
  }
  // Backend-tagged schema: every phase names its enforcement strategy
  // ("lineage" / "stable_frontier", or "none" on non-Antipode baselines) and
  // reports the metadata bytes that strategy ships per request, so the
  // delta-comparison can pair phases across backends.
  const char* required_numbers[] = {"peak_req_s", "p50_ms", "p99_ms", "p999_ms",
                                    "metadata_bytes_per_req", "scoped_skips"};
  const char* required_strings[] = {"name", "backend"};
  int errors = 0;
  bool any_backend_tagged = false;
  bool any_scoped_locality = false;
  bool any_unscoped_locality = false;
  for (size_t i = 0; i < phases->array.size(); ++i) {
    const JsonValue& phase = phases->array[i];
    if (phase.kind != JsonValue::Kind::kObject) {
      std::fprintf(stderr, "validate_bench_json: phases[%zu] is not an object\n", i);
      ++errors;
      continue;
    }
    for (const char* key : required_strings) {
      const JsonValue* field = phase.Find(key);
      if (field == nullptr) {
        std::fprintf(stderr, "validate_bench_json: phases[%zu] missing \"%s\"\n", i, key);
        ++errors;
      } else if (field->kind != JsonValue::Kind::kString) {
        std::fprintf(stderr, "validate_bench_json: phases[%zu].%s is not a string\n", i, key);
        ++errors;
      } else if (std::string_view(key) == "backend" && field->string != "none") {
        any_backend_tagged = true;
      }
    }
    for (const char* key : required_numbers) {
      const JsonValue* field = phase.Find(key);
      if (field == nullptr) {
        std::fprintf(stderr, "validate_bench_json: phases[%zu] missing \"%s\"\n", i, key);
        ++errors;
      } else if (field->kind != JsonValue::Kind::kNumber) {
        std::fprintf(stderr, "validate_bench_json: phases[%zu].%s is not a number\n", i, key);
        ++errors;
      }
    }
    // Locality-tagged phases: the scoped/unscoped pair over the three
    // region-group-disjoint beds. The scoped one must actually have skipped
    // out-of-scope ⟨store, region⟩ pairs, or the scoping never engaged.
    const JsonValue* locality = phase.Find("locality");
    const JsonValue* use_scope = phase.Find("use_scope");
    const JsonValue* skips = phase.Find("scoped_skips");
    if (locality != nullptr && locality->kind == JsonValue::Kind::kBool && locality->boolean &&
        use_scope != nullptr && use_scope->kind == JsonValue::Kind::kBool &&
        skips != nullptr && skips->kind == JsonValue::Kind::kNumber) {
      if (use_scope->boolean) {
        if (skips->number > 0) {
          any_scoped_locality = true;
        } else {
          std::fprintf(stderr,
                       "validate_bench_json: phases[%zu] is a scoped locality phase with zero "
                       "scoped_skips — scoping never engaged\n",
                       i);
          ++errors;
        }
      } else {
        any_unscoped_locality = true;
      }
    }
  }
  if (!any_backend_tagged) {
    std::fprintf(stderr,
                 "validate_bench_json: no phase names an enforcement backend — the "
                 "strategy comparison is missing\n");
    ++errors;
  }
  if (!any_scoped_locality || !any_unscoped_locality) {
    std::fprintf(stderr,
                 "validate_bench_json: missing the locality phase pair (need one locality "
                 "phase with use_scope=true and scoped_skips>0, one with use_scope=false) — "
                 "the scoped-vs-unscoped comparison is missing\n");
    ++errors;
  }
  if (errors != 0) {
    return 1;
  }
  std::printf("validate_bench_json: %s OK (%zu phases)\n", path, phases->array.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: validate_bench_json <BENCH_*.json>\n");
    return 2;
  }
  return Check(argv[1]);
}
