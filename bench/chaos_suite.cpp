// Chaos suite: the post-notification and media-service apps (Antipode on)
// driven under seeded fault schedules, checking the recovery contract end to
// end:
//   * 0 XCY violations — barriers absorb every injected stall/outage/drop;
//   * no hangs — every schedule's windows are finite, so the suite
//     terminating at all is the liveness assertion (ctest enforces a
//     timeout on the smoke run);
//   * recovery-time and retry-amplification histograms — region-outage
//     durations from store.region_outage_ms, per-call RPC attempt counts
//     from a synthetic `chaos-probe` service that calls through the same
//     retry machinery the fault rules shape.
//
// Three schedules (ISSUE 5): `partition` severs replication out of the
// written stores, `outage` takes whole regions of them down and heals,
// `drop-spike` combines broker delivery drops, transient apply errors, and a
// WAN latency spike. Each is seeded: same --seed, same fault decisions — and
// each runs under BOTH enforcement backends (lineage and stable-frontier), so
// the zero-violations contract is asserted per strategy on identical faults.
//
// A fourth scenario (`sg-isolation`, ISSUE 8) asserts the remote-failure
// isolation guarantee of locality scoping: a seeded SG region outage must add
// no latency to US↔EU traffic whose stores never replicate to SG (the scoped
// deployment skips every SG ⟨store, region⟩ pair — barrier.scoped_skip > 0),
// while the locality-oblivious baseline — fully replicated stores behind the
// same deployment-wide barrier — stalls on SG until heal. Asserted per
// backend: 0 violations in every leg, scoped p99 within noise of the
// no-fault control, unscoped p99 strictly worse.
//
// Flags: --scale, --requests, --seed, --quick (tiny run for CI smoke),
//        --json-out=<path> (machine-readable per-schedule report).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/media_service/media_service.h"
#include "src/apps/post_notification/post_notification.h"
#include "src/common/histogram.h"
#include "src/fault/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/rpc/rpc.h"

using namespace antipode;

namespace {

// Window lengths in model ms, measured from FaultInjector::Arm. The app runs
// span tens of thousands of model ms at the default scale, so the faults
// bite during the early requests and heal mid-run; the tail runs clean.
constexpr double kFaultWindowModelMs = 5000.0;
constexpr double kQuickWindowModelMs = 1500.0;

struct Schedule {
  std::string name;
  FaultPlan plan;
};

FaultRule StoreRule(FaultKind kind, const std::string& prefix, double end_ms,
                    double probability = 1.0) {
  FaultRule rule;
  rule.kind = kind;
  rule.store = prefix;
  rule.end_model_ms = end_ms;
  rule.probability = probability;
  return rule;
}

FaultRule ProbeRule(FaultKind kind, double end_ms, double probability) {
  FaultRule rule;
  rule.kind = kind;
  rule.service = "chaos-probe";
  rule.end_model_ms = end_ms;
  rule.probability = probability;
  return rule;
}

// The three seeded schedules, scoped by store-name prefix to the stores the
// two apps create ("Redis-post-*" / "SNS-notif-*" for post-notification;
// "media-s3-*" / "reviews-mongo-*" / "events-rabbit-*" for media-service).
std::vector<Schedule> BuildSchedules(uint64_t seed, double window_ms) {
  std::vector<Schedule> schedules;

  {
    // Replication out of the written stores is partitioned from t=0; the
    // notifier keeps flowing, so without barriers this is the classic XCY
    // race amplified.
    FaultPlan plan{"partition", seed, {}};
    plan.rules.push_back(StoreRule(FaultKind::kLinkPartition, "Redis-post-", window_ms));
    plan.rules.push_back(StoreRule(FaultKind::kLinkPartition, "media-s3-", window_ms));
    plan.rules.push_back(StoreRule(FaultKind::kLinkPartition, "reviews-mongo-", window_ms));
    plan.rules.push_back(ProbeRule(FaultKind::kRpcFailure, window_ms * 0.5, 0.7));
    schedules.push_back({"partition", std::move(plan)});
  }
  {
    // Whole-region outage of the written stores, healed mid-run: buffered
    // backlogs replay and store.region_outage_ms records the recovery time.
    FaultPlan plan{"outage-heal", seed + 1, {}};
    plan.rules.push_back(StoreRule(FaultKind::kRegionOutage, "Redis-post-", window_ms));
    plan.rules.push_back(StoreRule(FaultKind::kRegionOutage, "media-s3-", window_ms));
    plan.rules.push_back(StoreRule(FaultKind::kRegionOutage, "reviews-mongo-", window_ms));
    FaultRule delay = ProbeRule(FaultKind::kRpcDelay, window_ms * 0.5, 1.0);
    delay.delay_add_model_ms = 120.0;  // pushes the probe past its attempt timeout
    plan.rules.push_back(delay);
    schedules.push_back({"outage-heal", std::move(plan)});
  }
  {
    // Broker deliveries dropped (redelivered after the ack timeout), applies
    // transiently erroring (retried internally), and a WAN latency spike.
    FaultPlan plan{"drop-spike", seed + 2, {}};
    plan.rules.push_back(
        StoreRule(FaultKind::kQueueDropDelivery, "SNS-notif-", window_ms, 0.5));
    plan.rules.push_back(
        StoreRule(FaultKind::kQueueDropDelivery, "events-rabbit-", window_ms, 0.5));
    plan.rules.push_back(StoreRule(FaultKind::kStoreApplyError, "Redis-post-", window_ms, 0.3));
    plan.rules.push_back(
        StoreRule(FaultKind::kStoreApplyError, "reviews-mongo-", window_ms, 0.3));
    FaultRule spike;
    spike.kind = FaultKind::kLinkDelay;
    spike.end_model_ms = window_ms;
    spike.delay_factor = 3.0;
    spike.delay_add_model_ms = 10.0;
    plan.rules.push_back(spike);
    plan.rules.push_back(ProbeRule(FaultKind::kRpcFailure, window_ms * 0.5, 0.5));
    schedules.push_back({"drop-spike", std::move(plan)});
  }
  return schedules;
}

// One leg of the sg-isolation scenario: the post-notification flow (writer
// EU, reader US) behind the conservative deployment-wide barrier over
// {US, EU, SG}. The scoped legs deploy the stores on {EU, US} only — every
// dependency's locality scope excludes SG, so the barrier skips the SG pairs;
// the unscoped leg replicates to all three regions and arms the SG waits.
struct IsolationLeg {
  const char* name;
  bool sg_outage;         // arm the seeded SG region outage
  bool full_replication;  // stores replicate to SG too (the oblivious bed)
  bool use_scope;
};

struct IsolationLegResult {
  double p99_ms = 0.0;
  int violations = 0;
  uint64_t scoped_skips = 0;
};

IsolationLegResult RunIsolationLeg(const IsolationLeg& leg, EnforcementBackendKind backend,
                                   int requests, uint64_t seed, double window_ms) {
  MetricsRegistry::Default().SnapshotAndReset();  // clean counters per leg
  if (leg.sg_outage) {
    FaultPlan plan{"sg-outage", seed, {}};
    FaultRule rule;
    rule.kind = FaultKind::kRegionOutage;
    rule.to = Region::kSg;  // any store's SG replica buffers until heal
    rule.end_model_ms = window_ms;
    plan.rules.push_back(rule);
    FaultInjector::Default().Arm(std::move(plan));
  }

  PostNotificationConfig post;
  post.post_storage = PostStorageKind::kRedis;
  post.notifier = NotifierKind::kSns;
  post.antipode = true;
  post.backend = backend;
  post.num_requests = requests;
  post.seed = seed;
  post.store_regions = leg.full_replication
                           ? std::vector<Region>{Region::kEu, Region::kUs, Region::kSg}
                           : std::vector<Region>{Region::kEu, Region::kUs};
  post.barrier_regions = {Region::kUs, Region::kEu, Region::kSg};
  post.use_scope = leg.use_scope;
  PostNotificationResult result = RunPostNotification(post);

  if (leg.sg_outage) {
    FaultInjector::Default().Disarm();
  }
  IsolationLegResult out;
  out.p99_ms = result.consistency_window_model_ms.Percentile(0.99);
  out.violations = result.violations;
  out.scoped_skips = MetricsRegistry::Default().GetCounter("barrier.scoped_skip")->value();
  return out;
}

// Sequential retrying calls against a throwaway service while the schedule's
// rpc rules are live; returns the per-call attempt counts (1 = no retry).
Histogram RunRpcProbe(int calls) {
  ServiceRegistry registry;
  RpcService* svc = registry.RegisterService("chaos-probe", Region::kUs, 2);
  svc->RegisterMethod("ping",
                      [](const std::string& payload) { return Result<std::string>(payload); });
  RpcClient client(&registry, Region::kUs);  // default injector, like the apps
  RpcCallOptions options;
  options.timeout = TimeScale::FromModelMillis(80.0);
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_model_ms = 40.0;

  Histogram attempts;
  MetricsRegistry& metrics = MetricsRegistry::Default();
  for (int i = 0; i < calls; ++i) {
    const uint64_t before = metrics.GetCounter("rpc.retries", {{"service", "chaos-probe"}})->value();
    client.Call("chaos-probe", "ping", "p" + std::to_string(i), options);
    const uint64_t after = metrics.GetCounter("rpc.retries", {{"service", "chaos-probe"}})->value();
    attempts.Record(1.0 + static_cast<double>(after - before));
  }
  registry.ShutdownAll();
  return attempts;
}

void PrintHistogram(const char* name, const Histogram& hist) {
  std::printf("    %-24s n=%-5llu mean=%-8.1f p50=%-8.1f p99=%-8.1f max=%-8.1f\n", name,
              static_cast<unsigned long long>(hist.count()), hist.Mean(), hist.Percentile(0.5),
              hist.Percentile(0.99), hist.max());
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  bool quick_flag = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" || arg.rfind("--quick=", 0) == 0) {
      quick_flag = true;
    }
  }
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", quick_flag ? 10 : 60);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 11));
  const double window_ms = quick_flag ? kQuickWindowModelMs : kFaultWindowModelMs;
  const int probe_calls = quick_flag ? 8 : 30;

  std::printf("# chaos suite: %d requests/app, %d probe calls, window %.0f model ms, seed %llu\n",
              requests, probe_calls, window_ms, static_cast<unsigned long long>(seed));

  const std::string json_out = args.GetString("json-out", "");
  JsonReport json;
  json.BeginObject()
      .Field("bench", "chaos_suite")
      .Field("quick", quick_flag)
      .Field("seed", static_cast<uint64_t>(seed))
      .Field("requests", requests)
      .Field("window_model_ms", window_ms)
      .BeginArray("schedules");

  // Every schedule runs once per enforcement backend with the SAME seed: the
  // fault decisions are identical, so a violation count that differs between
  // strategies would be a strategy bug, not schedule noise.
  const EnforcementBackendKind backends[] = {EnforcementBackendKind::kLineage,
                                             EnforcementBackendKind::kStableFrontier};
  int total_violations = 0;
  for (const EnforcementBackendKind backend : backends)
  for (const Schedule& schedule : BuildSchedules(seed, window_ms)) {
    std::printf("\n== schedule %s [backend=%s] ==\n", schedule.name.c_str(),
                std::string(EnforcementBackendKindName(backend)).c_str());
    MetricsRegistry::Default().SnapshotAndReset();  // clean slate per schedule
    FaultInjector::Default().Arm(schedule.plan);

    // Probe first: the fault windows open at Arm, so the probe sees them
    // live; the apps follow while store-level windows are still open.
    Histogram probe_attempts = RunRpcProbe(probe_calls);

    PostNotificationConfig post;
    post.post_storage = PostStorageKind::kRedis;
    post.notifier = NotifierKind::kSns;
    post.antipode = true;
    post.backend = backend;
    post.num_requests = requests;
    post.seed = seed;
    PostNotificationResult post_result = RunPostNotification(post);

    MediaServiceConfig media;
    media.antipode = true;
    media.backend = backend;
    media.num_reviews = requests;
    MediaServiceResult media_result = RunMediaService(media);

    FaultInjector::Default().Disarm();
    const MetricsSnapshot snapshot = MetricsRegistry::Default().SnapshotAndReset();

    std::printf("  post-notification: requests=%d violations=%d\n", post_result.requests,
                post_result.violations);
    std::printf("  media-service:     reviews=%d violations=%d\n", media_result.reviews,
                media_result.TotalViolations());
    total_violations += post_result.violations + media_result.TotalViolations();

    std::printf("  faults injected: %llu (redeliveries=%llu, rpc.retries=%llu, "
                "rpc.deadline_exceeded=%llu)\n",
                static_cast<unsigned long long>(snapshot.CounterTotal("fault.injected")),
                static_cast<unsigned long long>(snapshot.CounterTotal("queue.redeliveries")),
                static_cast<unsigned long long>(snapshot.CounterTotal("rpc.retries")),
                static_cast<unsigned long long>(snapshot.CounterTotal("rpc.deadline_exceeded")));
    Histogram consistency_windows = post_result.consistency_window_model_ms;
    consistency_windows.Merge(media_result.consistency_window_model_ms);
    const Histogram recovery = snapshot.HistogramTotal("store.region_outage_ms");
    PrintHistogram("recovery_ms (outage)", recovery);
    PrintHistogram("consistency_window_ms", consistency_windows);
    PrintHistogram("probe_attempts/call", probe_attempts);

    json.BeginObject()
        .Field("name", schedule.name)
        .Field("backend", std::string(EnforcementBackendKindName(backend)))
        .Field("violations", post_result.violations + media_result.TotalViolations())
        .Field("faults_injected", snapshot.CounterTotal("fault.injected"))
        .Field("queue_redeliveries", snapshot.CounterTotal("queue.redeliveries"))
        .Field("rpc_retries", snapshot.CounterTotal("rpc.retries"))
        .Field("rpc_deadline_exceeded", snapshot.CounterTotal("rpc.deadline_exceeded"))
        .HistogramField("recovery_ms", recovery)
        .HistogramField("consistency_window_ms", consistency_windows)
        .HistogramField("probe_attempts", probe_attempts)
        .EndObject();
  }

  json.EndArray();

  // sg-isolation: per backend, a no-fault scoped control, the same scoped
  // deployment under a seeded SG outage, and the fully-replicated unscoped
  // baseline under the identical outage. Latency is the post-notification
  // consistency window (write → allowed read), which contains the barrier.
  constexpr IsolationLeg kLegs[] = {
      {"scoped_control", false, false, true},
      {"scoped_sg_outage", true, false, true},
      {"unscoped_sg_outage", true, true, false},
  };
  bool isolation_ok = true;
  // The outage must dwarf the apps' natural replication tails (straggler
  // modes reach ~1.5-2k model ms) so stalled-vs-isolated is unambiguous: a
  // barrier that touches SG stalls ≈ the whole window, one that skips SG
  // stays inside the natural tail.
  const double iso_window_ms = window_ms * 3.0;
  json.BeginArray("isolation");
  for (const EnforcementBackendKind backend : backends) {
    std::printf("\n== scenario sg-isolation [backend=%s] ==\n",
                std::string(EnforcementBackendKindName(backend)).c_str());
    IsolationLegResult legs[3];
    for (int i = 0; i < 3; ++i) {
      legs[i] = RunIsolationLeg(kLegs[i], backend, requests, seed + 3, iso_window_ms);
      std::printf("  %-20s p99=%-10.1f violations=%-3d scoped_skips=%llu\n", kLegs[i].name,
                  legs[i].p99_ms, legs[i].violations,
                  static_cast<unsigned long long>(legs[i].scoped_skips));
      total_violations += legs[i].violations;
    }
    const IsolationLegResult& control = legs[0];
    const IsolationLegResult& scoped = legs[1];
    const IsolationLegResult& unscoped = legs[2];
    // The guarantee, with window-proportional noise head-room: the outage
    // must add nothing systematic to the scoped deployment (its barriers
    // never touch SG — proved by the skip counter), and must visibly stall
    // the unscoped baseline, whose barriers wait for SG applies buffered
    // until heal — a stall on the order of the whole outage window.
    const bool skips_fired = control.scoped_skips > 0 && scoped.scoped_skips > 0;
    const bool isolated = scoped.p99_ms <= control.p99_ms + 0.5 * iso_window_ms;
    const bool baseline_stalled = unscoped.p99_ms > scoped.p99_ms + iso_window_ms / 3.0;
    if (!skips_fired || !isolated || !baseline_stalled) {
      isolation_ok = false;
      std::printf("  FAIL: skips_fired=%d isolated=%d baseline_stalled=%d\n", skips_fired,
                  isolated, baseline_stalled);
    } else {
      std::printf("  isolation holds: SG outage adds %.1f ms to scoped p99, %.1f ms to "
                  "unscoped p99\n",
                  scoped.p99_ms - control.p99_ms, unscoped.p99_ms - control.p99_ms);
    }
    json.BeginObject()
        .Field("backend", std::string(EnforcementBackendKindName(backend)))
        .Field("control_p99_ms", control.p99_ms)
        .Field("scoped_outage_p99_ms", scoped.p99_ms)
        .Field("unscoped_outage_p99_ms", unscoped.p99_ms)
        .Field("scoped_skips", scoped.scoped_skips)
        .Field("violations", control.violations + scoped.violations + unscoped.violations)
        .Field("isolated", isolated)
        .Field("baseline_stalled", baseline_stalled)
        .EndObject();
  }
  json.EndArray().Field("total_violations", total_violations).EndObject();
  if (!json_out.empty() && !json.WriteFile(json_out)) {
    return 1;
  }

  std::printf("\n# total violations across schedules: %d (expect 0)\n", total_violations);
  if (total_violations != 0) {
    std::printf("FAIL: XCY violations under fault injection\n");
    return 1;
  }
  if (!isolation_ok) {
    std::printf("FAIL: locality isolation guarantee violated\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
