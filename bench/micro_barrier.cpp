// Barrier latency: sum-of-lags vs max-of-lags.
//
// Three stores with staggered replication lags (fast / medium / slow). A
// request writes one key in each and must enforce all three before its
// cross-region reader proceeds. Two enforcement strategies:
//
//   eager     write store0; barrier; write store1; barrier; write store2;
//             barrier — per-write enforcement, the only safe pattern when
//             barriers wait one dependency at a time. Replication of write
//             i+1 cannot even start until write i's lag has been paid, so
//             the request costs the SUM of the lags.
//   deferred  write all three, then ONE parallel barrier over the whole
//             lineage. All replication timers run concurrently and the
//             fan-out gathers them, so the request costs the MAX of the lags.
//
// The deferred phase runs under both enforcement backends — the native
// lineage strategy and the Okapi-style stable-frontier strategy (one HLC-cut
// wait per store instead of per-dependency waits) — and reports each one's
// wait time alongside the enforcement-metadata bytes it would ship per
// request (full lineage wire size vs a single HLC varint).
//
// A second phase measures the all-deps-already-visible case — the steady
// state when replication lag ≪ inter-request gap. Every write has long
// replicated, so the barrier does no model-time waiting and the measurement
// is pure wall-clock overhead: with the visibility cache every dependency is
// answered by a striped-shard probe and the barrier returns with zero
// registry/timer/pool traffic (`barrier.zero_wait`); without it (the PR 1
// parallel path) every dependency still costs a gather slot, a registry
// lookup under the shard lock, and a synchronous waiter-side completion.
//
// A third phase measures thundering-herd wakeups: waiters parked on cold
// keys while a writer hammers hot keys. With the per-key waiter registry an
// apply notifies only waiters of the written key (waiters_notified/applies
// stays O(matching)); the legacy single-condvar design would have woken every
// resident waiter per apply (notify_all_wakeups/applies).
//
// Flags: --requests=<n> (default 200), --scale=<f> (default 0.02),
//        --cache={on,off,both} (default both: the all-visible phase prints
//        the cached-vs-uncached comparison; on/off also gates the cache in
//        the eager/deferred phase), --json-out=<path> (machine-readable
//        report of every phase).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/antipode/antipode.h"
#include "src/common/histogram.h"
#include "src/obs/metrics.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};
constexpr int kStores = 3;
constexpr double kMedians[kStores] = {40.0, 120.0, 360.0};

struct Bed {
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<KvShim>> shims;
  ShimRegistry registry;

  explicit Bed(const std::string& tag) {
    for (int i = 0; i < kStores; ++i) {
      auto options = KvStore::DefaultOptions(tag + std::to_string(i), kRegions);
      options.replication.median_millis = kMedians[i];
      options.replication.sigma = 0.05;
      stores.push_back(std::make_unique<KvStore>(std::move(options)));
      shims.push_back(std::make_unique<KvShim>(stores.back().get()));
      registry.Register(shims.back().get());
    }
  }
};

double RunEager(int requests, Histogram* hist, bool use_cache) {
  Bed bed("eager");
  const BarrierOptions options{.registry = &bed.registry,
                               .wait_mode = BarrierWaitMode::kSequential,
                               .use_cache = use_cache};
  for (int r = 0; r < requests; ++r) {
    const TimePoint start = SystemClock::Instance().Now();
    Lineage lineage(static_cast<uint64_t>(r) + 1);
    for (int i = 0; i < kStores; ++i) {
      lineage = bed.shims[static_cast<size_t>(i)]->Write(
          Region::kUs, "k" + std::to_string(r), "v", std::move(lineage));
      // Enforce before the next service hop, one store at a time.
      if (!Barrier(lineage, Region::kEu, options).ok()) {
        std::fprintf(stderr, "eager barrier failed\n");
        std::exit(1);
      }
    }
    hist->Record(TimeScale::ToModelMillis(
        std::chrono::duration_cast<Duration>(SystemClock::Instance().Now() - start)));
  }
  double max_store_lag_p50 = 0.0;
  for (auto& store : bed.stores) {
    max_store_lag_p50 = std::max(max_store_lag_p50, store->metrics().ReplicationLag().Percentile(0.5));
  }
  return max_store_lag_p50;
}

struct DeferredResult {
  double max_store_lag_p50 = 0.0;
  // Mean enforcement-metadata bytes the request's barrier ships under this
  // backend: the full lineage wire size vs one HLC-cut varint.
  double metadata_bytes_per_req = 0.0;
};

DeferredResult RunDeferred(int requests, Histogram* hist, bool use_cache,
                           EnforcementBackendKind backend, const char* tag) {
  Bed bed(tag);
  const BarrierOptions options{
      .registry = &bed.registry, .use_cache = use_cache, .backend = backend};
  uint64_t metadata_total = 0;
  for (int r = 0; r < requests; ++r) {
    const TimePoint start = SystemClock::Instance().Now();
    Lineage lineage(static_cast<uint64_t>(r) + 1);
    for (int i = 0; i < kStores; ++i) {
      lineage = bed.shims[static_cast<size_t>(i)]->Write(
          Region::kUs, "k" + std::to_string(r), "v", std::move(lineage));
    }
    metadata_total += EnforcementMetadataBytes(backend, lineage);
    // One parallel barrier over the whole lineage: cost = max of the lags.
    if (!Barrier(lineage, Region::kEu, options).ok()) {
      std::fprintf(stderr, "deferred barrier failed\n");
      std::exit(1);
    }
    hist->Record(TimeScale::ToModelMillis(
        std::chrono::duration_cast<Duration>(SystemClock::Instance().Now() - start)));
  }
  DeferredResult result;
  for (auto& store : bed.stores) {
    result.max_store_lag_p50 =
        std::max(result.max_store_lag_p50, store->metrics().ReplicationLag().Percentile(0.5));
  }
  result.metadata_bytes_per_req =
      requests == 0 ? 0.0 : static_cast<double>(metadata_total) / requests;
  return result;
}

// Forwards to a wrapped shim but hides its WaitManyAsync override and its
// visibility() state, reproducing the PR 1 barrier path exactly: one
// WaitAsync per dependency through the default fan-out adapter, no cache.
class PerDepShim : public Shim {
 public:
  explicit PerDepShim(Shim* inner) : inner_(inner) {}
  const std::string& store_name() const override { return inner_->store_name(); }
  Status Wait(Region region, const WriteId& id, Duration timeout) override {
    return inner_->Wait(region, id, timeout);
  }
  void WaitAsync(Region region, const WriteId& id, TimePoint deadline,
                 WaitCallback done) override {
    inner_->WaitAsync(region, id, deadline, std::move(done));
  }
  bool IsVisible(Region region, const WriteId& id) override {
    return inner_->IsVisible(region, id);
  }

 private:
  Shim* inner_;
};

// All-deps-already-visible: writes have long replicated, so the barrier does
// no model-time waiting and the cost is pure wall-clock overhead. Measured in
// real microseconds (steady clock), not model time. Returns the p50 in µs.
// `mode`: 0 = cache on (batched misses), 1 = cache off (batched waits),
// 2 = PR 1 baseline (cache off, per-dependency WaitAsync fan-out).
double RunAllVisible(int barriers, int mode, Histogram* hist) {
  const bool use_cache = mode == 0;
  Bed bed(mode == 0 ? "vis-on" : mode == 1 ? "vis-off" : "vis-pr1");
  // 8 keys per store → 24 dependencies per barrier, all at the same region.
  Lineage lineage(1);
  for (int i = 0; i < kStores; ++i) {
    for (int k = 0; k < 8; ++k) {
      lineage = bed.shims[static_cast<size_t>(i)]->Write(
          Region::kUs, "k" + std::to_string(k), "v", std::move(lineage));
    }
  }
  for (auto& store : bed.stores) {
    store->DrainReplication();  // every dependency visible at every region
  }
  // PR 1 baseline: replace each registered shim with a wrapper that exposes
  // only the per-dependency WaitAsync surface (no batching, no cache).
  std::vector<std::unique_ptr<PerDepShim>> wrappers;
  if (mode == 2) {
    for (auto& shim : bed.shims) {
      wrappers.push_back(std::make_unique<PerDepShim>(shim.get()));
      bed.registry.Register(wrappers.back().get());
    }
  }
  const BarrierOptions options{.registry = &bed.registry, .use_cache = use_cache};
  // Warm-up: first barrier takes the sync-completion path and (with the cache
  // on) everything after it is served from the apply-populated cache.
  if (!Barrier(lineage, Region::kEu, options).ok()) {
    std::fprintf(stderr, "all-visible warm-up barrier failed\n");
    std::exit(1);
  }
  Counter* zero_wait = MetricsRegistry::Default().GetCounter("barrier.zero_wait");
  const uint64_t zero_wait_before = zero_wait->value();
  WakeupStats wakeups_before;
  for (auto& store : bed.stores) {
    const WakeupStats w = store->TotalWakeups();
    wakeups_before.waiters_notified += w.waiters_notified;
  }
  for (int r = 0; r < barriers; ++r) {
    const auto start = std::chrono::steady_clock::now();
    if (!Barrier(lineage, Region::kEu, options).ok()) {
      std::fprintf(stderr, "all-visible barrier failed\n");
      std::exit(1);
    }
    hist->Record(static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start)
                                         .count()) /
                 1000.0);
  }
  const uint64_t zero_wait_delta = zero_wait->value() - zero_wait_before;
  uint64_t waiters_notified = 0;
  for (auto& store : bed.stores) {
    waiters_notified += store->TotalWakeups().waiters_notified;
  }
  waiters_notified -= wakeups_before.waiters_notified;
  const char* label = mode == 0   ? "all-visible cache=on"
                      : mode == 1 ? "all-visible cache=off"
                                  : "all-visible PR1 per-dep";
  std::printf("%-24s %10.1f %10.1f %10.1f   zero_wait %llu/%d, waiters woken %llu\n", label,
              hist->Percentile(0.5), hist->Percentile(0.99), hist->Mean(),
              static_cast<unsigned long long>(zero_wait_delta), barriers,
              static_cast<unsigned long long>(waiters_notified));
  if (use_cache && zero_wait_delta != static_cast<uint64_t>(barriers)) {
    std::fprintf(stderr, "FAIL: expected barrier.zero_wait == barrier count (%d), got %llu\n",
                 barriers, static_cast<unsigned long long>(zero_wait_delta));
    std::exit(1);
  }
  return hist->Percentile(0.5);
}

struct WakeupReport {
  uint64_t applies = 0;
  double per_apply_new = 0.0;
  double per_apply_legacy = 0.0;
};

WakeupReport RunWakeups(int writes) {
  auto options = KvStore::DefaultOptions("wake", kRegions);
  options.replication.median_millis = 80.0;
  options.replication.sigma = 0.1;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  // Park waiters on keys nobody will write during the burst.
  constexpr int kParked = 64;
  for (int i = 0; i < kParked; ++i) {
    store.WaitVisibleAsync(Region::kEu, "cold" + std::to_string(i), 1,
                           SystemClock::Instance().Now() + std::chrono::minutes(5),
                           [](Status) {});
  }
  Lineage lineage(1);
  for (int i = 0; i < writes; ++i) {
    lineage = shim.Write(Region::kUs, "hot" + std::to_string(i % 16), "v", std::move(lineage));
  }
  if (!Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok()) {
    std::fprintf(stderr, "wakeup-phase barrier failed\n");
    std::exit(1);
  }
  store.DrainReplication();
  const WakeupStats stats = store.TotalWakeups();
  const double per_apply_new =
      stats.applies == 0 ? 0.0
                         : static_cast<double>(stats.waiters_notified) /
                               static_cast<double>(stats.applies);
  const double per_apply_legacy =
      stats.applies == 0 ? 0.0
                         : static_cast<double>(stats.notify_all_wakeups) /
                               static_cast<double>(stats.applies);
  std::printf("\n# wakeups (%d parked cold waiters, %d hot writes)\n", kParked, writes);
  std::printf("%-28s %12s\n", "metric", "value");
  std::printf("%-28s %12llu\n", "applies",
              static_cast<unsigned long long>(stats.applies));
  std::printf("%-28s %12.2f  (per-key registry: only matching waiters)\n",
              "wakeups/apply (new)", per_apply_new);
  std::printf("%-28s %12.2f  (legacy notify_all: every resident waiter)\n",
              "wakeups/apply (legacy)", per_apply_legacy);
  // Release the parked waiters before the store is torn down.
  for (int i = 0; i < kParked; ++i) {
    store.Set(Region::kUs, "cold" + std::to_string(i), "v");
  }
  store.DrainReplication();
  return WakeupReport{stats.applies, per_apply_new, per_apply_legacy};
}

int Main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 200);
  std::printf("# 3 stores, replication lag medians %g / %g / %g model ms (sigma 0.05)\n",
              kMedians[0], kMedians[1], kMedians[2]);
  std::printf("# per-request: 3 writes (one per store) + cross-region enforcement\n\n");

  const std::string cache_flag = args.GetString("cache", "both");
  const bool cache_in_main_phase = cache_flag != "off";

  Histogram eager;
  Histogram deferred;
  Histogram deferred_frontier;
  RunEager(requests, &eager, cache_in_main_phase);
  const DeferredResult defer_lineage = RunDeferred(
      requests, &deferred, cache_in_main_phase, EnforcementBackendKind::kLineage, "defer");
  const DeferredResult defer_frontier =
      RunDeferred(requests, &deferred_frontier, cache_in_main_phase,
                  EnforcementBackendKind::kStableFrontier, "defsf");
  const double max_lag_p50 = defer_lineage.max_store_lag_p50;
  const double sum_medians = kMedians[0] + kMedians[1] + kMedians[2];

  std::printf("%-24s %10s %10s %10s\n", "strategy", "p50 ms", "p99 ms", "mean ms");
  std::printf("%-24s %10.1f %10.1f %10.1f   (sequential waits: ~sum of lags, Σ medians=%.0f)\n",
              "eager per-write", eager.Percentile(0.5), eager.Percentile(0.99), eager.Mean(),
              sum_medians);
  std::printf("%-24s %10.1f %10.1f %10.1f   (parallel fan-out: ~max of lags)\n",
              "deferred parallel", deferred.Percentile(0.5), deferred.Percentile(0.99),
              deferred.Mean());
  std::printf("%-24s %10.1f %10.1f %10.1f   (stable-frontier: one HLC cut)\n",
              "deferred frontier", deferred_frontier.Percentile(0.5),
              deferred_frontier.Percentile(0.99), deferred_frontier.Mean());
  const double ratio = deferred.Percentile(0.5) / eager.Percentile(0.5);
  std::printf("\n# deferred/eager p50 ratio: %.2f\n", ratio);
  std::printf("# slowest store replication-lag p50: %.1f model ms; deferred p50 within %.0f%%\n",
              max_lag_p50,
              max_lag_p50 > 0 ? 100.0 * (deferred.Percentile(0.5) - max_lag_p50) / max_lag_p50
                              : 0.0);
  std::printf("# metadata bytes/request: lineage %.1f vs stable-frontier %.1f (%.1fx smaller)\n",
              defer_lineage.metadata_bytes_per_req, defer_frontier.metadata_bytes_per_req,
              defer_frontier.metadata_bytes_per_req > 0
                  ? defer_lineage.metadata_bytes_per_req / defer_frontier.metadata_bytes_per_req
                  : 0.0);

  const int visible_barriers = args.GetInt("visible-barriers", 2000);
  std::printf("\n# all-deps-already-visible (24 deps/barrier, wall-clock µs, %d barriers)\n",
              visible_barriers);
  std::printf("%-24s %10s %10s %10s\n", "scenario", "p50 us", "p99 us", "mean us");
  double cached_p50 = 0.0;
  double uncached_p50 = 0.0;
  double pr1_p50 = 0.0;
  if (cache_flag == "on" || cache_flag == "both") {
    Histogram hist;
    cached_p50 = RunAllVisible(visible_barriers, /*mode=*/0, &hist);
  }
  if (cache_flag == "off" || cache_flag == "both") {
    Histogram hist;
    uncached_p50 = RunAllVisible(visible_barriers, /*mode=*/1, &hist);
  }
  if (cache_flag == "both") {
    Histogram hist;
    pr1_p50 = RunAllVisible(visible_barriers, /*mode=*/2, &hist);
  }
  if (cache_flag == "both" && cached_p50 > 0.0) {
    std::printf("# batched-uncached/cached p50 ratio: %.1fx\n", uncached_p50 / cached_p50);
    std::printf("# PR1-per-dep/cached p50 ratio: %.1fx\n", pr1_p50 / cached_p50);
  }

  const WakeupReport wakeups = RunWakeups(args.GetInt("writes", 400));

  const std::string json_out = args.GetString("json-out", "");
  if (!json_out.empty()) {
    JsonReport json;
    json.BeginObject()
        .Field("bench", "micro_barrier")
        .Field("requests", requests)
        .HistogramField("eager_model_ms", eager)
        .HistogramField("deferred_model_ms", deferred)
        .HistogramField("deferred_frontier_model_ms", deferred_frontier)
        .Field("deferred_eager_p50_ratio", ratio)
        .Field("slowest_store_lag_p50_model_ms", max_lag_p50)
        .BeginObject("metadata_bytes_per_req")
        .Field("lineage", defer_lineage.metadata_bytes_per_req)
        .Field("stable_frontier", defer_frontier.metadata_bytes_per_req)
        .EndObject()
        .BeginObject("all_visible_p50_us")
        .Field("cache_on", cached_p50)
        .Field("cache_off", uncached_p50)
        .Field("pr1_per_dep", pr1_p50)
        .EndObject()
        .BeginObject("wakeups")
        .Field("applies", wakeups.applies)
        .Field("per_apply_new", wakeups.per_apply_new)
        .Field("per_apply_legacy", wakeups.per_apply_legacy)
        .EndObject()
        .EndObject();
    if (!json.WriteFile(json_out)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace antipode

int main(int argc, char** argv) { return antipode::Main(argc, argv); }
