// Barrier latency: sum-of-lags vs max-of-lags.
//
// Three stores with staggered replication lags (fast / medium / slow). A
// request writes one key in each and must enforce all three before its
// cross-region reader proceeds. Two enforcement strategies:
//
//   eager     write store0; barrier; write store1; barrier; write store2;
//             barrier — per-write enforcement, the only safe pattern when
//             barriers wait one dependency at a time. Replication of write
//             i+1 cannot even start until write i's lag has been paid, so
//             the request costs the SUM of the lags.
//   deferred  write all three, then ONE parallel barrier over the whole
//             lineage. All replication timers run concurrently and the
//             fan-out gathers them, so the request costs the MAX of the lags.
//
// A second phase measures thundering-herd wakeups: waiters parked on cold
// keys while a writer hammers hot keys. With the per-key waiter registry an
// apply notifies only waiters of the written key (waiters_notified/applies
// stays O(matching)); the legacy single-condvar design would have woken every
// resident waiter per apply (notify_all_wakeups/applies).
//
// Flags: --requests=<n> (default 200), --scale=<f> (default 0.02).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/antipode/antipode.h"
#include "src/common/histogram.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};
constexpr int kStores = 3;
constexpr double kMedians[kStores] = {40.0, 120.0, 360.0};

struct Bed {
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<KvShim>> shims;
  ShimRegistry registry;

  explicit Bed(const std::string& tag) {
    for (int i = 0; i < kStores; ++i) {
      auto options = KvStore::DefaultOptions(tag + std::to_string(i), kRegions);
      options.replication.median_millis = kMedians[i];
      options.replication.sigma = 0.05;
      stores.push_back(std::make_unique<KvStore>(std::move(options)));
      shims.push_back(std::make_unique<KvShim>(stores.back().get()));
      registry.Register(shims.back().get());
    }
  }
};

double RunEager(int requests, Histogram* hist) {
  Bed bed("eager");
  const BarrierOptions options{.registry = &bed.registry,
                               .wait_mode = BarrierWaitMode::kSequential};
  for (int r = 0; r < requests; ++r) {
    const TimePoint start = SystemClock::Instance().Now();
    Lineage lineage(static_cast<uint64_t>(r) + 1);
    for (int i = 0; i < kStores; ++i) {
      lineage = bed.shims[static_cast<size_t>(i)]->Write(
          Region::kUs, "k" + std::to_string(r), "v", std::move(lineage));
      // Enforce before the next service hop, one store at a time.
      if (!Barrier(lineage, Region::kEu, options).ok()) {
        std::fprintf(stderr, "eager barrier failed\n");
        std::exit(1);
      }
    }
    hist->Record(TimeScale::ToModelMillis(
        std::chrono::duration_cast<Duration>(SystemClock::Instance().Now() - start)));
  }
  double max_store_lag_p50 = 0.0;
  for (auto& store : bed.stores) {
    max_store_lag_p50 = std::max(max_store_lag_p50, store->metrics().ReplicationLag().Percentile(0.5));
  }
  return max_store_lag_p50;
}

double RunDeferred(int requests, Histogram* hist) {
  Bed bed("defer");
  const BarrierOptions options{.registry = &bed.registry};
  for (int r = 0; r < requests; ++r) {
    const TimePoint start = SystemClock::Instance().Now();
    Lineage lineage(static_cast<uint64_t>(r) + 1);
    for (int i = 0; i < kStores; ++i) {
      lineage = bed.shims[static_cast<size_t>(i)]->Write(
          Region::kUs, "k" + std::to_string(r), "v", std::move(lineage));
    }
    // One parallel barrier over the whole lineage: cost = max of the lags.
    if (!Barrier(lineage, Region::kEu, options).ok()) {
      std::fprintf(stderr, "deferred barrier failed\n");
      std::exit(1);
    }
    hist->Record(TimeScale::ToModelMillis(
        std::chrono::duration_cast<Duration>(SystemClock::Instance().Now() - start)));
  }
  double max_store_lag_p50 = 0.0;
  for (auto& store : bed.stores) {
    max_store_lag_p50 = std::max(max_store_lag_p50, store->metrics().ReplicationLag().Percentile(0.5));
  }
  return max_store_lag_p50;
}

void RunWakeups(int writes) {
  auto options = KvStore::DefaultOptions("wake", kRegions);
  options.replication.median_millis = 80.0;
  options.replication.sigma = 0.1;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  // Park waiters on keys nobody will write during the burst.
  constexpr int kParked = 64;
  for (int i = 0; i < kParked; ++i) {
    store.WaitVisibleAsync(Region::kEu, "cold" + std::to_string(i), 1,
                           SystemClock::Instance().Now() + std::chrono::minutes(5),
                           [](Status) {});
  }
  Lineage lineage(1);
  for (int i = 0; i < writes; ++i) {
    lineage = shim.Write(Region::kUs, "hot" + std::to_string(i % 16), "v", std::move(lineage));
  }
  if (!Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok()) {
    std::fprintf(stderr, "wakeup-phase barrier failed\n");
    std::exit(1);
  }
  store.DrainReplication();
  const WakeupStats stats = store.TotalWakeups();
  const double per_apply_new =
      stats.applies == 0 ? 0.0
                         : static_cast<double>(stats.waiters_notified) /
                               static_cast<double>(stats.applies);
  const double per_apply_legacy =
      stats.applies == 0 ? 0.0
                         : static_cast<double>(stats.notify_all_wakeups) /
                               static_cast<double>(stats.applies);
  std::printf("\n# wakeups (%d parked cold waiters, %d hot writes)\n", kParked, writes);
  std::printf("%-28s %12s\n", "metric", "value");
  std::printf("%-28s %12llu\n", "applies",
              static_cast<unsigned long long>(stats.applies));
  std::printf("%-28s %12.2f  (per-key registry: only matching waiters)\n",
              "wakeups/apply (new)", per_apply_new);
  std::printf("%-28s %12.2f  (legacy notify_all: every resident waiter)\n",
              "wakeups/apply (legacy)", per_apply_legacy);
  // Release the parked waiters before the store is torn down.
  for (int i = 0; i < kParked; ++i) {
    store.Set(Region::kUs, "cold" + std::to_string(i), "v");
  }
  store.DrainReplication();
}

int Main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 200);
  std::printf("# 3 stores, replication lag medians %g / %g / %g model ms (sigma 0.05)\n",
              kMedians[0], kMedians[1], kMedians[2]);
  std::printf("# per-request: 3 writes (one per store) + cross-region enforcement\n\n");

  Histogram eager;
  Histogram deferred;
  RunEager(requests, &eager);
  const double max_lag_p50 = RunDeferred(requests, &deferred);
  const double sum_medians = kMedians[0] + kMedians[1] + kMedians[2];

  std::printf("%-24s %10s %10s %10s\n", "strategy", "p50 ms", "p99 ms", "mean ms");
  std::printf("%-24s %10.1f %10.1f %10.1f   (sequential waits: ~sum of lags, Σ medians=%.0f)\n",
              "eager per-write", eager.Percentile(0.5), eager.Percentile(0.99), eager.Mean(),
              sum_medians);
  std::printf("%-24s %10.1f %10.1f %10.1f   (parallel fan-out: ~max of lags)\n",
              "deferred parallel", deferred.Percentile(0.5), deferred.Percentile(0.99),
              deferred.Mean());
  const double ratio = deferred.Percentile(0.5) / eager.Percentile(0.5);
  std::printf("\n# deferred/eager p50 ratio: %.2f\n", ratio);
  std::printf("# slowest store replication-lag p50: %.1f model ms; deferred p50 within %.0f%%\n",
              max_lag_p50,
              max_lag_p50 > 0 ? 100.0 * (deferred.Percentile(0.5) - max_lag_p50) / max_lag_p50
                              : 0.0);

  RunWakeups(args.GetInt("writes", 400));
  return 0;
}

}  // namespace
}  // namespace antipode

int main(int argc, char** argv) { return antipode::Main(argc, argv); }
