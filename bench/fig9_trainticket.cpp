// Reproduces Fig. 9: TrainTicket ticket cancellation under open-loop load,
// original vs Antipode. Here the barrier sits on the request's critical path
// (the handler waits for the asynchronous refund before answering), so —
// unlike DeathStarBench — the enforcement cost shows up directly in the
// throughput–latency curve (paper: ~15% throughput, ~17% latency overhead)
// while the consistency window collapses to ~0.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/train_ticket/train_ticket.h"

using namespace antipode;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale(0.25);
  const double duration = args.GetDouble("duration", 2.0);

  const std::vector<double> loads = {120, 180, 240, 300, 360, 420};

  std::printf("# Fig 9: TrainTicket throughput vs latency, %g model s/point\n", duration);
  std::printf("%-8s %14s %14s %14s | %14s %14s %14s\n", "load", "orig_tput", "orig_lat_avg",
              "orig_lat_p99", "anti_tput", "anti_lat_avg", "anti_lat_p99");
  TrainTicketResult peak[2];
  for (double load : loads) {
    TrainTicketResult results[2];
    for (int antipode = 0; antipode <= 1; ++antipode) {
      TrainTicketConfig config;
      config.antipode = antipode == 1;
      config.load_rps = load;
      config.duration_model_seconds = duration;
      results[antipode] = RunTrainTicket(config);
      if (load == 360) {
        peak[antipode] = results[antipode];
      }
    }
    std::printf("%-8.0f %14.1f %14.1f %14.1f | %14.1f %14.1f %14.1f\n", load,
                results[0].throughput, results[0].cancel_latency_model_ms.Mean(),
                results[0].cancel_latency_model_ms.Percentile(0.99), results[1].throughput,
                results[1].cancel_latency_model_ms.Mean(),
                results[1].cancel_latency_model_ms.Percentile(0.99));
    std::fflush(stdout);
  }

  std::printf("\n# Fig 9 (right): consistency window at peak (360 req/s), model ms\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "variant", "p50", "mean", "p99", "violations");
  std::printf("%-10s %12.2f %12.2f %12.2f %13.2f%%\n", "original",
              peak[0].consistency_window_model_ms.Percentile(0.5),
              peak[0].consistency_window_model_ms.Mean(),
              peak[0].consistency_window_model_ms.Percentile(0.99),
              100.0 * peak[0].ViolationRate());
  std::printf("%-10s %12.2f %12.2f %12.2f %13.2f%%\n", "antipode",
              peak[1].consistency_window_model_ms.Percentile(0.5),
              peak[1].consistency_window_model_ms.Mean(),
              peak[1].consistency_window_model_ms.Percentile(0.99),
              100.0 * peak[1].ViolationRate());
  return 0;
}
