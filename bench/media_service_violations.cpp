// Companion experiment to §7.1's footnote: DeathStarBench's *media service*
// exhibits the same XCY violation class as the social network. One lineage
// carries dependencies on two datastores (S3-like media + MongoDB-like
// reviews), so this also demonstrates multi-store barriers; the
// hotel-reservation negative control (no cross-datastore references → no
// violations, with or without Antipode) is reproduced alongside.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/hotel_reservation/hotel_reservation.h"
#include "src/apps/media_service/media_service.h"

using namespace antipode;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 150);

  std::printf("# Media service (US upload -> EU render), %d reviews\n", requests);
  std::printf("%-10s %14s %14s %14s %16s\n", "variant", "review_miss", "media_miss",
              "violation_%", "window_mean_ms");
  for (int antipode = 0; antipode <= 1; ++antipode) {
    MediaServiceConfig config;
    config.antipode = antipode == 1;
    config.num_reviews = requests;
    MediaServiceResult result = RunMediaService(config);
    std::printf("%-10s %14d %14d %13.1f%% %16.0f\n", antipode == 1 ? "antipode" : "original",
                result.review_missing, result.media_missing, 100.0 * result.ViolationRate(),
                result.consistency_window_model_ms.Mean());
    std::fflush(stdout);
  }

  std::printf("\n# Hotel reservation (negative control: no cross-datastore references)\n");
  HotelReservationConfig hotel;
  hotel.num_reservations = requests;
  HotelReservationResult result = RunHotelReservation(hotel);
  std::printf("reservations=%d violations=%d checker_inconsistent_sites=%d\n",
              result.reservations, result.violations, result.checker_inconsistent);
  std::printf("# paper: no XCY violations found in hotel reservation\n");
  return 0;
}
