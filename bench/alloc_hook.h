// Bench-only allocation accounting: binaries that link `bench_alloc_hook`
// get global operator new/delete replacements that count every heap
// allocation, so a bench can report allocations/op on a hot path (the
// Put/ship steady-state target of the pool-allocator work). Deliberately a
// separate object library — the counters cost an atomic RMW per allocation
// and must never leak into the product libraries or tests.

#ifndef BENCH_ALLOC_HOOK_H_
#define BENCH_ALLOC_HOOK_H_

#include <cstdint>

namespace antipode {
namespace benchhook {

// Global heap allocations / bytes requested since process start. Monotonic;
// sample before and after the measured section and subtract.
uint64_t AllocationCount();
uint64_t AllocatedBytes();

}  // namespace benchhook
}  // namespace antipode

#endif  // BENCH_ALLOC_HOOK_H_
