// google-benchmark microbenchmarks of the Antipode primitives themselves:
// lineage algebra, serialization, framing, shim interposition overhead, and
// the barrier fast path (all dependencies already visible). These quantify
// the "<2% impact" claim at the mechanism level: every primitive is
// sub-microsecond to a few microseconds.

#include <benchmark/benchmark.h>

#include "src/antipode/antipode.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

Lineage MakeLineage(int deps) {
  Lineage lineage(42);
  for (int i = 0; i < deps; ++i) {
    lineage.Append(WriteId{"store" + std::to_string(i % 4), "key" + std::to_string(i),
                           static_cast<uint64_t>(i + 1)});
  }
  return lineage;
}

void BM_LineageAppend(benchmark::State& state) {
  for (auto _ : state) {
    Lineage lineage = MakeLineage(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(lineage);
  }
}
BENCHMARK(BM_LineageAppend)->Arg(1)->Arg(8)->Arg(64);

void BM_LineageSerialize(benchmark::State& state) {
  const Lineage lineage = MakeLineage(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string bytes = lineage.Serialize();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetLabel(std::to_string(MakeLineage(static_cast<int>(state.range(0))).WireSize()) +
                 " wire bytes");
}
BENCHMARK(BM_LineageSerialize)->Arg(1)->Arg(8)->Arg(64);

void BM_LineageDeserialize(benchmark::State& state) {
  const std::string bytes = MakeLineage(static_cast<int>(state.range(0))).Serialize();
  for (auto _ : state) {
    auto lineage = Lineage::Deserialize(bytes);
    benchmark::DoNotOptimize(lineage);
  }
}
BENCHMARK(BM_LineageDeserialize)->Arg(1)->Arg(8)->Arg(64);

void BM_FrameUnframe(benchmark::State& state) {
  const Lineage lineage = MakeLineage(8);
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  for (auto _ : state) {
    FramedValue out = UnframeValue(FrameValue(lineage, value));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FrameUnframe)->Arg(128)->Arg(8192);

// Raw store write vs shimmed write: the interposition overhead.
void BM_KvRawWrite(benchmark::State& state) {
  TimeScale::Set(0.0);  // zero out simulated sleeps; measure code cost only
  KvStore store(KvStore::DefaultOptions("bm-raw", {Region::kUs}));
  uint64_t i = 0;
  for (auto _ : state) {
    store.Set(Region::kUs, "key" + std::to_string(i++ % 1024), "value");
  }
}
BENCHMARK(BM_KvRawWrite);

void BM_KvShimWrite(benchmark::State& state) {
  TimeScale::Set(0.0);
  KvStore store(KvStore::DefaultOptions("bm-shim", {Region::kUs}));
  KvShim shim(&store);
  RequestContext context;
  ScopedContext scoped(std::move(context));
  LineageApi::Root();
  uint64_t i = 0;
  for (auto _ : state) {
    // Fresh lineage each iteration so the dependency set stays request-sized.
    LineageApi::Root();
    shim.WriteCtx(Region::kUs, "key" + std::to_string(i++ % 1024), "value");
  }
}
BENCHMARK(BM_KvShimWrite);

void BM_BarrierFastPath(benchmark::State& state) {
  TimeScale::Set(0.0);
  KvStore store(KvStore::DefaultOptions("bm-barrier", {Region::kUs}));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "key", "value", Lineage(1));
  for (auto _ : state) {
    Status status = Barrier(lineage, Region::kUs, BarrierOptions{.registry = &registry});
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_BarrierFastPath);

void BM_BarrierDryRun(benchmark::State& state) {
  TimeScale::Set(0.0);
  KvStore store(KvStore::DefaultOptions("bm-dryrun", {Region::kUs}));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "key", "value", Lineage(1));
  for (auto _ : state) {
    auto report = BarrierDryRun(lineage, Region::kUs, &registry);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_BarrierDryRun);

void BM_ContextPropagationRoundTrip(benchmark::State& state) {
  RequestContext context;
  ScopedContext scoped(std::move(context));
  LineageApi::Install(MakeLineage(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    std::string blob = RequestContext::SerializeCurrent();
    RequestContext restored = RequestContext::Deserialize(blob);
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_ContextPropagationRoundTrip)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace antipode

BENCHMARK_MAIN();
