// Micro-benchmark for the sharded multi-worker timer engine.
//
// Section 1 drives the engine directly: N already-due events, each callback
// doing a short CPU spin plus a blocking sleep (the shape of real shipment
// callbacks, which block on apply hooks and simulated WAN sleeps). The
// inline configuration (1 shard, 0 workers) reproduces the legacy
// single-dispatcher engine; worker configurations overlap the blocking time.
//
// Section 2 drives the real ReplicatedStore::Put path with a blocking apply
// hook on a private engine, reporting end-to-end replication applies/sec and
// heap allocations per Put (writer-side submit + 2 shipment callbacks),
// counted by the bench-only global allocation hook.
//
// Section 3 is dispatch-bound: zero spin, zero block — pure per-event engine
// overhead (shard heap + MPSC handoff + wake), the queue-machinery number.
//
// Flags: --events=<n> --block-us=<us> --spin-us=<us> --puts=<n> --scale=<f>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/alloc_hook.h"
#include "bench/bench_util.h"
#include "src/common/timer_service.h"
#include "src/net/region.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/store/replicated_store.h"

namespace antipode {
namespace {

void SpinFor(std::chrono::microseconds us) {
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) {
  }
}

struct EngineResult {
  double wall_ms = 0.0;
  double applies_per_sec = 0.0;
  double lag_mean_ms = 0.0;
  double lag_p99_ms = 0.0;
};

EngineResult RunEngineConfig(size_t num_shards, size_t num_workers, int events, int spin_us,
                             int block_us) {
  MetricsRegistry::Default().SnapshotAndReset();  // isolate this config's lag
  TimerService timers(TimerServiceOptions{.num_shards = num_shards, .num_workers = num_workers});
  std::atomic<int> fired{0};
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < events; ++i) {
    timers.ScheduleAfter(Micros(0), static_cast<TimerService::AffinityToken>(i),
                         [&fired, spin_us, block_us] {
                           SpinFor(std::chrono::microseconds(spin_us));
                           std::this_thread::sleep_for(std::chrono::microseconds(block_us));
                           fired.fetch_add(1, std::memory_order_relaxed);
                         });
  }
  while (fired.load(std::memory_order_relaxed) < events) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  timers.Shutdown();

  EngineResult r;
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed).count();
  r.applies_per_sec = events / (r.wall_ms / 1000.0);
  const Histogram lag =
      MetricsRegistry::Default().SnapshotAndReset().HistogramTotal("timer.dispatch_lag_ms");
  r.lag_mean_ms = lag.Mean();
  r.lag_p99_ms = lag.Percentile(0.99);
  return r;
}

struct StoreResult {
  double applies_per_sec = 0.0;
  double allocs_per_put = 0.0;
};

StoreResult RunStoreConfig(size_t num_shards, size_t num_workers, int puts, int block_us) {
  TimerService timers(TimerServiceOptions{.num_shards = num_shards, .num_workers = num_workers});
  StoreResult result;
  {
    ReplicatedStoreOptions options;
    options.name = "bench";
    options.regions = {Region::kUs, Region::kEu, Region::kSg};
    options.replication.median_millis = 5.0;
    options.replication.sigma = 0.0;
    ReplicatedStore store(options, &RegionTopology::Default(), &timers);
    std::atomic<int> applied{0};
    store.SetApplyHook([&applied, block_us](Region region, const StoredEntry&) {
      if (region == Region::kUs) {
        return;  // local apply on the writer thread: don't serialize the bench
      }
      std::this_thread::sleep_for(std::chrono::microseconds(block_us));
      applied.fetch_add(1, std::memory_order_relaxed);
    });
    // Warm-up: populate the entry-block pool, timer-node freelists, and
    // per-key version maps so the measured window is steady state.
    const int warmup = std::min(puts, 64);
    for (int i = 0; i < warmup; ++i) {
      store.Put(Region::kUs, "key-" + std::to_string(i), "v");
    }
    store.DrainReplication();
    const int measured_applies_base = applied.load();
    const uint64_t allocs_before = benchhook::AllocationCount();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < puts; ++i) {
      store.Put(Region::kUs, "key-" + std::to_string(i), "v");
    }
    store.DrainReplication();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const uint64_t allocs_after = benchhook::AllocationCount();
    const double wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed).count();
    const int remote_applies = applied.load() - measured_applies_base;
    result.applies_per_sec = remote_applies / (wall_ms / 1000.0);
    result.allocs_per_put =
        puts > 0 ? static_cast<double>(allocs_after - allocs_before) / puts : 0.0;
  }
  timers.Shutdown();
  return result;
}

int Main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  const int events = args.GetInt("events", 2000);
  const int spin_us = args.GetInt("spin-us", 5);
  const int block_us = args.GetInt("block-us", 200);
  const int puts = args.GetInt("puts", 300);
  args.SetupTimeScale(0.02);

  std::printf("# engine: %d events, %dus spin + %dus blocking sleep per callback\n", events,
              spin_us, block_us);
  std::printf("%-22s %10s %14s %12s %12s %9s\n", "config", "wall_ms", "applies/sec",
              "lag_mean_ms", "lag_p99_ms", "speedup");

  const EngineResult baseline = RunEngineConfig(1, 0, events, spin_us, block_us);
  std::printf("%-22s %10.1f %14.0f %12.3f %12.3f %8.2fx\n", "inline (1 shard)", baseline.wall_ms,
              baseline.applies_per_sec, baseline.lag_mean_ms, baseline.lag_p99_ms, 1.0);

  double speedup_at_8 = 0.0;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    const EngineResult r = RunEngineConfig(4, workers, events, spin_us, block_us);
    const double speedup = r.applies_per_sec / baseline.applies_per_sec;
    if (workers == 8) {
      speedup_at_8 = speedup;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "4 shards, %zu workers", workers);
    std::printf("%-22s %10.1f %14.0f %12.3f %12.3f %8.2fx\n", label, r.wall_ms,
                r.applies_per_sec, r.lag_mean_ms, r.lag_p99_ms, speedup);
  }
  std::printf("# speedup at 8 workers vs inline engine: %.2fx %s\n", speedup_at_8,
              speedup_at_8 >= 3.0 ? "(>= 3x target met)" : "(below 3x target)");

  std::printf("\n# store: %d puts x 2 remote regions, %dus blocking apply hook\n", puts,
              block_us);
  const StoreResult store_inline = RunStoreConfig(1, 0, puts, block_us);
  const StoreResult store_workers = RunStoreConfig(4, 8, puts, block_us);
  std::printf("%-22s %14.0f applies/sec  %8.1f allocs/put\n", "inline (1 shard)",
              store_inline.applies_per_sec, store_inline.allocs_per_put);
  std::printf("%-22s %14.0f applies/sec  %8.1f allocs/put  (%.2fx)\n", "4 shards, 8 workers",
              store_workers.applies_per_sec, store_workers.allocs_per_put,
              store_workers.applies_per_sec / store_inline.applies_per_sec);

  std::printf("\n# dispatch-bound: %d events, zero spin, zero block (pure engine overhead)\n",
              events);
  const EngineResult dispatch_inline = RunEngineConfig(1, 0, events, 0, 0);
  const EngineResult dispatch_workers = RunEngineConfig(4, 8, events, 0, 0);
  std::printf("%-22s %14.0f events/sec\n", "inline (1 shard)", dispatch_inline.applies_per_sec);
  std::printf("%-22s %14.0f events/sec (%.2fx)\n", "4 shards, 8 workers",
              dispatch_workers.applies_per_sec,
              dispatch_workers.applies_per_sec / dispatch_inline.applies_per_sec);
  return 0;
}

}  // namespace
}  // namespace antipode

int main(int argc, char** argv) { return antipode::Main(argc, argv); }
