// Seed-sweep fault exploration under deterministic simulation (ISSUE 10).
//
// Runs N seeded episodes of a cross-service workload — writer in US updates a
// profile + posts store (lineage via KvShim), publishes a notification
// through a replicated queue, and pings an RPC service with idempotent
// retries; readers in EU and SG consume notifications, run a visibility
// Barrier on the carried lineage, then read — each under a *randomized*
// FaultPlan (partitions, outages, WAN delay spikes, RPC response drops,
// broker redeliveries, transient apply errors) with every delay virtual and
// every decision seeded. The configuration grid cycles seed % 4 over both
// enforcement backends (lineage, stable-frontier) × scoped/unscoped
// locality, so every ALWAYS property is exercised under both strategies.
//
// Per episode the property registry opens a fresh run window; the episode
// verdict is RunViolationFree() ∧ a violation-free XCY history. A sampled
// subset of seeds is re-run and the event-trace hashes compared — the
// replay-determinism guarantee the whole approach rests on. On any failure
// the exact seed and a replay command are printed:
//
//     ./sim_sweep --replay-seed=<seed>
//
// re-runs that one episode (twice, verifying the hash) with the property
// summary on stderr.
//
// Flags: --seeds=<n> (default 1000), --quick (200 seeds), --replay-seed=<s>,
//        --json-out=<path> (default BENCH_sim_sweep.json), --deep-checks=0|1
//        (default 1: memoized barrier fast paths re-probe every dependency).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/antipode/barrier.h"
#include "src/antipode/enforcement.h"
#include "src/antipode/history_checker.h"
#include "src/antipode/kv_shim.h"
#include "src/antipode/shim.h"
#include "src/common/property.h"
#include "src/common/random.h"
#include "src/common/sim.h"
#include "src/common/thread_pool.h"
#include "src/common/timer_service.h"
#include "src/fault/fault_injector.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/rpc/rpc.h"
#include "src/store/kv_store.h"
#include "src/store/queue_store.h"

using namespace antipode;

namespace {

struct EpisodeConfig {
  EnforcementBackendKind backend = EnforcementBackendKind::kLineage;
  bool use_scope = true;
  const char* backend_name = "lineage";
  const char* label = "lineage/scoped";
};

// Version of the (store, key) dependency inside a lineage. deps() is sorted
// by ⟨store, key, version⟩, so the matching run's last element is the newest.
uint64_t VersionOf(const Lineage& lineage, const std::string& store,
                   const std::string& key) {
  uint64_t version = 0;
  for (const auto& dep : lineage.deps()) {
    if (dep.store == store && dep.key == key && dep.version > version) {
      version = dep.version;
    }
  }
  return version;
}

EpisodeConfig ConfigFor(uint64_t seed) {
  static const EpisodeConfig kGrid[4] = {
      {EnforcementBackendKind::kLineage, true, "lineage", "lineage/scoped"},
      {EnforcementBackendKind::kLineage, false, "lineage", "lineage/unscoped"},
      {EnforcementBackendKind::kStableFrontier, true, "stable_frontier", "frontier/scoped"},
      {EnforcementBackendKind::kStableFrontier, false, "stable_frontier",
       "frontier/unscoped"},
  };
  return kGrid[seed % 4];
}

struct EpisodeResult {
  uint64_t seed = 0;
  uint64_t trace_hash = 0;
  uint64_t events = 0;
  bool always_clean = false;
  bool xcy_consistent = false;
  uint64_t reads = 0;
  uint64_t deadline_misses = 0;  // barriers that expired (allowed, counted)
};

// Randomized fault schedule: 1–4 rules drawn from the full kind menu, every
// window finite and inside the episode span so every fault heals.
FaultPlan BuildPlan(Rng& rng, uint64_t seed, const std::string& posts,
                    const std::string& profile, const std::string& notif,
                    double span_ms) {
  FaultPlan plan{"sweep-" + std::to_string(seed), seed, {}};
  const int num_rules = 1 + static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < num_rules; ++i) {
    FaultRule rule;
    rule.start_model_ms = rng.NextUniform(0.0, span_ms * 0.5);
    rule.end_model_ms = rule.start_model_ms + rng.NextUniform(span_ms * 0.1, span_ms * 0.6);
    const Region target = rng.NextBernoulli(0.5) ? Region::kEu : Region::kSg;
    switch (rng.NextBelow(9)) {
      case 0:
        rule.kind = FaultKind::kLinkPartition;
        rule.store = rng.NextBernoulli(0.5) ? posts : profile;
        rule.to = target;
        break;
      case 1:
        rule.kind = FaultKind::kStoreStall;
        rule.store = rng.NextBernoulli(0.5) ? posts : profile;
        rule.to = target;
        break;
      case 2:
        rule.kind = FaultKind::kRegionOutage;
        rule.store = rng.NextBernoulli(0.5) ? posts : notif;
        rule.to = target;
        break;
      case 3:
        rule.kind = FaultKind::kLinkDelay;
        rule.delay_factor = 1.0 + rng.NextUniform(1.0, 3.0);
        rule.delay_add_model_ms = rng.NextUniform(5.0, 20.0);
        break;
      case 4:
        rule.kind = FaultKind::kRpcDropResponse;
        rule.service = "notify";
        rule.probability = rng.NextUniform(0.5, 0.9);
        break;
      case 5:
        rule.kind = FaultKind::kRpcFailure;
        rule.service = "notify";
        rule.probability = rng.NextUniform(0.2, 0.6);
        break;
      case 6:
        rule.kind = FaultKind::kRpcDelay;
        rule.service = "notify";
        rule.delay_add_model_ms = rng.NextUniform(30.0, 80.0);
        break;
      case 7:
        rule.kind = FaultKind::kQueueDropDelivery;
        rule.store = notif;
        rule.probability = rng.NextUniform(0.3, 0.8);
        break;
      default:
        // Apply errors against the multi-version profile key are what makes
        // delayed retries race fresh applies (store.stale_replay_ignored).
        rule.kind = FaultKind::kStoreApplyError;
        rule.store = rng.NextBernoulli(0.5) ? posts : profile;
        rule.probability = rng.NextUniform(0.2, 0.6);
        break;
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

// One deterministic episode. Everything the episode touches — scheduler,
// timers, topology, stores, shims, RPC mesh, fault plan — is private and
// seeded, so the schedule (and its trace hash) is a pure function of `seed`.
EpisodeResult RunEpisode(uint64_t seed) {
  EpisodeResult result;
  result.seed = seed;
  const EpisodeConfig config = ConfigFor(seed);

  PropertyRegistry::Instance().BeginRun();

  ScopedSimMode sim(seed);
  Rng rng(SimMix64(seed ^ 0x5157454550ULL));  // "SWEEP": decoupled from store seeds

  TimerServiceOptions timer_options;
  timer_options.deterministic = true;
  TimerService timers(timer_options);
  RegionTopology topology(/*jitter_sigma=*/0.1, /*seed=*/seed);
  FaultInjector injector;
  VisibilityCache cache;

  const std::vector<Region> all_regions = {Region::kUs, Region::kEu, Region::kSg};
  // Scoped episodes deploy the profile store on {US, EU} only: its writes'
  // locality scope excludes SG, so a scoped barrier at SG must skip them
  // (barrier.scope_respected) while the EU waits still arm. Unscoped
  // episodes replicate everywhere and wait everywhere.
  const std::vector<Region> profile_regions =
      config.use_scope ? std::vector<Region>{Region::kUs, Region::kEu} : all_regions;

  const std::string posts_name = "posts-" + std::to_string(seed);
  const std::string profile_name = "profile-" + std::to_string(seed);
  const std::string notif_name = "notif-" + std::to_string(seed);

  auto posts_options = KvStore::DefaultOptions(posts_name, all_regions);
  posts_options.replication.median_millis = 20.0;
  posts_options.replication.sigma = 0.3;
  posts_options.replication.seed = seed;
  posts_options.visibility_cache = &cache;
  posts_options.fault_injector = &injector;
  KvStore posts(std::move(posts_options), &topology, &timers);

  auto profile_options = KvStore::DefaultOptions(profile_name, profile_regions);
  profile_options.replication.median_millis = 15.0;
  profile_options.replication.sigma = 0.3;
  profile_options.replication.seed = seed + 1;
  profile_options.visibility_cache = &cache;
  profile_options.fault_injector = &injector;
  KvStore profile(std::move(profile_options), &topology, &timers);

  auto notif_options = QueueStore::DefaultOptions(notif_name, all_regions);
  notif_options.replication.median_millis = 30.0;
  notif_options.replication.sigma = 0.2;
  notif_options.replication.seed = seed + 2;
  notif_options.visibility_cache = &cache;
  notif_options.fault_injector = &injector;
  QueueStore notif(std::move(notif_options), &topology, &timers);

  KvShim posts_shim(&posts);
  KvShim profile_shim(&profile);
  ShimRegistry registry(ShimRegistry::Options{"sim-sweep", true, config.backend});
  registry.Register(&posts_shim);
  registry.Register(&profile_shim);

  SimulatedNetwork net(&topology, &timers, &injector);
  ServiceRegistry services(&net);
  RpcService* notify = services.RegisterService("notify", Region::kEu, 2);
  notify->RegisterMethod("ack", [](const std::string& payload) {
    return Result<std::string>("ok:" + payload);
  });
  RpcClient rpc(&services, Region::kUs, &injector);

  XcyHistoryChecker checker;
  constexpr uint64_t kWriterProcess = 1;

  const int num_posts = 8 + static_cast<int>(rng.NextBelow(5));  // 8..12
  std::vector<Lineage> lineages(static_cast<size_t>(num_posts));

  ThreadPool eu_pool(1, "sweep-eu");
  ThreadPool sg_pool(1, "sweep-sg");

  auto make_reader = [&](Region region, uint64_t process) {
    return [&, region, process](const BrokerMessage& message) {
      const int idx = std::atoi(message.payload.c_str());
      if (idx < 0 || idx >= num_posts) {
        return;
      }
      const Lineage& lineage = lineages[static_cast<size_t>(idx)];
      // Mostly-generous deadlines, with a deterministic minority tight
      // enough to expire while a partition is still open — that is what
      // keeps barrier.deadline_exceeded (SOMETIMES) reachable.
      const bool tight = (idx % 7) == 3;
      BarrierOptions options;
      options.wait.deadline =
          DeadlineAfter(TimeScale::FromModelMillis(tight ? 4.0 : 20000.0));
      options.registry = &registry;
      options.use_scope = config.use_scope;
      options.backend = config.backend;
      const Status status = Barrier(lineage, region, options);
      if (!status.ok()) {
        ++result.deadline_misses;
        return;  // the app contract: no read without a completed barrier
      }
      // A second barrier on the now-memoized lineage: the memo fast path must
      // serve it, and with deep_checks on, barrier.memo_sound re-probes every
      // dependency the memo claims visible.
      (void)Barrier(lineage, region, options);
      // Read-your-barrier: post first (its lineage names the profile dep),
      // then the profile — the classic cross-service order that is stale
      // without enforcement. Every ObserveRead is an xcy.read_not_stale
      // evaluation in sim mode.
      const std::string post_key = "p" + std::to_string(idx);
      auto post = posts_shim.Read(region, post_key);
      if (post.ok()) {
        ++result.reads;
        checker.ObserveRead(process, posts_name, post_key,
                            VersionOf(post->lineage, posts_name, post_key),
                            post->lineage);
      }
      const bool profile_readable = !config.use_scope || region != Region::kSg;
      if (profile_readable) {
        auto bio = profile_shim.Read(region, "u0");
        if (bio.ok()) {
          ++result.reads;
          checker.ObserveRead(process, profile_name, "u0",
                              VersionOf(bio->lineage, profile_name, "u0"),
                              bio->lineage);
        }
      }
    };
  };
  notif.Subscribe(Region::kEu, "posts", &eu_pool, make_reader(Region::kEu, 2));
  notif.Subscribe(Region::kSg, "posts", &sg_pool, make_reader(Region::kSg, 3));

  // Total model span the fault windows live inside: the write loop's spacing
  // plus the settle tail.
  const double span_ms = static_cast<double>(num_posts) * 12.0 + 200.0;
  injector.Arm(BuildPlan(rng, seed, posts_name, profile_name, notif_name, span_ms));

  // Per-attempt timeout above the natural US→EU round trip (~90 model ms):
  // fault-free calls complete on the first attempt, and retries are driven by
  // the injected faults (dropped responses, handler failures, delay spikes) —
  // which is exactly when the service's dedup cache must absorb the re-send.
  RpcCallOptions rpc_options;
  rpc_options.timeout = TimeScale::FromModelMillis(150.0);
  rpc_options.deadline = TimeScale::FromModelMillis(600.0);
  rpc_options.retry.max_attempts = 3;
  rpc_options.retry.seed = seed;
  rpc_options.idempotent = true;

  for (int i = 0; i < num_posts; ++i) {
    Lineage lineage(1);
    if (i % 3 == 0) {
      lineage = profile_shim.Write(Region::kUs, "u0", "bio-v" + std::to_string(i),
                                   std::move(lineage));
    }
    const std::string key = "p" + std::to_string(i);
    Lineage before = lineage;
    lineage = posts_shim.Write(Region::kUs, key, "body-" + std::to_string(i),
                               std::move(lineage));
    checker.ObserveWrite(
        kWriterProcess, WriteId{posts_name, key, VersionOf(lineage, posts_name, key)},
        before);
    lineages[static_cast<size_t>(i)] = lineage;
    notif.Publish(Region::kUs, "posts", std::to_string(i));
    (void)rpc.Call("notify", "ack", std::to_string(i), rpc_options);
    GlobalClock().SleepFor(TimeScale::FromModelMillis(4.0 + rng.NextUniform(0.0, 8.0)));
  }

  // Settle: past every fault window (they all heal), past broker ack-timeout
  // redeliveries, past the replication tail.
  GlobalClock().SleepFor(TimeScale::FromModelMillis(span_ms + 5000.0));
  posts.DrainReplication();
  profile.DrainReplication();
  notif.DrainReplication();
  sim.scheduler().RunUntilQuiescent();
  injector.Disarm();
  sim.scheduler().RunUntilQuiescent();

  services.ShutdownAll();
  eu_pool.Shutdown();
  sg_pool.Shutdown();
  timers.Shutdown();
  sim.scheduler().RunUntilQuiescent();

  result.trace_hash = sim.scheduler().TraceHash();
  result.events = sim.scheduler().events_run();
  result.xcy_consistent = checker.Consistent();
  result.always_clean = PropertyRegistry::Instance().RunViolationFree();
  return result;
}

const char* KindName(PropertyKind kind) {
  switch (kind) {
    case PropertyKind::kAlways:
      return "ALWAYS";
    case PropertyKind::kSometimes:
      return "SOMETIMES";
    default:
      return "REACHABLE";
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  TimeScale::Set(args.GetDouble("scale", 1.0));  // model ms == virtual ms
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int default_seeds = quick ? 200 : 1000;
  const int seeds = args.GetInt("seeds", default_seeds);
  const long long replay_seed = args.GetInt("replay-seed", -1);
  const std::string json_path = args.GetString("json-out", "BENCH_sim_sweep.json");
  PropertyRegistry::Instance().set_deep_checks(args.GetInt("deep-checks", 1) != 0);

  // Single-episode replay mode: run the seed twice, verify the trace hash
  // reproduces, report the verdict loudly.
  if (replay_seed >= 0) {
    const EpisodeResult first = RunEpisode(static_cast<uint64_t>(replay_seed));
    const EpisodeResult second = RunEpisode(static_cast<uint64_t>(replay_seed));
    std::printf("seed %lld: trace_hash=%016" PRIx64 " events=%" PRIu64
                " reads=%" PRIu64 " always=%s xcy=%s replay=%s\n",
                replay_seed, first.trace_hash, first.events, first.reads,
                first.always_clean ? "clean" : "VIOLATED",
                first.xcy_consistent ? "consistent" : "VIOLATED",
                first.trace_hash == second.trace_hash ? "exact" : "MISMATCH");
    PropertyRegistry::Instance().PrintSummary(std::cerr);
    return (first.always_clean && first.xcy_consistent &&
            first.trace_hash == second.trace_hash)
               ? 0
               : 1;
  }

  // Pre-register the reach catalogue. Properties normally register on first
  // reach, so a site the sweep silently failed to exercise would be invisible
  // to UnreachedSometimes(); registering up front turns "this workload must
  // drive retries, dedup hits, backlog replays, deadline misses, and every
  // injected fault kind" into a checked assertion.
  auto& pre = PropertyRegistry::Instance();
  pre.Register(PropertyKind::kSometimes, "barrier.deadline_exceeded");
  pre.Register(PropertyKind::kSometimes, "store.backlog_replayed");
  pre.Register(PropertyKind::kReachable, "rpc.retry_attempted");
  pre.Register(PropertyKind::kReachable, "rpc.dedup_hit");
  for (const char* fault :
       {"fault.link_partition", "fault.link_delay", "fault.rpc_failure",
        "fault.rpc_drop_response", "fault.rpc_delay", "fault.store_stall",
        "fault.store_apply_error", "fault.region_outage", "fault.queue_drop_delivery"}) {
    pre.Register(PropertyKind::kReachable, fault);
  }

  std::printf("# sim_sweep: %d seeded episodes (backend × scope grid, randomized faults)\n",
              seeds);

  std::vector<uint64_t> failing_seeds;
  std::map<std::string, int> per_config;
  uint64_t replays_checked = 0;
  uint64_t replay_mismatches = 0;
  uint64_t total_events = 0;
  uint64_t total_reads = 0;
  uint64_t deadline_misses = 0;

  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = static_cast<uint64_t>(i) + 1;
    const EpisodeResult result = RunEpisode(seed);
    total_events += result.events;
    total_reads += result.reads;
    deadline_misses += result.deadline_misses;
    per_config[ConfigFor(seed).label]++;
    if (!result.always_clean || !result.xcy_consistent) {
      failing_seeds.push_back(seed);
      std::fprintf(stderr,
                   "sim_sweep: FAILURE at seed %" PRIu64 " (always=%s xcy=%s)\n"
                   "  replay: %s --replay-seed=%" PRIu64 "\n",
                   seed, result.always_clean ? "clean" : "violated",
                   result.xcy_consistent ? "consistent" : "violated", argv[0], seed);
    }
    // Every 53rd episode replays immediately: same seed, fresh engines —
    // the hash must reproduce byte-for-byte.
    if (seed % 53 == 1) {
      ++replays_checked;
      const EpisodeResult replay = RunEpisode(seed);
      if (replay.trace_hash != result.trace_hash) {
        ++replay_mismatches;
        std::fprintf(stderr,
                     "sim_sweep: REPLAY MISMATCH at seed %" PRIu64 " (%016" PRIx64
                     " vs %016" PRIx64 ")\n  replay: %s --replay-seed=%" PRIu64 "\n",
                     seed, result.trace_hash, replay.trace_hash, argv[0], seed);
      }
    }
    if ((i + 1) % 250 == 0) {
      std::printf("# ... %d/%d episodes, %" PRIu64 " events, %zu failures\n", i + 1, seeds,
                  total_events, failing_seeds.size());
    }
  }

  auto& registry = PropertyRegistry::Instance();
  const auto snapshot = registry.Snapshot();
  const auto unreached = registry.UnreachedSometimes();
  const uint64_t always_failures = registry.TotalAlwaysFailures();

  std::printf("\n%-28s %-10s %12s %12s\n", "property", "kind", "passes", "failures");
  for (const auto& state : snapshot) {
    std::printf("%-28s %-10s %12" PRIu64 " %12" PRIu64 "\n", state.name.c_str(),
                KindName(state.kind), state.total_passes, state.total_failures);
  }
  std::printf("\n# %d episodes, %" PRIu64 " events, %" PRIu64 " checked reads, %" PRIu64
              " barrier deadline misses (allowed)\n",
              seeds, total_events, total_reads, deadline_misses);
  std::printf("# ALWAYS violations: %" PRIu64 ", unreached SOMETIMES/REACHABLE: %zu, "
              "replays %" PRIu64 "/%" PRIu64 " exact\n",
              always_failures, unreached.size(), replays_checked - replay_mismatches,
              replays_checked);
  for (const auto& name : unreached) {
    std::fprintf(stderr, "sim_sweep: SOMETIMES property never reached: %s\n", name.c_str());
  }

  JsonReport json;
  json.BeginObject()
      .Field("bench", "sim_sweep")
      .Field("quick", quick)
      .Field("seeds_run", static_cast<double>(seeds))
      .Field("events", static_cast<double>(total_events))
      .Field("checked_reads", static_cast<double>(total_reads))
      .Field("barrier_deadline_misses", static_cast<double>(deadline_misses))
      .Field("always_violations", static_cast<double>(always_failures))
      .Field("unreached_sometimes", static_cast<double>(unreached.size()))
      .Field("failing_seeds", static_cast<double>(failing_seeds.size()));
  json.BeginArray("configs");
  for (const auto& [label, count] : per_config) {
    json.BeginObject()
        .Field("label", label)
        .Field("episodes", static_cast<double>(count))
        .EndObject();
  }
  json.EndArray();
  json.BeginObject("replay")
      .Field("checked", static_cast<double>(replays_checked))
      .Field("mismatches", static_cast<double>(replay_mismatches))
      .EndObject();
  json.BeginArray("properties");
  for (const auto& state : snapshot) {
    json.BeginObject()
        .Field("name", state.name)
        .Field("kind", KindName(state.kind))
        .Field("passes", static_cast<double>(state.total_passes))
        .Field("failures", static_cast<double>(state.total_failures))
        .EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.WriteFile(json_path.c_str());
  std::printf("# wrote %s\n", json_path.c_str());

  const bool ok = failing_seeds.empty() && always_failures == 0 && unreached.empty() &&
                  replay_mismatches == 0;
  if (!ok) {
    std::fprintf(stderr, "sim_sweep: FAILED (%zu failing seeds, %" PRIu64
                         " ALWAYS violations, %zu unreached, %" PRIu64 " replay mismatches)\n",
                 failing_seeds.size(), always_failures, unreached.size(), replay_mismatches);
  }
  return ok ? 0 : 1;
}
