// Reproduces the §7.4 lineage-metadata analysis over the Alibaba-style
// trace: assuming the worst case where *every* stateful operation of a
// request joins the dependency chain, the paper found the lineage metadata
// stays below 1 KB for 99% of requests and averages ≈200 bytes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/trace/call_graph.h"

using namespace antipode;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  const auto requests = static_cast<uint32_t>(args.GetInt("requests", 100000));

  CallGraphGenerator generator(TraceGenOptions{});
  TraceAnalysis analysis = AnalyzeTrace(generator, requests);
  const Histogram& bytes = analysis.lineage_bytes_per_request;

  std::printf("# §7.4 worst-case lineage metadata size on the Alibaba-style trace "
              "(%u requests)\n",
              requests);
  std::printf("%-10s %10s\n", "stat", "bytes");
  std::printf("%-10s %10.0f\n", "mean", bytes.Mean());
  std::printf("%-10s %10.0f\n", "p50", bytes.Percentile(0.50));
  std::printf("%-10s %10.0f\n", "p90", bytes.Percentile(0.90));
  std::printf("%-10s %10.0f\n", "p99", bytes.Percentile(0.99));
  std::printf("%-10s %10.0f\n", "max", bytes.max());
  std::printf("# paper: mean ~200 B, p99 < 1 KB\n");
  return 0;
}
