// Reproduces the §7.4 lineage-metadata analysis over the Alibaba-style
// trace: assuming the worst case where *every* stateful operation of a
// request joins the dependency chain, the paper found the lineage metadata
// stays below 1 KB for 99% of requests and averages ≈200 bytes.
//
// A second phase measures how much of that metadata the visibility-cache
// watermark sheds at the Serialize boundary (DESIGN.md §8): each stateful
// call is a write with a per-store sequence number, replication to every
// region completes `--lag` calls after the write, and the request serializes
// its lineage `--delay` calls after its last write. Writes that have
// replicated everywhere by then can never block any barrier, so
// Lineage::PruneVisibleEverywhere drops them from the baggage.
//
// Flags: --requests=<n> (default 100000), --lag=<calls> (default 64),
//        --delay=<calls> (default 32).

#include <array>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/antipode/lineage.h"
#include "src/antipode/visibility_cache.h"
#include "src/trace/call_graph.h"

using namespace antipode;

namespace {

constexpr uint32_t kTraceStores = 12;  // AnalyzeTrace shards services over 12 stores
const std::vector<Region> kAllRegions = {Region::kUs, Region::kEu, Region::kSg};

struct PendingApply {
  std::string key;
  uint64_t version = 0;
  uint64_t seq = 0;
  uint64_t written_at = 0;  // global call-clock tick of the write
};

void PrintHistogram(const char* title, const Histogram& bytes) {
  std::printf("%-18s %10.0f %10.0f %10.0f %10.0f %10.0f\n", title, bytes.Mean(),
              bytes.Percentile(0.50), bytes.Percentile(0.90), bytes.Percentile(0.99),
              bytes.max());
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  const auto requests = static_cast<uint32_t>(args.GetInt("requests", 100000));
  const auto lag = static_cast<uint64_t>(args.GetInt("lag", 64));
  const auto delay = static_cast<uint64_t>(args.GetInt("delay", 32));

  CallGraphGenerator generator(TraceGenOptions{});

  // Private cache: one StoreVisibility per synthetic store, same "storeN"
  // naming AnalyzeTrace uses, so PruneVisibleEverywhere resolves them by name.
  VisibilityCache cache;
  std::vector<std::shared_ptr<StoreVisibility>> stores;
  std::array<uint64_t, kTraceStores> seq_counters{};
  std::array<std::deque<PendingApply>, kTraceStores> in_flight;
  for (uint32_t s = 0; s < kTraceStores; ++s) {
    stores.push_back(cache.Register("store" + std::to_string(s), kAllRegions));
  }

  // Mirrors AnalyzeTrace's lineage construction (same key rng derivation) so
  // the "before" column here matches the §7.4 analysis.
  Rng key_rng(generator.options().seed ^ 0xABCDEF);
  Histogram before_bytes;
  Histogram after_bytes;
  Histogram deps_before;
  Histogram deps_after;
  uint64_t clock = 0;

  for (uint32_t i = 0; i < requests; ++i) {
    CallGraphStats stats = generator.Next();
    Lineage lineage(i + 1);
    for (uint32_t service : stats.stateful_service_sequence) {
      const uint32_t store_idx = service % kTraceStores;
      WriteId id;
      id.store = "store" + std::to_string(store_idx);
      id.key = "s" + std::to_string(service) + "/k" + std::to_string(key_rng.NextBelow(2));
      id.version = 1 + key_rng.NextBelow(1 << 20);
      in_flight[store_idx].push_back(PendingApply{id.key, id.version,
                                                  ++seq_counters[store_idx], clock});
      ++clock;
      lineage.Append(std::move(id));
    }
    before_bytes.Record(static_cast<double>(lineage.WireSize()));
    deps_before.Record(static_cast<double>(lineage.Size()));

    // The request serializes its lineage `delay` ticks after its last write:
    // every write older than `lag` ticks at that point has applied at all
    // regions, so flush those applies into the cache before pruning.
    const uint64_t serialize_at = clock + delay;
    const uint64_t horizon = serialize_at >= lag ? serialize_at - lag : 0;
    for (uint32_t s = 0; s < kTraceStores; ++s) {
      auto& queue = in_flight[s];
      while (!queue.empty() && queue.front().written_at <= horizon) {
        const PendingApply& apply = queue.front();
        for (Region region : kAllRegions) {
          stores[s]->NoteApply(region, apply.key, apply.version, apply.seq);
        }
        queue.pop_front();
      }
    }
    lineage.PruneVisibleEverywhere(cache);
    after_bytes.Record(static_cast<double>(lineage.WireSize()));
    deps_after.Record(static_cast<double>(lineage.Size()));
  }

  std::printf("# §7.4 worst-case lineage metadata size on the Alibaba-style trace "
              "(%u requests)\n",
              requests);
  std::printf("# watermark pruning model: replication lag %llu calls, serialize %llu "
              "calls after last write\n",
              static_cast<unsigned long long>(lag), static_cast<unsigned long long>(delay));
  std::printf("%-18s %10s %10s %10s %10s %10s\n", "wire bytes", "mean", "p50", "p90", "p99",
              "max");
  PrintHistogram("before pruning", before_bytes);
  PrintHistogram("after pruning", after_bytes);
  std::printf("%-18s %10s %10s %10s %10s %10s\n", "deps", "mean", "p50", "p90", "p99", "max");
  PrintHistogram("before pruning", deps_before);
  PrintHistogram("after pruning", deps_after);
  const double shed = before_bytes.Mean() > 0.0
                          ? 100.0 * (before_bytes.Mean() - after_bytes.Mean()) / before_bytes.Mean()
                          : 0.0;
  std::printf("# mean wire bytes shed by watermark pruning: %.1f%%\n", shed);
  std::printf("# paper: mean ~200 B, p99 < 1 KB (before pruning)\n");
  if (after_bytes.Mean() >= before_bytes.Mean()) {
    std::fprintf(stderr, "FAIL: pruning did not reduce mean wire size\n");
    return 1;
  }
  return 0;
}
