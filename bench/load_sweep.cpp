// Sustained-load saturation sweep over the two case-study apps.
//
// An open-loop generator (fixed inter-arrival interval, issued regardless of
// completion — the Ditto/Palette methodology) drives the post-notification
// and media-service request flows at increasing arrival rates across their
// multi-region ReplicatedStore topologies. Each phase ramps the offered rate
// geometrically until saturation: the first load point where the achieved
// completion rate falls below the sustainment threshold (95% of offered) or
// the drain deadline expires with requests still in flight. The phase reports
// its peak sustained req/s and the wall-clock p50/p99/p999 end-to-end latency
// at that point.
//
// Phases: post-notification {baseline, Antipode cache on, Antipode cache off,
// Antipode stable-frontier} and media-service {baseline, Antipode, Antipode
// stable-frontier}. End-to-end latency is writer send → reader/render
// completion (including the barrier on Antipode phases), measured on the
// steady wall clock — replication delays are scaled model time, so wall
// latency is what saturation actually degrades. Each phase also accounts the
// enforcement-metadata bytes its backend ships per request (lineage wire size
// vs one HLC-cut varint), giving the strategy head-to-head both axes.
//
// Replication profiles are pinned (no S3-style slow second mode): the sweep
// measures throughput collapse, and a 1.6 s real-time straggler mode would
// alias with genuine saturation at every rate.
//
// Emits the machine-readable BENCH_load_sweep.json (schema: DESIGN.md §11)
// at --json-out (default: repo-root filename in the working directory).
//
// Flags: --scale, --duration=<real s per point>, --start-rate, --rate-factor,
//        --max-steps, --writers, --quick (tiny CI run), --json-out=<path>.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/antipode/antipode.h"
#include "src/common/histogram.h"
#include "src/common/serialization.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/obs/metrics.h"
#include "src/store/doc_store.h"
#include "src/store/kv_store.h"
#include "src/store/object_store.h"
#include "src/store/pubsub_store.h"
#include "src/store/queue_store.h"

namespace antipode {
namespace {

// A load point is sustained when the post-generation drain tail stays under
// max(half the window, this floor) — see RunLoadPoint.
constexpr double kMinDrainTailSlackS = 0.2;

std::atomic<uint64_t> g_bed_counter{0};

uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

struct SweepConfig {
  double duration_s = 1.5;    // generation window per load point
  double drain_cap_s = 8.0;   // extra real time allowed for in-flight drain
  double start_rate = 500.0;  // req/s
  double rate_factor = 2.0;
  int max_steps = 7;
  int writers = 8;
  int readers = 8;
  uint64_t seed = 7;
};

struct RatePoint {
  double offered_req_s = 0.0;
  double achieved_req_s = 0.0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double violation_rate = 0.0;
  // Mean enforcement-metadata bytes a request's barrier would ship with the
  // phase's backend (lineage wire size vs one HLC-cut varint); 0 on baseline
  // phases, which carry no lineage at all.
  double metadata_bytes_per_req = 0.0;
  bool saturated = false;
};

struct PhaseResult {
  std::string name;
  std::string app;
  bool antipode = false;
  bool cache = true;
  // True for the locality bed phases (three region-group-disjoint pairs
  // behind one deployment-wide barrier).
  bool locality = false;
  bool use_scope = true;
  std::string backend = "none";
  // barrier.scoped_skip accumulated over the phase: ⟨dependency, region⟩
  // pairs the barriers never armed because the dependency's locality scope
  // excluded the region.
  uint64_t scoped_skips = 0;
  std::vector<RatePoint> points;

  // Peak = the best non-saturated point; if every point saturated (the
  // generator outran the system even at the lowest rate), the highest
  // achieved throughput is still the honest answer.
  const RatePoint& Peak() const {
    const RatePoint* best = &points.front();
    for (const RatePoint& p : points) {
      const bool better = p.achieved_req_s > best->achieved_req_s;
      if ((!p.saturated && best->saturated) || (p.saturated == best->saturated && better)) {
        best = &p;
      }
    }
    return *best;
  }
};

// One request flow under test: Issue() runs the writer side (called from the
// generator's writer pool inside a fresh RequestContext), completions are
// counted by the bed's subscriber. Beds are rebuilt per load point so every
// point starts with cold stores and an empty timer backlog.
class Bed {
 public:
  virtual ~Bed() = default;
  // `send_ns` is the request's scheduled arrival time: latency is measured
  // from there, so writer-pool queueing (the first thing saturation inflates)
  // is part of every reported percentile.
  virtual void Issue(uint64_t request_index, uint64_t send_ns) = 0;
  virtual void Drain() = 0;

  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  uint64_t violations() const { return violations_.load(std::memory_order_relaxed); }
  uint64_t metadata_bytes() const { return metadata_bytes_.load(std::memory_order_relaxed); }
  const ConcurrentHistogram& latency() const { return latency_; }

 protected:
  // Called at the barrier site with the lineage the request actually carried:
  // accounts what the phase's enforcement strategy ships per request.
  void RecordMetadata(EnforcementBackendKind backend, const Lineage& lineage) {
    metadata_bytes_.fetch_add(EnforcementMetadataBytes(backend, lineage),
                              std::memory_order_relaxed);
  }

  void RecordCompletion(uint64_t send_ns, bool found) {
    latency_.Record(static_cast<double>(NowNanos() - send_ns) / 1e6);
    if (!found) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(done_mu_);
    done_cv_.notify_all();
  }

  // Waits until `issued` completions or `deadline`; true when fully drained.
  bool AwaitCompletions(uint64_t issued, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(done_mu_);
    return done_cv_.wait_until(lock, deadline, [&] {
      return completed_.load(std::memory_order_relaxed) >= issued;
    });
  }

  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> violations_{0};
  std::atomic<uint64_t> metadata_bytes_{0};
  ConcurrentHistogram latency_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  friend RatePoint RunLoadPoint(Bed&, double, const SweepConfig&);
};

std::string EncodePayload(const std::string& id, uint64_t send_ns) {
  Serializer s;
  s.WriteString(id);
  s.WriteUint64(send_ns);
  return s.Release();
}

bool DecodePayload(const std::string& payload, std::string* id, uint64_t* send_ns) {
  Deserializer d(payload);
  auto decoded_id = d.ReadString();
  auto decoded_ns = d.ReadUint64();
  if (!decoded_id.ok() || !decoded_ns.ok()) {
    return false;
  }
  *id = std::move(*decoded_id);
  *send_ns = *decoded_ns;
  return true;
}

// Post-notification topology: Redis-like post storage + SNS-like notifier,
// writer in EU, reader in US (paper §7.2 placement).
class PostBed : public Bed {
 public:
  PostBed(bool antipode, bool use_cache, EnforcementBackendKind backend, ThreadPool* readers)
      : antipode_(antipode), backend_(backend),
        tag_(std::to_string(g_bed_counter.fetch_add(1))) {
    const std::vector<Region> regions = {Region::kEu, Region::kUs};
    auto post_options = KvStore::DefaultOptions("sweep-post-" + tag_, regions);
    post_options.replication.slow_mode_probability = 0.0;
    posts_ = std::make_unique<KvStore>(std::move(post_options));
    auto notif_options = PubSubStore::DefaultOptions("sweep-notif-" + tag_, regions);
    notif_options.replication.slow_mode_probability = 0.0;
    notifs_ = std::make_unique<PubSubStore>(std::move(notif_options));
    post_shim_ = std::make_unique<KvShim>(posts_.get());
    notif_shim_ = std::make_unique<PubSubShim>(notifs_.get());
    registry_.Register(post_shim_.get());
    registry_.Register(notif_shim_.get());
    barrier_options_ =
        BarrierOptions{.registry = &registry_, .use_cache = use_cache, .backend = backend};

    auto on_message = [this](const ConsumedMessage& message) {
      std::string post_id;
      uint64_t send_ns = 0;
      if (!DecodePayload(message.payload, &post_id, &send_ns)) {
        return;
      }
      if (antipode_) {
        RecordMetadata(backend_, message.lineage);
        Barrier(message.lineage, Region::kUs, barrier_options_);
      }
      const bool found = antipode_ ? post_shim_->ReadCtx(Region::kUs, post_id).ok()
                                   : posts_->GetValue(Region::kUs, post_id).has_value();
      RecordCompletion(send_ns, found);
    };
    if (antipode_) {
      notif_shim_->Subscribe(Region::kUs, kTopic, readers, on_message);
    } else {
      notifs_->Subscribe(Region::kUs, kTopic, readers,
                         [on_message](const BrokerMessage& message) {
                           on_message(ConsumedMessage{message.payload, Lineage(),
                                                      message.delivered_at});
                         });
    }
  }

  void Issue(uint64_t request_index, uint64_t send_ns) override {
    const std::string post_id = "p" + tag_ + "-" + std::to_string(request_index);
    if (antipode_) {
      LineageApi::Root();
      post_shim_->WriteCtx(Region::kEu, post_id, kPostBody);
      notif_shim_->PublishCtx(Region::kEu, kTopic, EncodePayload(post_id, send_ns));
    } else {
      posts_->Set(Region::kEu, post_id, kPostBody);
      notifs_->Publish(Region::kEu, kTopic, EncodePayload(post_id, send_ns));
    }
  }

  void Drain() override {
    posts_->DrainReplication();
    notifs_->DrainReplication();
  }

 private:
  static constexpr char kTopic[] = "new-posts";
  static constexpr char kPostBody[] = "post-body";

  bool antipode_;
  EnforcementBackendKind backend_;
  std::string tag_;
  std::unique_ptr<KvStore> posts_;
  std::unique_ptr<PubSubStore> notifs_;
  std::unique_ptr<KvShim> post_shim_;
  std::unique_ptr<PubSubShim> notif_shim_;
  ShimRegistry registry_;
  BarrierOptions barrier_options_;
};

// Media-service topology: S3-like blob + Mongo-like review doc + RabbitMQ-
// like event queue; render worker in EU enforces both read dependencies
// through one lineage.
class MediaBed : public Bed {
 public:
  MediaBed(bool antipode, bool use_cache, EnforcementBackendKind backend, ThreadPool* renderers)
      : antipode_(antipode), backend_(backend),
        tag_(std::to_string(g_bed_counter.fetch_add(1))) {
    const std::vector<Region> regions = {Region::kUs, Region::kEu};
    auto media_options = ObjectStore::DefaultOptions("sweep-media-" + tag_, regions);
    media_options.replication.median_millis = 900.0;
    media_options.replication.slow_mode_probability = 0.0;
    media_ = std::make_unique<ObjectStore>(std::move(media_options));
    reviews_ = std::make_unique<DocStore>(
        DocStore::DefaultOptions("sweep-reviews-" + tag_, regions));
    events_ = std::make_unique<QueueStore>(
        QueueStore::DefaultOptions("sweep-events-" + tag_, regions));
    media_shim_ = std::make_unique<ObjectShim>(media_.get());
    review_shim_ = std::make_unique<DocShim>(reviews_.get());
    event_shim_ = std::make_unique<QueueShim>(events_.get());
    registry_.Register(media_shim_.get());
    registry_.Register(review_shim_.get());
    registry_.Register(event_shim_.get());
    barrier_options_ =
        BarrierOptions{.registry = &registry_, .use_cache = use_cache, .backend = backend};

    auto render = [this](const ConsumedMessage& message) {
      std::string review_id;
      uint64_t send_ns = 0;
      if (!DecodePayload(message.payload, &review_id, &send_ns)) {
        return;
      }
      if (antipode_) {
        RecordMetadata(backend_, message.lineage);
        Barrier(message.lineage, Region::kEu, barrier_options_);
      }
      bool found = false;
      std::optional<Document> review;
      if (antipode_) {
        auto result = review_shim_->FindByIdCtx(Region::kEu, "reviews", review_id);
        if (result.ok()) {
          review = std::move(*result);
        }
      } else {
        review = reviews_->FindById(Region::kEu, "reviews", review_id);
      }
      if (review.has_value()) {
        auto media_key = review->Get("media");
        if (media_key.has_value() && media_key->is_string()) {
          found = antipode_
                      ? media_shim_->GetObjectCtx(Region::kEu, "media",
                                                  media_key->as_string()).ok()
                      : media_->GetObject(Region::kEu, "media",
                                          media_key->as_string()).has_value();
        }
      }
      RecordCompletion(send_ns, found);
    };
    if (antipode_) {
      event_shim_->Subscribe(Region::kEu, kQueue, renderers, render);
    } else {
      events_->Subscribe(Region::kEu, kQueue, renderers,
                         [render](const BrokerMessage& message) {
                           render(ConsumedMessage{message.payload, Lineage(),
                                                  message.delivered_at});
                         });
    }
  }

  void Issue(uint64_t request_index, uint64_t send_ns) override {
    const std::string media_key = "poster-" + tag_ + "-" + std::to_string(request_index);
    const std::string review_id = "review-" + tag_ + "-" + std::to_string(request_index);
    Document review{{"media", Value(media_key)}, {"stars", Value(static_cast<int64_t>(5))}};
    if (antipode_) {
      LineageApi::Root();
      media_shim_->PutObjectCtx(Region::kUs, "media", media_key, kBlob);
      review_shim_->InsertDocCtx(Region::kUs, "reviews", review_id, std::move(review));
      event_shim_->PublishCtx(Region::kUs, kQueue, EncodePayload(review_id, send_ns));
    } else {
      media_->PutObject(Region::kUs, "media", media_key, kBlob);
      reviews_->InsertDoc(Region::kUs, "reviews", review_id, review);
      events_->Publish(Region::kUs, kQueue, EncodePayload(review_id, send_ns));
    }
  }

  void Drain() override {
    media_->DrainReplication();
    reviews_->DrainReplication();
    events_->DrainReplication();
  }

 private:
  static constexpr char kQueue[] = "review-events";
  static constexpr char kBlob[] = "media-blob";

  bool antipode_;
  EnforcementBackendKind backend_;
  std::string tag_;
  std::unique_ptr<ObjectStore> media_;
  std::unique_ptr<DocStore> reviews_;
  std::unique_ptr<QueueStore> events_;
  std::unique_ptr<ObjectShim> media_shim_;
  std::unique_ptr<DocShim> review_shim_;
  std::unique_ptr<QueueShim> event_shim_;
  ShimRegistry registry_;
  BarrierOptions barrier_options_;
};

// Locality bed: three independent post-notification locality pairs, one per
// region group — ⟨US,EU⟩, ⟨EU,SG⟩, ⟨SG,Local⟩ — in one process. Every pair's
// stores replicate only within the pair, but the reader's barrier is the
// conservative deployment-wide BarrierGlobal over all four regions: exactly
// the shape where locality scoping pays. Scoped barriers (use_scope=true)
// skip the out-of-pair ⟨store, region⟩ pairs outright (barrier.scoped_skip);
// unscoped barriers probe the cache and arm a vacuous wait for each of them.
// The three pairs also live in three distinct region groups, so the phase
// drives the group-partitioned visibility registry and per-group HLC clocks
// concurrently instead of through one shared shard set.
class LocalityBed : public Bed {
 public:
  LocalityBed(bool use_cache, EnforcementBackendKind backend, bool use_scope,
              ThreadPool* readers)
      : backend_(backend), tag_(std::to_string(g_bed_counter.fetch_add(1))) {
    static constexpr Region kPairs[kNumPairs][2] = {
        {Region::kEu, Region::kUs},     // group 0 (home US)
        {Region::kSg, Region::kEu},     // group 1 (home EU)
        {Region::kLocal, Region::kSg},  // group 2 (home SG)
    };
    for (int g = 0; g < kNumPairs; ++g) {
      Pair& pair = pairs_[g];
      pair.writer = kPairs[g][0];
      pair.reader = kPairs[g][1];
      const std::vector<Region> regions = {pair.writer, pair.reader};
      const std::string name = "sweep-local" + std::to_string(g) + "-" + tag_;
      auto post_options = KvStore::DefaultOptions(name + "-post", regions);
      post_options.replication.slow_mode_probability = 0.0;
      pair.posts = std::make_unique<KvStore>(std::move(post_options));
      auto notif_options = PubSubStore::DefaultOptions(name + "-notif", regions);
      notif_options.replication.slow_mode_probability = 0.0;
      pair.notifs = std::make_unique<PubSubStore>(std::move(notif_options));
      pair.post_shim = std::make_unique<KvShim>(pair.posts.get());
      pair.notif_shim = std::make_unique<PubSubShim>(pair.notifs.get());
      pair.registry.Register(pair.post_shim.get());
      pair.registry.Register(pair.notif_shim.get());
      pair.options = BarrierOptions{.registry = &pair.registry,
                                    .use_cache = use_cache,
                                    .use_scope = use_scope,
                                    .backend = backend};

      auto on_message = [this, &pair](const ConsumedMessage& message) {
        std::string post_id;
        uint64_t send_ns = 0;
        if (!DecodePayload(message.payload, &post_id, &send_ns)) {
          return;
        }
        RecordMetadata(backend_, message.lineage);
        BarrierGlobal(message.lineage, kBarrierRegions, pair.options);
        const bool found = pair.post_shim->ReadCtx(pair.reader, post_id).ok();
        RecordCompletion(send_ns, found);
      };
      pair.notif_shim->Subscribe(pair.reader, kTopic, readers, on_message);
    }
  }

  void Issue(uint64_t request_index, uint64_t send_ns) override {
    Pair& pair = pairs_[request_index % kNumPairs];
    const std::string post_id = "p" + tag_ + "-" + std::to_string(request_index);
    LineageApi::Root();
    pair.post_shim->WriteCtx(pair.writer, post_id, kPostBody);
    pair.notif_shim->PublishCtx(pair.writer, kTopic, EncodePayload(post_id, send_ns));
  }

  void Drain() override {
    for (Pair& pair : pairs_) {
      pair.posts->DrainReplication();
      pair.notifs->DrainReplication();
    }
  }

 private:
  static constexpr int kNumPairs = 3;
  static constexpr char kTopic[] = "new-posts";
  static constexpr char kPostBody[] = "post-body";
  // The deployment-wide enforcement set a locality-oblivious app would use.
  static inline const std::vector<Region> kBarrierRegions = {Region::kUs, Region::kEu,
                                                             Region::kSg, Region::kLocal};

  struct Pair {
    Region writer = Region::kEu;
    Region reader = Region::kUs;
    std::unique_ptr<KvStore> posts;
    std::unique_ptr<PubSubStore> notifs;
    std::unique_ptr<KvShim> post_shim;
    std::unique_ptr<PubSubShim> notif_shim;
    ShimRegistry registry;
    BarrierOptions options;
  };

  EnforcementBackendKind backend_;
  std::string tag_;
  Pair pairs_[kNumPairs];
};

// Runs one open-loop load point: issues at `rate` for the generation window,
// then waits for in-flight requests up to the drain cap. Writer jobs run on a
// dedicated pool; the generator releases arrivals by wall clock and never
// waits for completions (open loop) — if the system falls behind, work backs
// up in the pools and the achieved rate drops below offered.
RatePoint RunLoadPoint(Bed& bed, double rate, const SweepConfig& config) {
  ThreadPool writers(static_cast<size_t>(config.writers), "sweep-writers");

  const auto start = std::chrono::steady_clock::now();
  const auto gen_end = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(config.duration_s));
  const auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / rate));

  uint64_t issued = 0;
  auto next_arrival = start;
  while (next_arrival < gen_end) {
    std::this_thread::sleep_until(next_arrival);
    // Release every arrival that is due — at high rates the sleep overshoots
    // multiple intervals and the generator must not silently shed load.
    const auto now = std::chrono::steady_clock::now();
    while (next_arrival <= now && next_arrival < gen_end) {
      const uint64_t index = issued++;
      const uint64_t send_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(next_arrival.time_since_epoch())
              .count());
      writers.Submit([&bed, index, send_ns] {
        RequestContext context;
        ScopedContext scoped(std::move(context));
        bed.Issue(index, send_ns);
      });
      next_arrival += interval;
    }
  }

  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config.drain_cap_s));
  const bool drained = bed.AwaitCompletions(issued, drain_deadline);

  RatePoint point;
  point.offered_req_s = rate;
  point.issued = issued;
  point.completed = bed.completed();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(std::chrono::steady_clock::now() -
                                                                start)
          .count();
  // Saturation = the backlog signal, not the latency floor: when the system
  // keeps up, the drain tail after generation stops is one request's
  // end-to-end latency (constant in rate); when it falls behind, the tail is
  // backlog/capacity and grows with rate. A fixed floor keeps ordinary
  // replication-latency tails from flagging short windows.
  const double drain_tail_s = elapsed_s - config.duration_s;
  point.saturated =
      !drained || drain_tail_s > std::max(0.5 * config.duration_s, kMinDrainTailSlackS);
  // Sustained points completed everything issued over the generation window,
  // so their throughput is completions over that window; saturated points
  // report completions over total elapsed — the rate the system actually
  // sustained while overloaded.
  point.achieved_req_s = point.saturated
                             ? (elapsed_s > 0 ? static_cast<double>(point.completed) / elapsed_s
                                              : 0.0)
                             : static_cast<double>(point.completed) / config.duration_s;
  const Histogram latency = bed.latency().Snapshot();
  point.p50_ms = latency.Percentile(0.50);
  point.p99_ms = latency.Percentile(0.99);
  point.p999_ms = latency.Percentile(0.999);
  point.violation_rate =
      point.completed == 0
          ? 0.0
          : static_cast<double>(bed.violations()) / static_cast<double>(point.completed);
  point.metadata_bytes_per_req =
      point.completed == 0
          ? 0.0
          : static_cast<double>(bed.metadata_bytes()) / static_cast<double>(point.completed);

  // The point is scored; now settle completely before teardown. Every issued
  // request finishes eventually (replication delays are finite and the pools
  // stay live), and teardown while handlers are still queued on the reader
  // pool would race bed destruction — so this wait is unconditional, with the
  // suite-level ctest timeout as the hang backstop.
  writers.Shutdown();
  if (!drained) {
    bed.AwaitCompletions(issued, std::chrono::steady_clock::now() + std::chrono::hours(1));
  }
  bed.Drain();
  return point;
}

struct PhaseSpec {
  const char* name;
  const char* app;  // "post_notification" | "media_service" | "post_local3"
  bool antipode;
  bool use_cache;
  EnforcementBackendKind backend = EnforcementBackendKind::kLineage;
  bool use_scope = true;  // locality bed only; the classic beds never skip
};

PhaseResult RunPhase(const PhaseSpec& spec, const SweepConfig& config) {
  PhaseResult result;
  result.name = spec.name;
  result.app = spec.app;
  result.antipode = spec.antipode;
  result.cache = spec.use_cache;
  result.locality = std::string_view(spec.app) == "post_local3";
  result.use_scope = spec.use_scope;
  result.backend = spec.antipode ? std::string(EnforcementBackendKindName(spec.backend)) : "none";

  std::printf("\n== phase %s ==\n", spec.name);
  std::printf("%12s %12s %8s %8s %10s %10s %10s %6s\n", "offered/s", "achieved/s", "issued",
              "done", "p50 ms", "p99 ms", "p999 ms", "sat");

  double rate = config.start_rate;
  for (int step = 0; step < config.max_steps; ++step) {
    // Fresh reader pool and bed per point: no backlog crosses load points.
    ThreadPool readers(static_cast<size_t>(config.readers), "sweep-readers");
    std::unique_ptr<Bed> bed;
    if (std::string_view(spec.app) == "media_service") {
      bed = std::make_unique<MediaBed>(spec.antipode, spec.use_cache, spec.backend, &readers);
    } else if (std::string_view(spec.app) == "post_local3") {
      bed = std::make_unique<LocalityBed>(spec.use_cache, spec.backend, spec.use_scope, &readers);
    } else {
      bed = std::make_unique<PostBed>(spec.antipode, spec.use_cache, spec.backend, &readers);
    }
    RatePoint point = RunLoadPoint(*bed, rate, config);
    bed.reset();
    readers.Shutdown();

    std::printf("%12.0f %12.0f %8llu %8llu %10.2f %10.2f %10.2f %6s\n", point.offered_req_s,
                point.achieved_req_s, static_cast<unsigned long long>(point.issued),
                static_cast<unsigned long long>(point.completed), point.p50_ms, point.p99_ms,
                point.p999_ms, point.saturated ? "yes" : "no");
    const bool stop = point.saturated;
    result.points.push_back(std::move(point));
    if (stop) {
      break;
    }
    rate *= config.rate_factor;
  }

  // Phase total of barrier.scoped_skip: Main resets the registry before each
  // phase, so the counter's absolute value is this phase's contribution.
  result.scoped_skips = MetricsRegistry::Default().GetCounter("barrier.scoped_skip")->value();

  const RatePoint& peak = result.Peak();
  std::printf("# peak sustained: %.0f req/s (p50 %.2f ms, p99 %.2f ms, p999 %.2f ms, "
              "violation rate %.3f, scoped skips %llu)\n",
              peak.achieved_req_s, peak.p50_ms, peak.p99_ms, peak.p999_ms, peak.violation_rate,
              static_cast<unsigned long long>(result.scoped_skips));
  return result;
}

void EmitJson(const std::vector<PhaseResult>& phases, const SweepConfig& config, bool quick,
              const std::string& path) {
  JsonReport json;
  json.BeginObject();
  json.Field("bench", "load_sweep");
  json.Field("quick", quick);
  json.Field("duration_s", config.duration_s);
  json.Field("min_drain_tail_slack_s", kMinDrainTailSlackS);
  json.BeginArray("phases");
  for (const PhaseResult& phase : phases) {
    const RatePoint& peak = phase.Peak();
    json.BeginObject();
    json.Field("name", phase.name);
    json.Field("app", phase.app);
    json.Field("antipode", phase.antipode);
    json.Field("cache", phase.cache);
    json.Field("locality", phase.locality);
    json.Field("use_scope", phase.use_scope);
    json.Field("scoped_skips", phase.scoped_skips);
    json.Field("backend", phase.backend);
    json.Field("peak_req_s", peak.achieved_req_s);
    json.Field("p50_ms", peak.p50_ms);
    json.Field("p99_ms", peak.p99_ms);
    json.Field("p999_ms", peak.p999_ms);
    json.Field("violation_rate", peak.violation_rate);
    json.Field("metadata_bytes_per_req", peak.metadata_bytes_per_req);
    json.BeginArray("points");
    for (const RatePoint& point : phase.points) {
      json.BeginObject();
      json.Field("offered_req_s", point.offered_req_s);
      json.Field("achieved_req_s", point.achieved_req_s);
      json.Field("issued", point.issued);
      json.Field("completed", point.completed);
      json.Field("p50_ms", point.p50_ms);
      json.Field("p99_ms", point.p99_ms);
      json.Field("p999_ms", point.p999_ms);
      json.Field("violation_rate", point.violation_rate);
      json.Field("metadata_bytes_per_req", point.metadata_bytes_per_req);
      json.Field("saturated", point.saturated);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (json.WriteFile(path)) {
    std::printf("\n# wrote %s\n", path.c_str());
  }
}

int Main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    }
  }
  args.SetupTimeScale();

  SweepConfig config;
  if (quick) {
    config.duration_s = 0.25;
    config.drain_cap_s = 3.0;
    config.start_rate = 200.0;
    config.rate_factor = 4.0;
    config.max_steps = 2;
    config.writers = 4;
    config.readers = 4;
  }
  config.duration_s = args.GetDouble("duration", config.duration_s);
  config.start_rate = args.GetDouble("start-rate", config.start_rate);
  config.rate_factor = args.GetDouble("rate-factor", config.rate_factor);
  config.max_steps = args.GetInt("max-steps", config.max_steps);
  config.writers = args.GetInt("writers", config.writers);
  config.readers = config.writers;
  const std::string json_out = args.GetString("json-out", "BENCH_load_sweep.json");

  std::printf("# open-loop sweep: %.2fs per point, start %.0f req/s x%.1f, max %d steps, "
              "%d writers\n",
              config.duration_s, config.start_rate, config.rate_factor, config.max_steps,
              config.writers);

  // The *_frontier phases rerun the Antipode flows with the stable-frontier
  // backend: same apps, same cache policy — the head-to-head strategy
  // comparison (wait time + metadata bytes) lands in the same report.
  const PhaseSpec specs[] = {
      {"post_baseline", "post_notification", false, true},
      {"post_antipode_cache_on", "post_notification", true, true},
      {"post_antipode_cache_off", "post_notification", true, false},
      {"post_antipode_frontier", "post_notification", true, true,
       EnforcementBackendKind::kStableFrontier},
      {"media_baseline", "media_service", false, true},
      {"media_antipode", "media_service", true, true},
      {"media_antipode_frontier", "media_service", true, true,
       EnforcementBackendKind::kStableFrontier},
      // Locality pair: three region-group-disjoint post-notification pairs
      // behind one deployment-wide barrier; scoped skips the out-of-pair
      // ⟨store, region⟩ waits, unscoped arms them all — same workload.
      {"post_local3_scoped", "post_local3", true, true, EnforcementBackendKind::kLineage, true},
      {"post_local3_unscoped", "post_local3", true, true, EnforcementBackendKind::kLineage,
       false},
  };
  std::vector<PhaseResult> phases;
  for (const PhaseSpec& spec : specs) {
    MetricsRegistry::Default().SnapshotAndReset();  // per-phase isolation
    phases.push_back(RunPhase(spec, config));
  }

  std::printf("\n%-26s %-16s %14s %10s %10s %10s %10s %10s\n", "phase", "backend", "peak req/s",
              "p50 ms", "p99 ms", "p999 ms", "viol", "md B/req");
  for (const PhaseResult& phase : phases) {
    const RatePoint& peak = phase.Peak();
    std::printf("%-26s %-16s %14.0f %10.2f %10.2f %10.2f %10.3f %10.1f\n", phase.name.c_str(),
                phase.backend.c_str(), peak.achieved_req_s, peak.p50_ms, peak.p99_ms,
                peak.p999_ms, peak.violation_rate, peak.metadata_bytes_per_req);
  }

  EmitJson(phases, config, quick, json_out);
  return 0;
}

}  // namespace
}  // namespace antipode

int main(int argc, char** argv) { return antipode::Main(argc, argv); }
