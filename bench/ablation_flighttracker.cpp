// Ablation C (paper §8): Antipode vs a FlightTracker-style centralized
// ticket service for the same end-to-end guarantee on the post-notification
// flow. Both prevent the violation; the difference is *where the metadata
// lives*:
//   * Antipode piggybacks lineages on messages — zero extra round trips;
//   * FlightTracker's writers and readers each pay a round trip to the
//     ticket metadata service (centralized in one region), so user-facing
//     operations from remote regions inflate with WAN latency.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/antipode/antipode.h"
#include "src/baseline/flight_tracker.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"
#include "src/store/pubsub_store.h"

using namespace antipode;

namespace {

struct Outcome {
  int violations = 0;
  Histogram writer_latency_ms;
  Histogram reader_wait_ms;
  uint64_t metadata_rpcs = 0;
};

enum class Mode { kAntipode, kFlightTracker };

Outcome Run(Mode mode, int requests) {
  static int run = 0;
  const std::string suffix = std::to_string(run++);
  const std::vector<Region> regions = {Region::kUs, Region::kEu};

  auto post_options = KvStore::DefaultOptions("ft-posts-" + suffix, regions);
  post_options.replication.median_millis = 400.0;
  KvStore posts(std::move(post_options));
  PubSubStore notif(PubSubStore::DefaultOptions("ft-notif-" + suffix, regions));
  KvShim post_shim(&posts);
  PubSubShim notif_shim(&notif);
  ShimRegistry registry;
  registry.Register(&post_shim);
  registry.Register(&notif_shim);

  // FlightTracker's metadata service lives in US; the *writer* is in EU, so
  // its ticket updates cross the WAN.
  TicketService tickets(Region::kUs);
  FlightTrackerClient ft(&tickets, &registry);

  ThreadPool writers(8, "writers");
  ThreadPool readers(8, "readers");
  ConcurrentHistogram writer_latency;
  ConcurrentHistogram reader_wait;
  std::atomic<int> violations{0};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;

  notif_shim.Subscribe(Region::kUs, "posts", &readers, [&](const ConsumedMessage& message) {
    const TimePoint begin = SystemClock::Instance().Now();
    if (mode == Mode::kAntipode) {
      Barrier(message.lineage, Region::kUs, BarrierOptions{.registry = &registry});
    } else {
      // The reader consults the centralized ticket service (the payload
      // names the writer session), then waits for the ticketed writes.
      ft.BeforeRead(Region::kUs, "user-" + message.payload);
    }
    reader_wait.Record(TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
        SystemClock::Instance().Now() - begin)));
    const bool found = post_shim.Read(Region::kUs, "post-" + message.payload).ok();
    if (!found) {
      violations.fetch_add(1);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
    }
    cv.notify_all();
  });

  for (int i = 0; i < requests; ++i) {
    writers.Submit([&, i] {
      const TimePoint begin = SystemClock::Instance().Now();
      RequestContext context;
      ScopedContext scoped(std::move(context));
      LineageApi::Root();
      const std::string id = std::to_string(i);
      post_shim.WriteCtx(Region::kEu, "post-" + id, "content");
      if (mode == Mode::kFlightTracker) {
        ft.OnWrite(Region::kEu, "user-" + id, WriteId{posts.name(), "post-" + id, 1});
      }
      notif_shim.PublishCtx(Region::kEu, "posts", id);
      writer_latency.Record(TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
          SystemClock::Instance().Now() - begin)));
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done >= requests; });
  }
  writers.Shutdown();
  readers.Shutdown();
  posts.DrainReplication();
  notif.DrainReplication();

  Outcome outcome;
  outcome.violations = violations.load();
  outcome.writer_latency_ms = writer_latency.Snapshot();
  outcome.reader_wait_ms = reader_wait.Snapshot();
  outcome.metadata_rpcs = tickets.rpc_count();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 150);

  std::printf("# Ablation C: Antipode vs FlightTracker-style centralized tickets "
              "(EU writer, US reader, %d requests)\n",
              requests);
  std::printf("%-15s %12s %16s %16s %15s\n", "mode", "violations", "writer_lat_p50",
              "reader_wait_p50", "metadata_rpcs");
  for (Mode mode : {Mode::kAntipode, Mode::kFlightTracker}) {
    Outcome outcome = Run(mode, requests);
    std::printf("%-15s %12d %16.1f %16.1f %15llu\n",
                mode == Mode::kAntipode ? "antipode" : "flight-tracker", outcome.violations,
                outcome.writer_latency_ms.Percentile(0.5), outcome.reader_wait_ms.Percentile(0.5),
                static_cast<unsigned long long>(outcome.metadata_rpcs));
  }
  std::printf("# expected: both prevent violations; FlightTracker adds a WAN round trip to\n");
  std::printf("#           every write and metadata RPCs proportional to operations\n");
  return 0;
}
