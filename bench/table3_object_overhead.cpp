// Reproduces Table 3: average stored-object size increase when Antipode's
// lineage metadata is added, per datastore. Measured by running the same
// Post-Notification workload with and without the shims and comparing the
// per-store mean object size (the SQL store additionally pays the secondary
// index on the lineage column — the paper's ~14 KB MySQL outlier).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/post_notification/post_notification.h"

using namespace antipode;

namespace {

struct OverheadRow {
  std::string store;
  double baseline_bytes = 0;
  double antipode_bytes = 0;
};

OverheadRow MeasurePostStorage(PostStorageKind kind, int requests) {
  OverheadRow row;
  row.store = std::string(PostStorageName(kind));
  for (int antipode = 0; antipode <= 1; ++antipode) {
    PostNotificationConfig config;
    config.post_storage = kind;
    config.notifier = NotifierKind::kSns;
    config.antipode = antipode == 1;
    config.num_requests = requests;
    PostNotificationResult result = RunPostNotification(config);
    (antipode == 1 ? row.antipode_bytes : row.baseline_bytes) = result.mean_post_object_bytes;
  }
  return row;
}

OverheadRow MeasureNotifier(NotifierKind kind, int requests) {
  OverheadRow row;
  row.store = std::string(NotifierName(kind));
  for (int antipode = 0; antipode <= 1; ++antipode) {
    PostNotificationConfig config;
    config.post_storage = PostStorageKind::kRedis;
    config.notifier = kind;
    config.antipode = antipode == 1;
    config.num_requests = requests;
    PostNotificationResult result = RunPostNotification(config);
    (antipode == 1 ? row.antipode_bytes : row.baseline_bytes) =
        result.mean_notification_object_bytes;
  }
  return row;
}

void PrintRow(const OverheadRow& row) {
  const double delta = row.antipode_bytes - row.baseline_bytes;
  const double pct = row.baseline_bytes > 0 ? 100.0 * delta / row.baseline_bytes : 0.0;
  std::printf("%-10s %14.0f %14.0f %+12.0f %9.2f%%\n", row.store.c_str(), row.baseline_bytes,
              row.antipode_bytes, delta, pct);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 100);

  std::printf("# Table 3: average object-size increase with Antipode metadata\n");
  std::printf("%-10s %14s %14s %12s %10s\n", "store", "baseline_B", "antipode_B", "delta_B",
              "delta_%");

  std::printf("# post-storage role (8 KiB posts):\n");
  for (auto kind : {PostStorageKind::kDynamo, PostStorageKind::kMysql, PostStorageKind::kRedis,
                    PostStorageKind::kS3}) {
    PrintRow(MeasurePostStorage(kind, requests));
    std::fflush(stdout);
  }

  std::printf("# notifier role (~120 B notifications):\n");
  for (auto kind : {NotifierKind::kSns, NotifierKind::kAmq, NotifierKind::kDynamo}) {
    PrintRow(MeasureNotifier(kind, requests));
    std::fflush(stdout);
  }
  std::printf("# paper: +42 B Dynamo, +14 kB MySQL (index), +105 B Redis, +320 B S3,\n");
  std::printf("#        +32 B SNS, +87 B RabbitMQ — small everywhere except the SQL index\n");
  return 0;
}
