// Visibility-cache microbench (DESIGN.md §8): population and lookup costs of
// the two-level ⟨per-key table, apply low-watermark⟩ structure that fronts
// every barrier wait.
//
// Phases:
//   populate   NoteApply throughput, single writer. In-order seqs advance the
//              watermark with no pending-set churn; out-of-order seqs (blocks
//              applied in reverse) park in the pending set until the gap
//              fills, which is the worst case for the tracker lock.
//   lookup     IsVisible throughput across --threads concurrent readers, for
//              the three probe outcomes a barrier can see:
//                per-key hit    probed region observed the version directly
//                watermark hit  per-key miss, covered by the old-write rule
//                               (entry state crafted so the probe falls
//                               through to the watermark load)
//                miss           unknown key — the caller falls back to the
//                               real wait
//
// Flags: --applies=<n> (default 200000), --keys=<n> (default 1024),
//        --threads=<n> (default 4), --lookups=<n per thread> (default 200000).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/antipode/visibility_cache.h"

using namespace antipode;

namespace {

const std::vector<Region> kAllRegions = {Region::kUs, Region::kEu, Region::kSg};

double MopsPerSec(uint64_t ops, std::chrono::steady_clock::duration elapsed) {
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  return seconds > 0.0 ? static_cast<double>(ops) / seconds / 1e6 : 0.0;
}

std::vector<std::string> MakeKeys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) keys.push_back("key/" + std::to_string(i));
  return keys;
}

double RunPopulate(int applies, const std::vector<std::string>& keys, bool in_order) {
  StoreVisibility store("bench", kAllRegions);
  constexpr int kBlock = 64;  // out-of-order: each block applied in reverse
  const auto start = std::chrono::steady_clock::now();
  for (int block = 0; block * kBlock < applies; ++block) {
    for (int i = 0; i < kBlock; ++i) {
      const int offset = in_order ? i : kBlock - 1 - i;
      const uint64_t seq = static_cast<uint64_t>(block * kBlock + offset) + 1;
      if (seq > static_cast<uint64_t>(applies)) continue;
      store.NoteApply(Region::kUs, keys[seq % keys.size()], seq, seq);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (store.watermark(Region::kUs) != static_cast<uint64_t>(applies)) {
    std::fprintf(stderr, "FAIL: watermark %llu != applies %d\n",
                 static_cast<unsigned long long>(store.watermark(Region::kUs)), applies);
    std::exit(1);
  }
  return MopsPerSec(static_cast<uint64_t>(applies), elapsed);
}

// Runs `lookups` probes per thread through `probe` and returns aggregate Mops/s.
// Every probe's outcome is checked against `expect` so a silent behavioural
// change cannot masquerade as a speedup.
template <typename Probe>
double RunLookups(int threads, int lookups, bool expect, const Probe& probe) {
  std::vector<std::thread> workers;
  std::atomic<uint64_t> mismatches{0};
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t bad = 0;
      for (int i = 0; i < lookups; ++i) {
        if (probe(t, i) != expect) ++bad;
      }
      if (bad != 0) mismatches.fetch_add(bad, std::memory_order_relaxed);
    });
  }
  for (auto& worker : workers) worker.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (mismatches.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu probes returned the wrong outcome\n",
                 static_cast<unsigned long long>(mismatches.load()));
    std::exit(1);
  }
  return MopsPerSec(static_cast<uint64_t>(threads) * static_cast<uint64_t>(lookups), elapsed);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  const int applies = args.GetInt("applies", 200000);
  const int key_count = args.GetInt("keys", 1024);
  const int threads = args.GetInt("threads", 4);
  const int lookups = args.GetInt("lookups", 200000);
  const std::vector<std::string> keys = MakeKeys(key_count);

  std::printf("# visibility cache: %d applies, %d keys, %d lookup threads x %d lookups\n\n",
              applies, key_count, threads, lookups);
  std::printf("%-28s %12s\n", "phase", "Mops/s");
  std::printf("%-28s %12.2f\n", "NoteApply in-order", RunPopulate(applies, keys, true));
  std::printf("%-28s %12.2f\n", "NoteApply out-of-order", RunPopulate(applies, keys, false));

  // Lookup bed. Per-key hits: kUs observed every version directly. Watermark
  // hits: kEu's watermark is advanced by filler-key applies, so probes of the
  // primary keys at kEu miss the per-key entry and fall through to the
  // old-write rule. Misses: unknown keys.
  StoreVisibility store("bench", kAllRegions);
  for (int i = 1; i <= key_count; ++i) {
    const uint64_t seq = static_cast<uint64_t>(i);
    store.NoteApply(Region::kUs, keys[seq % keys.size()], 10, seq);
    store.NoteApply(Region::kEu, "filler/" + std::to_string(i), 1, seq);
  }
  const std::vector<std::string> unknown = [&] {
    std::vector<std::string> result;
    for (int i = 0; i < key_count; ++i) result.push_back("ghost/" + std::to_string(i));
    return result;
  }();

  std::printf("%-28s %12.2f\n", "IsVisible per-key hit",
              RunLookups(threads, lookups, true, [&](int t, int i) {
                return store.IsVisible(Region::kUs, keys[(t + i) % keys.size()], 10);
              }));
  std::printf("%-28s %12.2f\n", "IsVisible watermark hit",
              RunLookups(threads, lookups, true, [&](int t, int i) {
                return store.IsVisible(Region::kEu, keys[(t + i) % keys.size()], 10);
              }));
  std::printf("%-28s %12.2f\n", "IsVisible miss",
              RunLookups(threads, lookups, false, [&](int t, int i) {
                return store.IsVisible(Region::kSg, unknown[(t + i) % unknown.size()], 1);
              }));
  return 0;
}
