// Ablation B (paper §5.1): dependency-set growth under Antipode's lineage
// truncation (drop at `stop`, explicit `transfer` only where semantics
// demand it) vs potential causality (full transitive history, never
// truncated) vs vector clocks (one entry per service ever touched).
//
// Workload: a chain of requests; request i writes a handful of objects and
// reads something written by request i-1 (the linchpin-object pattern §5.1).
// Under potential causality the metadata grows linearly with chain depth;
// Antipode's lineages stay request-sized.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/antipode/lineage.h"
#include "src/baseline/potential_tracker.h"
#include "src/baseline/vector_clock.h"

using namespace antipode;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  const int chain_length = args.GetInt("chain", 256);
  const int writes_per_request = args.GetInt("writes", 6);

  std::printf("# Ablation B: metadata size vs chain depth (%d writes/request)\n",
              writes_per_request);
  std::printf("%-8s %16s %16s %16s %14s %14s\n", "depth", "lineage_B", "potential_B",
              "vclock_B", "lineage_deps", "potential_deps");

  PotentialCausalityTracker potential_prev;
  Lineage lineage_prev;
  VectorClock clock_prev;
  uint64_t version = 1;

  for (int depth = 1; depth <= chain_length; ++depth) {
    // --- Antipode: a fresh lineage per request; reading request i-1's data
    // transfers that request's (already truncated) lineage only.
    Lineage lineage(static_cast<uint64_t>(depth));
    lineage.Transfer(lineage_prev);

    // --- potential causality: inherits the full transitive history.
    PotentialCausalityTracker potential;
    potential.OnReadFrom(potential_prev);

    // --- vector clock: merge + tick this request's service entries.
    VectorClock clock = clock_prev;

    std::vector<WriteId> own_writes;
    for (int w = 0; w < writes_per_request; ++w) {
      WriteId id{"svc" + std::to_string((depth * 7 + w) % 40), "key" + std::to_string(version),
                 version};
      version++;
      lineage.Append(id);
      potential.OnWrite(id);
      clock.Increment(static_cast<uint32_t>((depth * 7 + w) % 40));
      own_writes.push_back(std::move(id));
    }

    if ((depth & (depth - 1)) == 0 || depth == chain_length) {  // powers of two
      std::printf("%-8d %16zu %16zu %16zu %14zu %14zu\n", depth, lineage.WireSize(),
                  potential.WireSize(), clock.WireSize(), lineage.Size(),
                  potential.NumDeps());
    }

    // Request ends: Antipode truncates (stop); the next request only sees
    // this request's own writes via the data it reads. Potential causality
    // never truncates.
    Lineage truncated(static_cast<uint64_t>(depth));
    for (const auto& id : own_writes) {
      truncated.Append(id);
    }
    lineage_prev = truncated;
    potential_prev = potential;
    clock_prev = clock;
  }

  std::printf("# expected: lineage bytes flat; potential-causality bytes grow linearly;\n");
  std::printf("#           vector clock grows with the number of distinct services\n");
  return 0;
}
