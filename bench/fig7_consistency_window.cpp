// Reproduces Fig. 7: the consistency window of Post-Notification (post
// written at the Writer -> Reader reads it) for each post-storage, in the
// original application and with Antipode (notifier = SNS).
//
// Original: reads proceed immediately when the notification arrives (many of
// them inconsistent), so the window is just the notification delay.
// Antipode: barrier blocks until the post is visible, so the window tracks
// each datastore's replication delay — ~1 s for MySQL, tens of seconds for
// S3 (the paper measured ≈18 s average for S3).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/post_notification/post_notification.h"
#include "src/obs/metrics.h"

using namespace antipode;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 200);
  const bool dump_metrics = args.GetInt("metrics", 0) != 0;
  MetricsRegistry::Default().SnapshotAndReset();  // drop warm-up residue

  const std::vector<PostStorageKind> storages = {
      PostStorageKind::kMysql, PostStorageKind::kDynamo, PostStorageKind::kRedis,
      PostStorageKind::kS3};

  std::printf("# Fig 7: consistency window (model ms), notifier=SNS, %d requests/cell\n",
              requests);
  std::printf("%-10s %12s %12s %12s | %12s %12s %12s\n", "storage", "orig_p50", "orig_mean",
              "orig_p99", "anti_p50", "anti_mean", "anti_p99");

  for (auto storage : storages) {
    Histogram windows[2];
    for (int antipode = 0; antipode <= 1; ++antipode) {
      PostNotificationConfig config;
      config.post_storage = storage;
      config.notifier = NotifierKind::kSns;
      config.antipode = antipode == 1;
      config.num_requests = requests;
      config.writer_concurrency = 64;
      PostNotificationResult result = RunPostNotification(config);
      windows[antipode] = result.consistency_window_model_ms;
    }
    std::printf("%-10s %12.0f %12.0f %12.0f | %12.0f %12.0f %12.0f\n",
                std::string(PostStorageName(storage)).c_str(), windows[0].Percentile(0.5),
                windows[0].Mean(), windows[0].Percentile(0.99), windows[1].Percentile(0.5),
                windows[1].Mean(), windows[1].Percentile(0.99));
    // Per-storage metrics window (barrier stall = what Antipode paid to close
    // the inconsistency), drained so the next storage starts from zero.
    const MetricsSnapshot window = MetricsRegistry::Default().SnapshotAndReset();
    const Histogram stall = window.HistogramTotal("barrier.stall_model_ms");
    std::printf("# metrics %s: barrier.calls=%llu barrier_stall_model_ms{p50=%.0f p99=%.0f} "
                "store.writes=%llu\n",
                std::string(PostStorageName(storage)).c_str(),
                static_cast<unsigned long long>(window.CounterTotal("barrier.calls")),
                stall.Percentile(0.5), stall.Percentile(0.99),
                static_cast<unsigned long long>(window.CounterTotal("store.writes")));
    if (dump_metrics) {
      std::printf("%s\n", window.ToString().c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
