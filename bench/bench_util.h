// Shared helpers for the experiment-reproduction binaries: flag parsing,
// table formatting, and JSON report emission. Every binary accepts:
//   --scale=<f>      time scale (default 0.02: 50x compression)
//   --requests=<n>   requests per cell (default varies per experiment)
//   --duration=<s>   model seconds per load point (load-sweep benches)

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"

namespace antipode {

class BenchArgs {
 public:
  BenchArgs(int argc, char** argv) : argc_(argc), argv_(argv) {}

  double GetDouble(const char* name, double fallback) const {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::atof(argv_[i] + prefix.size());
      }
    }
    return fallback;
  }

  int GetInt(const char* name, int fallback) const {
    return static_cast<int>(GetDouble(name, fallback));
  }

  std::string GetString(const char* name, const std::string& fallback = "") const {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::string(argv_[i] + prefix.size());
      }
    }
    return fallback;
  }

  // Applies --scale and announces the configuration.
  void SetupTimeScale(double default_scale = 0.02) const {
    const double scale = GetDouble("scale", default_scale);
    TimeScale::Set(scale);
    std::printf("# time scale: %.3f (model latencies compressed %.0fx)\n", scale,
                scale > 0 ? 1.0 / scale : 0.0);
  }

 private:
  int argc_;
  char** argv_;
};

// Streaming JSON writer for the machine-readable BENCH_*.json artifacts the
// benches emit alongside their human-readable tables. Scope management
// (commas, nesting) is handled here so call sites read like the schema:
//
//   JsonReport json;
//   json.BeginObject().Field("bench", "load_sweep").BeginArray("phases");
//   for (...) json.BeginObject().Field("name", ...).EndObject();
//   json.EndArray().EndObject();
//   json.WriteFile("BENCH_load_sweep.json");
//
// Numbers are emitted with %.6g (enough for latencies and rates); non-finite
// doubles become null, which strict parsers accept where NaN would not.
class JsonReport {
 public:
  JsonReport& BeginObject(std::string_view key = {}) { return Open(key, '{'); }
  JsonReport& EndObject() { return Close('}'); }
  JsonReport& BeginArray(std::string_view key = {}) { return Open(key, '['); }
  JsonReport& EndArray() { return Close(']'); }

  JsonReport& Field(std::string_view key, std::string_view value) {
    Prefix(key);
    AppendEscaped(value);
    return *this;
  }
  JsonReport& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  JsonReport& Field(std::string_view key, double value) {
    Prefix(key);
    if (value != value || value == 1.0 / 0.0 || value == -1.0 / 0.0) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      out_ += buf;
    }
    return *this;
  }
  JsonReport& Field(std::string_view key, uint64_t value) {
    Prefix(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonReport& Field(std::string_view key, int value) {
    Prefix(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonReport& Field(std::string_view key, bool value) {
    Prefix(key);
    out_ += value ? "true" : "false";
    return *this;
  }

  // The standard distribution block: count/mean/p50/p99/p999/max.
  JsonReport& HistogramField(std::string_view key, const Histogram& hist) {
    BeginObject(key);
    Field("count", static_cast<uint64_t>(hist.count()));
    Field("mean", hist.Mean());
    Field("p50", hist.Percentile(0.50));
    Field("p99", hist.Percentile(0.99));
    Field("p999", hist.Percentile(0.999));
    Field("max", hist.max());
    return EndObject();
  }

  // Finished document; asserts every Begin* was closed.
  const std::string& str() const {
    assert(depth_ == 0 && "unbalanced JsonReport scopes");
    return out_;
  }

  // Writes the document (plus trailing newline) to `path`; returns false and
  // prints to stderr on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path.c_str());
      return false;
    }
    const std::string& doc = str();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok) {
      std::fprintf(stderr, "JsonReport: short write to %s\n", path.c_str());
    }
    return ok;
  }

 private:
  JsonReport& Open(std::string_view key, char bracket) {
    Prefix(key);
    out_ += bracket;
    need_comma_ = false;
    ++depth_;
    return *this;
  }

  JsonReport& Close(char bracket) {
    assert(depth_ > 0);
    out_ += bracket;
    need_comma_ = true;
    --depth_;
    return *this;
  }

  void Prefix(std::string_view key) {
    if (need_comma_) {
      out_ += ',';
    }
    need_comma_ = true;
    if (!key.empty()) {
      AppendEscaped(key);
      out_ += ':';
    }
  }

  void AppendEscaped(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
};

}  // namespace antipode

#endif  // BENCH_BENCH_UTIL_H_
