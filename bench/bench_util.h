// Shared helpers for the experiment-reproduction binaries: flag parsing and
// table formatting. Every binary accepts:
//   --scale=<f>      time scale (default 0.02: 50x compression)
//   --requests=<n>   requests per cell (default varies per experiment)
//   --duration=<s>   model seconds per load point (load-sweep benches)

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/clock.h"

namespace antipode {

class BenchArgs {
 public:
  BenchArgs(int argc, char** argv) : argc_(argc), argv_(argv) {}

  double GetDouble(const char* name, double fallback) const {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::atof(argv_[i] + prefix.size());
      }
    }
    return fallback;
  }

  int GetInt(const char* name, int fallback) const {
    return static_cast<int>(GetDouble(name, fallback));
  }

  std::string GetString(const char* name, const std::string& fallback = "") const {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) == 0) {
        return std::string(argv_[i] + prefix.size());
      }
    }
    return fallback;
  }

  // Applies --scale and announces the configuration.
  void SetupTimeScale(double default_scale = 0.02) const {
    const double scale = GetDouble("scale", default_scale);
    TimeScale::Set(scale);
    std::printf("# time scale: %.3f (model latencies compressed %.0fx)\n", scale,
                scale > 0 ? 1.0 / scale : 0.0);
  }

 private:
  int argc_;
  char** argv_;
};

}  // namespace antipode

#endif  // BENCH_BENCH_UTIL_H_
