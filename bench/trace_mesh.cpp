// Live trace-mesh macrobenchmark: materializes sampled Alibaba-calibrated
// call graphs (src/trace) as a running topology — hundreds of layered
// stateless RPC services plus stateful bindings on shared replicated stores —
// and drives it open-loop through the load_sweep rate ladder. Every request
// executes a real admitted plan: lineage flows through RequestContext baggage
// across every RPC hop, each stateful call is a shimmed store write, and a
// terminal read in a remote region is guarded by a barrier (lineage and
// stable-frontier backends, scoped and unscoped). This is the deep-graph
// regime (≥20 stateful calls, depth ≥5) the five hand-written apps never
// reach — the workload that exposed the small-vector lineage storage,
// interned-store wire format, native baggage slot, and route-cached RPC
// dispatch this PR adds.
//
// Alongside the mesh phases, a lineage-carry micro-phase measures the per-hop
// context cost (deserialize → append → re-serialize) at 20/40/60 dependencies
// with the native baggage slot off (the legacy re-serialize-per-mutation
// path) and on, reporting p50 ns and allocations per hop — the before/after
// for the lineage/baggage optimizations. The mesh phases repeat the same
// comparison end-to-end: `mesh_lineage_legacy` runs the identical workload as
// `mesh_lineage` with the native slot disabled.
//
// Phases: mesh_baseline (no enforcement — nonzero violations show the race
// is real), mesh_lineage_legacy, mesh_lineage, mesh_lineage_scoped /
// mesh_lineage_unscoped (deployment-wide BarrierGlobal with a region outside
// every store's replica set: scoped skips those pairs, unscoped arms vacuous
// waits), mesh_frontier. Antipode phases must complete with 0 violations —
// validate_bench_json enforces that on the emitted artifact.
//
// Emits BENCH_trace_mesh.json (schema: DESIGN.md §14) at --json-out.
//
// Flags: --scale, --duration=<real s per point>, --start-rate, --rate-factor,
//        --max-steps, --writers, --quick (tiny CI run), --json-out=<path>.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/alloc_hook.h"
#include "bench/bench_util.h"
#include "src/antipode/antipode.h"
#include "src/antipode/enforcement.h"
#include "src/common/histogram.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/obs/metrics.h"
#include "src/trace/mesh.h"

namespace antipode {
namespace {

constexpr double kMinDrainTailSlackS = 0.2;

std::atomic<uint64_t> g_mesh_counter{0};

uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

struct MeshSweepConfig {
  double duration_s = 1.0;
  double drain_cap_s = 12.0;
  double start_rate = 24.0;  // deep requests are ~two orders heavier than app ones
  double rate_factor = 2.0;
  int max_steps = 5;
  int writers = 8;
  int readers = 8;
  int carry_iters = 4000;
};

struct RatePoint {
  double offered_req_s = 0.0;
  double achieved_req_s = 0.0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t violations = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double metadata_bytes_per_req = 0.0;
  double allocs_per_req = 0.0;
  bool saturated = false;
};

struct MeshPhaseSpec {
  const char* name;
  bool antipode;
  bool native_slot;  // LineageApi native baggage slot (the optimization under test)
  EnforcementBackendKind backend = EnforcementBackendKind::kLineage;
  bool use_scope = true;
  std::vector<Region> barrier_regions = {Region::kUs};
};

struct PhaseResult {
  std::string name;
  std::string backend;
  bool antipode = false;
  bool native_slot = true;
  bool use_scope = true;
  uint64_t scoped_skips = 0;
  uint64_t violations = 0;
  std::vector<RatePoint> points;

  const RatePoint& Peak() const {
    const RatePoint* best = &points.front();
    for (const RatePoint& p : points) {
      const bool better = p.achieved_req_s > best->achieved_req_s;
      if ((!p.saturated && best->saturated) || (p.saturated == best->saturated && better)) {
        best = &p;
      }
    }
    return *best;
  }
};

// Open-loop bed around one LiveMesh: writers execute plans, a reader pool
// runs the guarded terminal read and completes the request.
class MeshBed {
 public:
  MeshBed(const MeshTopology* topology, LiveMeshOptions options, ThreadPool* readers)
      : mesh_(topology, std::move(options)), readers_(readers) {}

  void Issue(uint64_t request_index, uint64_t send_ns) {
    LiveMesh::WriterResult writer = mesh_.RunWriterSide(request_index);
    const bool submitted =
        readers_->Submit([this, writer = std::move(writer), request_index, send_ns]() mutable {
          Complete(writer, request_index, send_ns);
        });
    if (!submitted) {
      Complete(writer, request_index, send_ns);
    }
  }

  void Drain() { mesh_.DrainReplication(); }

  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  uint64_t violations() const { return violations_.load(std::memory_order_relaxed); }
  uint64_t metadata_bytes() const { return metadata_bytes_.load(std::memory_order_relaxed); }
  const ConcurrentHistogram& latency() const { return latency_; }

  bool AwaitCompletions(uint64_t issued, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(done_mu_);
    return done_cv_.wait_until(lock, deadline, [&] {
      return completed_.load(std::memory_order_relaxed) >= issued;
    });
  }

 private:
  void Complete(const LiveMesh::WriterResult& writer, uint64_t request_index, uint64_t send_ns) {
    const bool found = mesh_.RunReaderSide(writer, request_index);
    if (mesh_.options().antipode) {
      metadata_bytes_.fetch_add(
          EnforcementMetadataBytes(mesh_.options().backend, writer.lineage),
          std::memory_order_relaxed);
    }
    latency_.Record(static_cast<double>(NowNanos() - send_ns) / 1e6);
    if (!found) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(done_mu_);
    done_cv_.notify_all();
  }

  LiveMesh mesh_;
  ThreadPool* readers_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> violations_{0};
  std::atomic<uint64_t> metadata_bytes_{0};
  ConcurrentHistogram latency_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

RatePoint RunLoadPoint(MeshBed& bed, double rate, const MeshSweepConfig& config) {
  ThreadPool writers(static_cast<size_t>(config.writers), "mesh-writers");

  const uint64_t allocs_before = benchhook::AllocationCount();
  const auto start = std::chrono::steady_clock::now();
  const auto gen_end = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(config.duration_s));
  const auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / rate));

  uint64_t issued = 0;
  auto next_arrival = start;
  while (next_arrival < gen_end) {
    std::this_thread::sleep_until(next_arrival);
    const auto now = std::chrono::steady_clock::now();
    while (next_arrival <= now && next_arrival < gen_end) {
      const uint64_t index = issued++;
      const uint64_t send_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(next_arrival.time_since_epoch())
              .count());
      writers.Submit([&bed, index, send_ns] {
        RequestContext context;
        ScopedContext scoped(std::move(context));
        bed.Issue(index, send_ns);
      });
      next_arrival += interval;
    }
  }

  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config.drain_cap_s));
  const bool drained = bed.AwaitCompletions(issued, drain_deadline);

  RatePoint point;
  point.offered_req_s = rate;
  point.issued = issued;
  point.completed = bed.completed();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(std::chrono::steady_clock::now() -
                                                                start)
          .count();
  const double drain_tail_s = elapsed_s - config.duration_s;
  point.saturated =
      !drained || drain_tail_s > std::max(0.5 * config.duration_s, kMinDrainTailSlackS);
  point.achieved_req_s = point.saturated
                             ? (elapsed_s > 0 ? static_cast<double>(point.completed) / elapsed_s
                                              : 0.0)
                             : static_cast<double>(point.completed) / config.duration_s;
  const Histogram latency = bed.latency().Snapshot();
  point.p50_ms = latency.Percentile(0.50);
  point.p99_ms = latency.Percentile(0.99);
  point.p999_ms = latency.Percentile(0.999);
  point.violations = bed.violations();
  point.metadata_bytes_per_req =
      point.completed == 0
          ? 0.0
          : static_cast<double>(bed.metadata_bytes()) / static_cast<double>(point.completed);

  writers.Shutdown();
  if (!drained) {
    bed.AwaitCompletions(issued, std::chrono::steady_clock::now() + std::chrono::hours(1));
  }
  bed.Drain();
  // Allocation accounting covers generation through full drain: everything a
  // request costs — hops, lineage carry, store writes, replication, barrier.
  point.allocs_per_req =
      bed.completed() == 0
          ? 0.0
          : static_cast<double>(benchhook::AllocationCount() - allocs_before) /
                static_cast<double>(bed.completed());
  return point;
}

PhaseResult RunPhase(const MeshTopology& topology, const MeshPhaseSpec& spec,
                     const MeshSweepConfig& config) {
  PhaseResult result;
  result.name = spec.name;
  result.antipode = spec.antipode;
  result.native_slot = spec.native_slot;
  result.use_scope = spec.use_scope;
  result.backend = spec.antipode ? std::string(EnforcementBackendKindName(spec.backend)) : "none";

  const bool previous_native = LineageApi::SetNativeSlot(spec.native_slot);

  std::printf("\n== phase %s ==\n", spec.name);
  std::printf("%12s %12s %8s %8s %10s %10s %6s %12s %6s\n", "offered/s", "achieved/s", "issued",
              "done", "p50 ms", "p99 ms", "viol", "allocs/req", "sat");

  double rate = config.start_rate;
  for (int step = 0; step < config.max_steps; ++step) {
    ThreadPool readers(static_cast<size_t>(config.readers), "mesh-readers");
    LiveMeshOptions options;
    options.antipode = spec.antipode;
    options.backend = spec.backend;
    options.use_scope = spec.use_scope;
    options.barrier_regions = spec.barrier_regions;
    options.tag = std::to_string(g_mesh_counter.fetch_add(1));
    auto bed = std::make_unique<MeshBed>(&topology, std::move(options), &readers);
    RatePoint point = RunLoadPoint(*bed, rate, config);
    bed.reset();
    readers.Shutdown();

    std::printf("%12.1f %12.1f %8llu %8llu %10.2f %10.2f %6llu %12.0f %6s\n",
                point.offered_req_s, point.achieved_req_s,
                static_cast<unsigned long long>(point.issued),
                static_cast<unsigned long long>(point.completed), point.p50_ms, point.p99_ms,
                static_cast<unsigned long long>(point.violations), point.allocs_per_req,
                point.saturated ? "yes" : "no");
    const bool stop = point.saturated;
    result.violations += point.violations;
    result.points.push_back(std::move(point));
    if (stop) {
      break;
    }
    rate *= config.rate_factor;
  }
  result.scoped_skips = MetricsRegistry::Default().GetCounter("barrier.scoped_skip")->value();
  LineageApi::SetNativeSlot(previous_native);

  const RatePoint& peak = result.Peak();
  std::printf("# peak sustained: %.1f req/s (p50 %.2f ms, p99 %.2f ms, violations %llu, "
              "allocs/req %.0f, scoped skips %llu)\n",
              peak.achieved_req_s, peak.p50_ms, peak.p99_ms,
              static_cast<unsigned long long>(result.violations), peak.allocs_per_req,
              static_cast<unsigned long long>(result.scoped_skips));
  return result;
}

// Lineage-carry micro-phase: one RPC-hop's worth of context work — pull the
// wire blob into a context, append the hop's stateful writes, re-serialize
// for the next hop — at 20/40/60 carried dependencies, legacy path vs native
// baggage slot. Deep-graph handlers perform several stateful writes between
// serializations; the legacy path re-serializes the whole N-dep lineage into
// the baggage after every append, the native slot mutates the deserialized
// object in place and serializes once at the hop boundary. That per-append
// re-serialize is exactly the O(deps · appends) cost the slot removes.
constexpr int kCarryAppendsPerHop = 4;

struct CarryPoint {
  int deps = 0;
  bool native = false;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double allocs_per_hop = 0.0;
};

Lineage MakeCarryLineage(int deps) {
  Lineage lineage(1);
  for (int i = 0; i < deps; ++i) {
    WriteId id;
    id.store = "mesh-store-" + std::to_string(i % 12);
    id.key = "s" + std::to_string(i) + "/k0";
    id.version = 1 + static_cast<uint64_t>(i);
    lineage.Append(std::move(id));
  }
  return lineage;
}

CarryPoint RunCarryPoint(int deps, bool native, int iters) {
  const bool previous = LineageApi::SetNativeSlot(native);
  CarryPoint point;
  point.deps = deps;
  point.native = native;

  std::string blob;
  {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Install(MakeCarryLineage(deps));
    blob = RequestContext::SerializeCurrent();
  }

  Histogram latency;
  size_t sink = 0;
  const int warmup = std::max(16, iters / 10);
  uint64_t allocs_before = 0;
  for (int i = -warmup; i < iters; ++i) {
    if (i == 0) {
      allocs_before = benchhook::AllocationCount();
    }
    WriteId ids[kCarryAppendsPerHop];
    for (int k = 0; k < kCarryAppendsPerHop; ++k) {
      ids[k].store = "mesh-store-hop";
      ids[k].key = "hop/k" + std::to_string(((i + warmup) * kCarryAppendsPerHop + k) & 7);
      ids[k].version = static_cast<uint64_t>((i + warmup) * kCarryAppendsPerHop + k + 1);
    }
    const uint64_t t0 = NowNanos();
    {
      ScopedContext scoped(RequestContext::Deserialize(blob));
      for (WriteId& id : ids) {
        LineageApi::Append(std::move(id));
      }
      sink += RequestContext::SerializeCurrent().size();
    }
    const uint64_t t1 = NowNanos();
    if (i >= 0) {
      latency.Record(static_cast<double>(t1 - t0));
    }
  }
  const uint64_t allocs_after = benchhook::AllocationCount();
  point.p50_ns = latency.Percentile(0.50);
  point.p99_ns = latency.Percentile(0.99);
  point.allocs_per_hop = static_cast<double>(allocs_after - allocs_before) / iters;
  LineageApi::SetNativeSlot(previous);
  if (sink == 0) {
    std::printf("# impossible\n");
  }
  return point;
}

void EmitJson(const MeshTopology& topology, const std::vector<CarryPoint>& carry,
              const std::vector<PhaseResult>& phases, const MeshSweepConfig& config, bool quick,
              const std::string& path) {
  JsonReport json;
  json.BeginObject();
  json.Field("bench", "trace_mesh");
  json.Field("quick", quick);
  json.Field("duration_s", config.duration_s);

  const MeshStats& stats = topology.stats;
  json.BeginObject("graph");
  json.Field("live_services", static_cast<double>(topology.live_services()));
  json.Field("stateless_services", static_cast<double>(topology.services.size()));
  json.Field("stateful_bindings", static_cast<double>(topology.bindings.size()));
  json.Field("stores", static_cast<double>(topology.options.num_stores));
  json.Field("plans", static_cast<double>(topology.plans.size()));
  json.Field("graphs_sampled", static_cast<double>(stats.graphs_sampled));
  json.Field("min_stateful_calls", static_cast<double>(stats.min_stateful_calls));
  json.Field("max_stateful_calls", static_cast<double>(stats.max_stateful_calls));
  json.Field("mean_stateful_calls", stats.mean_stateful_calls);
  json.Field("min_depth", static_cast<double>(stats.min_depth));
  json.Field("max_depth", static_cast<double>(stats.max_depth));
  json.Field("mean_depth", stats.mean_depth);
  json.Field("mean_total_calls", stats.mean_total_calls);
  json.EndObject();

  json.BeginArray("carry");
  for (const CarryPoint& point : carry) {
    json.BeginObject();
    json.Field("deps", static_cast<double>(point.deps));
    json.Field("native", point.native);
    json.Field("p50_ns", point.p50_ns);
    json.Field("p99_ns", point.p99_ns);
    json.Field("allocs_per_hop", point.allocs_per_hop);
    json.EndObject();
  }
  json.EndArray();

  json.BeginArray("phases");
  for (const PhaseResult& phase : phases) {
    const RatePoint& peak = phase.Peak();
    json.BeginObject();
    json.Field("name", phase.name);
    json.Field("backend", phase.backend);
    json.Field("antipode", phase.antipode);
    json.Field("native_slot", phase.native_slot);
    json.Field("use_scope", phase.use_scope);
    json.Field("scoped_skips", static_cast<double>(phase.scoped_skips));
    json.Field("violations", static_cast<double>(phase.violations));
    json.Field("peak_req_s", peak.achieved_req_s);
    json.Field("p50_ms", peak.p50_ms);
    json.Field("p99_ms", peak.p99_ms);
    json.Field("p999_ms", peak.p999_ms);
    json.Field("metadata_bytes_per_req", peak.metadata_bytes_per_req);
    json.Field("allocs_per_req", peak.allocs_per_req);
    json.BeginArray("points");
    for (const RatePoint& point : phase.points) {
      json.BeginObject();
      json.Field("offered_req_s", point.offered_req_s);
      json.Field("achieved_req_s", point.achieved_req_s);
      json.Field("issued", point.issued);
      json.Field("completed", point.completed);
      json.Field("violations", static_cast<double>(point.violations));
      json.Field("p50_ms", point.p50_ms);
      json.Field("p99_ms", point.p99_ms);
      json.Field("p999_ms", point.p999_ms);
      json.Field("metadata_bytes_per_req", point.metadata_bytes_per_req);
      json.Field("allocs_per_req", point.allocs_per_req);
      json.Field("saturated", point.saturated);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (json.WriteFile(path)) {
    std::printf("\n# wrote %s\n", path.c_str());
  }
}

int Main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
    }
  }
  args.SetupTimeScale();

  MeshSweepConfig config;
  MeshOptions mesh_options;
  if (quick) {
    config.duration_s = 0.25;
    config.drain_cap_s = 6.0;
    config.start_rate = 8.0;
    config.rate_factor = 3.0;
    config.max_steps = 2;
    config.writers = 4;
    config.readers = 4;
    config.carry_iters = 600;
    mesh_options.num_plans = 8;
    mesh_options.min_live_services = 60;
    mesh_options.max_plans = 64;
    mesh_options.stateless_layer_width = 10;
    mesh_options.stateful_width = 32;
  }
  config.duration_s = args.GetDouble("duration", config.duration_s);
  config.start_rate = args.GetDouble("start-rate", config.start_rate);
  config.rate_factor = args.GetDouble("rate-factor", config.rate_factor);
  config.max_steps = args.GetInt("max-steps", config.max_steps);
  config.writers = args.GetInt("writers", config.writers);
  config.readers = config.writers;
  const std::string json_out = args.GetString("json-out", "BENCH_trace_mesh.json");

  std::printf("# building mesh topology (seed %llu)...\n",
              static_cast<unsigned long long>(mesh_options.gen.seed));
  const MeshTopology topology = BuildMeshTopology(mesh_options);
  std::printf("# topology: %zu live services (%zu stateless + %zu stateful bindings on %u "
              "stores), %zu plans from %llu sampled graphs\n",
              topology.live_services(), topology.services.size(), topology.bindings.size(),
              topology.options.num_stores, topology.plans.size(),
              static_cast<unsigned long long>(topology.stats.graphs_sampled));
  std::printf("# plan shape: stateful calls [%u, %u] mean %.1f, depth [%u, %u] mean %.1f, "
              "mean total calls %.1f\n",
              topology.stats.min_stateful_calls, topology.stats.max_stateful_calls,
              topology.stats.mean_stateful_calls, topology.stats.min_depth,
              topology.stats.max_depth, topology.stats.mean_depth,
              topology.stats.mean_total_calls);
  if (topology.plans.empty()) {
    std::fprintf(stderr, "trace_mesh: no plans admitted — widen the admission window\n");
    return 1;
  }

  // Lineage-carry micro-phase (legacy vs native slot, the hot-path delta).
  std::printf("\n== lineage carry (per RPC hop: deserialize + %d appends + serialize) ==\n",
              kCarryAppendsPerHop);
  std::printf("%6s %8s %12s %12s %14s\n", "deps", "native", "p50 ns", "p99 ns", "allocs/hop");
  std::vector<CarryPoint> carry;
  for (int deps : {20, 40, 60}) {
    for (bool native : {false, true}) {
      CarryPoint point = RunCarryPoint(deps, native, config.carry_iters);
      std::printf("%6d %8s %12.0f %12.0f %14.2f\n", point.deps, point.native ? "on" : "off",
                  point.p50_ns, point.p99_ns, point.allocs_per_hop);
      carry.push_back(point);
    }
  }
  for (size_t i = 0; i + 1 < carry.size(); i += 2) {
    const CarryPoint& legacy = carry[i];
    const CarryPoint& native = carry[i + 1];
    std::printf("# carry delta @%d deps: p50 %.0f -> %.0f ns (%.1fx), allocs/hop %.2f -> %.2f\n",
                legacy.deps, legacy.p50_ns, native.p50_ns,
                native.p50_ns > 0 ? legacy.p50_ns / native.p50_ns : 0.0, legacy.allocs_per_hop,
                native.allocs_per_hop);
  }

  // The deployment-wide barrier set for the scoped/unscoped pair: kSg hosts
  // no mesh store replica, so scoping has pairs to skip.
  const std::vector<Region> kLocalBarrier = {Region::kUs};
  const std::vector<Region> kGlobalBarrier = {Region::kUs, Region::kSg};
  const MeshPhaseSpec specs[] = {
      {"mesh_baseline", false, true},
      {"mesh_lineage_legacy", true, false, EnforcementBackendKind::kLineage, true,
       kLocalBarrier},
      {"mesh_lineage", true, true, EnforcementBackendKind::kLineage, true, kLocalBarrier},
      {"mesh_lineage_scoped", true, true, EnforcementBackendKind::kLineage, true,
       kGlobalBarrier},
      {"mesh_lineage_unscoped", true, true, EnforcementBackendKind::kLineage, false,
       kGlobalBarrier},
      {"mesh_frontier", true, true, EnforcementBackendKind::kStableFrontier, true,
       kLocalBarrier},
  };
  std::vector<PhaseResult> phases;
  for (const MeshPhaseSpec& spec : specs) {
    MetricsRegistry::Default().SnapshotAndReset();
    phases.push_back(RunPhase(topology, spec, config));
  }

  std::printf("\n%-24s %-16s %12s %10s %10s %6s %12s %10s\n", "phase", "backend", "peak req/s",
              "p50 ms", "p99 ms", "viol", "allocs/req", "md B/req");
  for (const PhaseResult& phase : phases) {
    const RatePoint& peak = phase.Peak();
    std::printf("%-24s %-16s %12.1f %10.2f %10.2f %6llu %12.0f %10.1f\n", phase.name.c_str(),
                phase.backend.c_str(), peak.achieved_req_s, peak.p50_ms, peak.p99_ms,
                static_cast<unsigned long long>(phase.violations), peak.allocs_per_req,
                peak.metadata_bytes_per_req);
  }
  // The end-to-end before/after for the native-slot + route optimizations.
  const PhaseResult* legacy = nullptr;
  const PhaseResult* native = nullptr;
  for (const PhaseResult& phase : phases) {
    if (phase.name == "mesh_lineage_legacy") legacy = &phase;
    if (phase.name == "mesh_lineage") native = &phase;
  }
  if (legacy != nullptr && native != nullptr) {
    const RatePoint& before = legacy->Peak();
    const RatePoint& after = native->Peak();
    std::printf("# native-slot delta (same workload): allocs/req %.0f -> %.0f, p50 %.2f -> "
                "%.2f ms\n",
                before.allocs_per_req, after.allocs_per_req, before.p50_ms, after.p50_ms);
  }

  uint64_t enforced_violations = 0;
  for (const PhaseResult& phase : phases) {
    if (phase.antipode) {
      enforced_violations += phase.violations;
    }
  }
  EmitJson(topology, carry, phases, config, quick, json_out);
  if (enforced_violations != 0) {
    std::fprintf(stderr, "trace_mesh: %llu XCY violations under enforcement\n",
                 static_cast<unsigned long long>(enforced_violations));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace antipode

int main(int argc, char** argv) { return antipode::Main(argc, argv); }
