// Reproduces Fig. 8: DeathStarBench-style social network under open-loop
// load, original vs Antipode, for the US→EU and US→SG replication pairs.
//   (left)  average throughput vs compose latency across a load sweep;
//   (right) consistency window at peak load.
// Also reports the §7.3 violation rates (≈0.1% US→EU vs ≈34% US→SG) and the
// §7.4 maximum lineage metadata size (<200 B).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/social_network/social_network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

using namespace antipode;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale(0.1);
  const double duration = args.GetDouble("duration", 2.5);

  // --trace-out=<path>: collect spans for the whole sweep and export them as
  // a Chrome trace (chrome://tracing, ui.perfetto.dev), or JSONL when the
  // path ends in ".jsonl". --trace-sample=N traces one request in N.
  const std::string trace_out = args.GetString("trace-out");
  if (!trace_out.empty()) {
    Tracer::Default().Enable(static_cast<uint64_t>(args.GetInt("trace-sample", 8)));
  }
  const bool dump_metrics = args.GetInt("metrics", 0) != 0;
  MetricsRegistry::Default().SnapshotAndReset();  // drop warm-up residue

  const std::vector<double> loads = {50, 75, 100, 125, 150, 175};
  const std::vector<std::pair<Region, const char*>> pairs = {{Region::kEu, "US->EU"},
                                                             {Region::kSg, "US->SG"}};

  for (const auto& [remote, pair_name] : pairs) {
    std::printf("# Fig 8 (left): %s, throughput (req/s) vs latency (model ms), %g model s/point\n",
                pair_name, duration);
    std::printf("%-8s %14s %14s %14s | %14s %14s %14s\n", "load", "orig_tput", "orig_lat_avg",
                "orig_lat_p99", "anti_tput", "anti_lat_avg", "anti_lat_p99");
    SocialNetworkResult peak_results[2];
    for (double load : loads) {
      SocialNetworkResult results[2];
      for (int antipode = 0; antipode <= 1; ++antipode) {
        SocialNetworkConfig config;
        config.remote_region = remote;
        config.antipode = antipode == 1;
        config.load_rps = load;
        config.duration_model_seconds = duration;
        results[antipode] = RunSocialNetwork(config);
        if (load == 125) {
          peak_results[antipode] = results[antipode];
        }
      }
      std::printf("%-8.0f %14.1f %14.1f %14.1f | %14.1f %14.1f %14.1f\n", load,
                  results[0].throughput, results[0].compose_latency_model_ms.Mean(),
                  results[0].compose_latency_model_ms.Percentile(0.99), results[1].throughput,
                  results[1].compose_latency_model_ms.Mean(),
                  results[1].compose_latency_model_ms.Percentile(0.99));
      std::fflush(stdout);
    }

    std::printf("\n# Fig 8 (right): %s consistency window at peak (125 req/s), model ms\n",
                pair_name);
    std::printf("%-10s %12s %12s %12s\n", "variant", "p50", "mean", "p99");
    std::printf("%-10s %12.1f %12.1f %12.1f\n", "original",
                peak_results[0].consistency_window_model_ms.Percentile(0.5),
                peak_results[0].consistency_window_model_ms.Mean(),
                peak_results[0].consistency_window_model_ms.Percentile(0.99));
    std::printf("%-10s %12.1f %12.1f %12.1f\n", "antipode",
                peak_results[1].consistency_window_model_ms.Percentile(0.5),
                peak_results[1].consistency_window_model_ms.Mean(),
                peak_results[1].consistency_window_model_ms.Percentile(0.99));

    std::printf("\n# §7.3 %s: violation rate original=%.2f%% antipode=%.2f%%\n", pair_name,
                100.0 * peak_results[0].ViolationRate(), 100.0 * peak_results[1].ViolationRate());
    std::printf("# §7.4 %s: max lineage metadata = %.0f bytes\n", pair_name,
                peak_results[1].max_lineage_bytes);

    // One metrics window per replication pair, drained so the next pair
    // starts from zero.
    const MetricsSnapshot window = MetricsRegistry::Default().SnapshotAndReset();
    const Histogram stall = window.HistogramTotal("barrier.stall_model_ms");
    std::printf("# metrics %s: rpc.calls=%llu barrier.calls=%llu barrier.errors=%llu "
                "barrier_stall_model_ms{p50=%.1f p99=%.1f}\n\n",
                pair_name, static_cast<unsigned long long>(window.CounterTotal("rpc.calls")),
                static_cast<unsigned long long>(window.CounterTotal("barrier.calls")),
                static_cast<unsigned long long>(window.CounterTotal("barrier.errors")),
                stall.Percentile(0.5), stall.Percentile(0.99));
    if (dump_metrics) {
      std::printf("%s\n", window.ToString().c_str());
    }
  }

  if (!trace_out.empty()) {
    const bool jsonl = trace_out.size() > 6 &&
                       trace_out.compare(trace_out.size() - 6, 6, ".jsonl") == 0;
    const Status status = jsonl ? Tracer::Default().ExportJsonl(trace_out)
                                : Tracer::Default().ExportChromeTrace(trace_out);
    if (status.ok()) {
      std::printf("# trace: wrote %zu spans to %s (%s)\n", Tracer::Default().NumEvents(),
                  trace_out.c_str(), jsonl ? "jsonl" : "chrome trace-event json");
    } else {
      std::printf("# trace: export failed: %s\n", status.ToString().c_str());
    }
  }
  return 0;
}
