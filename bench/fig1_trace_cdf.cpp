// Reproduces Fig. 1: CDFs over the Alibaba-style trace — (left) number of
// calls to stateful services per request, (right) number of unique stateful
// services called per request. The synthetic generator is calibrated to the
// published statistics (§2.1): >20% of requests make ≥20 stateful calls;
// >50% touch ≥5 unique stateful services; 10% touch >20; avg depth >4.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/trace/call_graph.h"

using namespace antipode;

namespace {

double FractionAtLeast(const Histogram& h, double threshold) {
  // 1 - CDF(threshold-epsilon).
  double below = 0.0;
  for (const auto& [value, cumulative] : h.Cdf()) {
    if (value < threshold) {
      below = cumulative;
    } else {
      break;
    }
  }
  return 1.0 - below;
}

void PrintCdf(const char* title, const Histogram& h, double cutoff_quantile) {
  std::printf("\n# %s (CDF, cut at p%.0f like the paper)\n", title, cutoff_quantile * 100);
  std::printf("%-12s %8s\n", "value", "cdf");
  double last_printed = -1.0;
  for (const auto& [value, cumulative] : h.Cdf()) {
    if (cumulative > cutoff_quantile) {
      break;
    }
    if (value - last_printed < 0.5) {
      continue;  // thin out sub-integer buckets
    }
    std::printf("%-12.1f %8.3f\n", value, cumulative);
    last_printed = value;
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  const auto requests = static_cast<uint32_t>(args.GetInt("requests", 100000));

  CallGraphGenerator generator(TraceGenOptions{});
  TraceAnalysis analysis = AnalyzeTrace(generator, requests);

  std::printf("# Fig 1: Alibaba-style trace, %u synthetic requests\n", requests);
  std::printf("# calibration targets vs measured:\n");
  std::printf("#   >=20 stateful calls:    target >20%%   measured %5.1f%%\n",
              100.0 * FractionAtLeast(analysis.stateful_calls_per_request, 20));
  std::printf("#   >=5 unique stateful:    target >50%%   measured %5.1f%%\n",
              100.0 * FractionAtLeast(analysis.unique_stateful_per_request, 5));
  std::printf("#   >20 unique stateful:    target ~10%%   measured %5.1f%%\n",
              100.0 * FractionAtLeast(analysis.unique_stateful_per_request, 21));
  std::printf("#   avg call depth:         target >4     measured %5.1f\n",
              analysis.depth_per_request.Mean());

  PrintCdf("Fig 1 (left): calls to stateful services per request",
           analysis.stateful_calls_per_request, 0.95);
  PrintCdf("Fig 1 (right): unique stateful services per request",
           analysis.unique_stateful_per_request, 0.99);
  return 0;
}
