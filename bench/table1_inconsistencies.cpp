// Reproduces Table 1: percentage of observed XCY inconsistencies in the
// Post-Notification application for every ⟨post-storage, notifier⟩ pair of
// off-the-shelf datastores, geo-replicated EU (writer) → US (reader), with
// no Antipode.
//
// Paper's shape: SNS row high everywhere (88–100%); AMQ row single/low-double
// digits except S3 (100%); DynamoDB-notifier row ~0% except S3 (13%).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/post_notification/post_notification.h"

using namespace antipode;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 400);

  const std::vector<PostStorageKind> storages = {
      PostStorageKind::kMysql, PostStorageKind::kDynamo, PostStorageKind::kRedis,
      PostStorageKind::kS3};
  const std::vector<NotifierKind> notifiers = {NotifierKind::kSns, NotifierKind::kAmq,
                                               NotifierKind::kDynamo};

  std::printf("# Table 1: %% of observed inconsistencies (no Antipode), %d requests/cell\n",
              requests);
  std::printf("%-10s", "notifier");
  for (auto storage : storages) {
    std::printf(" %10s", std::string(PostStorageName(storage)).c_str());
  }
  std::printf("\n");

  for (auto notifier : notifiers) {
    std::printf("%-10s", std::string(NotifierName(notifier)).c_str());
    for (auto storage : storages) {
      PostNotificationConfig config;
      config.post_storage = storage;
      config.notifier = notifier;
      config.antipode = false;
      config.num_requests = requests;
      PostNotificationResult result = RunPostNotification(config);
      std::printf(" %9.0f%%", 100.0 * result.ViolationRate());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // Sanity: with Antipode every cell must be 0%.
  std::printf("\n# With Antipode enabled (violations must be 0):\n");
  std::printf("%-10s", "notifier");
  for (auto storage : storages) {
    std::printf(" %10s", std::string(PostStorageName(storage)).c_str());
  }
  std::printf("\n");
  for (auto notifier : notifiers) {
    std::printf("%-10s", std::string(NotifierName(notifier)).c_str());
    for (auto storage : storages) {
      PostNotificationConfig config;
      config.post_storage = storage;
      config.notifier = notifier;
      config.antipode = true;
      config.num_requests = requests / 4;  // barrier waits make cells slower
      PostNotificationResult result = RunPostNotification(config);
      std::printf(" %9.0f%%", 100.0 * result.ViolationRate());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
