// Ablation A (paper §6.3 / §7.4): where should barrier be placed?
//
// Compares three strategies on the Post-Notification flow (MySQL post
// storage, SNS notifier):
//   1. none              — baseline, violations allowed;
//   2. off-critical-path — barrier right after the notification arrives,
//                          before any user-visible read (the DSB placement);
//   3. every-read        — the "fully automated" naïve strategy: a barrier
//                          immediately preceding every read, including reads
//                          whose lineage is already visible (modelled by an
//                          extra read of the author profile that the request
//                          performs before the post read).
//
// The off-path placement fixes all violations at the cost of delaying only
// the notification delivery; barrier-before-every-read additionally stalls
// unrelated reads, inflating user-visible read latency.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/antipode/antipode.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"
#include "src/store/pubsub_store.h"
#include "src/store/sql_store.h"

using namespace antipode;

namespace {

enum class Placement { kNone, kOffPath, kEveryRead };

struct Outcome {
  int violations = 0;
  Histogram read_latency_ms;   // user-visible read path
  Histogram notif_delay_ms;    // notification publish -> delivered to user
};

Outcome RunPlacement(Placement placement, int requests) {
  static int run = 0;
  const std::string suffix = std::to_string(run++);
  const std::vector<Region> regions = {Region::kEu, Region::kUs};

  SqlStore posts(SqlStore::DefaultOptions("abl-mysql-" + suffix, regions));
  posts.CreateTable("posts", {"id", "content"}, "id");
  SqlShim post_shim(&posts);
  post_shim.InstrumentTable("posts");

  // Author profiles: written long ago, fully replicated — reads of them
  // never *need* a barrier.
  KvStore profiles(KvStore::DefaultOptions("abl-profiles-" + suffix, regions));
  KvShim profile_shim(&profiles);
  profile_shim.WriteCtx(Region::kUs, "profile:alice", "alice's profile");

  PubSubStore notif(PubSubStore::DefaultOptions("abl-sns-" + suffix, regions));
  PubSubShim notif_shim(&notif);

  ShimRegistry registry;
  registry.Register(&post_shim);
  registry.Register(&profile_shim);
  registry.Register(&notif_shim);

  ThreadPool writers(16, "writers");
  ThreadPool readers(16, "readers");
  Outcome outcome;
  ConcurrentHistogram read_latency;
  ConcurrentHistogram notif_delay;
  std::atomic<int> violations{0};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;

  notif_shim.Subscribe(Region::kUs, "posts", &readers, [&](const ConsumedMessage& message) {
    Deserializer d(message.payload);
    const std::string post_id = *d.ReadString();
    const auto publish_time = TimePoint(TimePoint::duration(
        static_cast<int64_t>(*d.ReadUint64())));

    if (placement == Placement::kOffPath) {
      // Enforce everything once, before the user-visible phase begins.
      Barrier(message.lineage, Region::kUs, BarrierOptions{.registry = &registry});
    }
    notif_delay.Record(TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
        SystemClock::Instance().Now() - publish_time)));

    // --- user-visible phase: read profile, then the post ---
    const TimePoint read_begin = SystemClock::Instance().Now();
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Install(message.lineage);
    if (placement == Placement::kEveryRead) {
      BarrierCtx(Region::kUs, BarrierOptions{.registry = &registry});
    }
    profile_shim.ReadCtx(Region::kUs, "profile:alice");
    if (placement == Placement::kEveryRead) {
      BarrierCtx(Region::kUs, BarrierOptions{.registry = &registry});
    }
    const bool found =
        post_shim.SelectByPkCtx(Region::kUs, "posts", Value(post_id)).ok();
    read_latency.Record(TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
        SystemClock::Instance().Now() - read_begin)));
    if (!found) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
    }
    cv.notify_all();
  });

  for (int i = 0; i < requests; ++i) {
    writers.Submit([&, i] {
      RequestContext context;
      ScopedContext scoped(std::move(context));
      LineageApi::Root();
      Row row{{"id", Value("p" + std::to_string(i))}, {"content", Value(std::string(512, 'x'))}};
      post_shim.InsertCtx(Region::kEu, "posts", std::move(row));
      Serializer s;
      s.WriteString("p" + std::to_string(i));
      s.WriteUint64(
          static_cast<uint64_t>(SystemClock::Instance().Now().time_since_epoch().count()));
      notif_shim.PublishCtx(Region::kEu, "posts", s.Release());
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done >= requests; });
  }
  writers.Shutdown();
  readers.Shutdown();

  outcome.violations = violations.load();
  outcome.read_latency_ms = read_latency.Snapshot();
  outcome.notif_delay_ms = notif_delay.Snapshot();
  return outcome;
}

const char* PlacementName(Placement placement) {
  switch (placement) {
    case Placement::kNone:
      return "none";
    case Placement::kOffPath:
      return "off-critical-path";
    case Placement::kEveryRead:
      return "before-every-read";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 150);

  std::printf("# Ablation A: barrier placement (MySQL posts, SNS notifier, EU->US), "
              "%d requests\n",
              requests);
  std::printf("%-20s %12s %16s %16s %16s\n", "placement", "violations", "user_read_p50",
              "user_read_p99", "notif_delay_p50");
  for (Placement placement :
       {Placement::kNone, Placement::kOffPath, Placement::kEveryRead}) {
    Outcome outcome = RunPlacement(placement, requests);
    std::printf("%-20s %12d %16.1f %16.1f %16.1f\n", PlacementName(placement),
                outcome.violations, outcome.read_latency_ms.Percentile(0.5),
                outcome.read_latency_ms.Percentile(0.99),
                outcome.notif_delay_ms.Percentile(0.5));
    std::fflush(stdout);
  }
  std::printf("# expected: off-path fixes violations while user reads stay ~instant;\n");
  std::printf("#           before-every-read also fixes them but stalls the user-visible "
              "read path\n");
  return 0;
}
