// Reproduces Fig. 6: percentage of inconsistencies in Post-Notification as a
// function of an artificial delay inserted before publishing the
// notification (notifier = SNS). More delay gives the post more time to
// replicate, so every curve decreases; S3's heavy replication tail keeps its
// curve high (~20% even at 50 s in the paper).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/post_notification/post_notification.h"

using namespace antipode;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv);
  args.SetupTimeScale();
  const int requests = args.GetInt("requests", 200);

  const std::vector<double> delays_ms = {0, 250, 500, 1000, 2000, 5000, 10000, 30000, 50000};
  const std::vector<PostStorageKind> storages = {
      PostStorageKind::kMysql, PostStorageKind::kDynamo, PostStorageKind::kRedis,
      PostStorageKind::kS3};

  std::printf("# Fig 6: %% inconsistencies vs artificial pre-notification delay "
              "(notifier=SNS, no Antipode), %d requests/point\n",
              requests);
  std::printf("%-12s", "delay_ms");
  for (auto storage : storages) {
    std::printf(" %10s", std::string(PostStorageName(storage)).c_str());
  }
  std::printf("\n");

  for (double delay : delays_ms) {
    std::printf("%-12.0f", delay);
    for (auto storage : storages) {
      PostNotificationConfig config;
      config.post_storage = storage;
      config.notifier = NotifierKind::kSns;
      config.antipode = false;
      config.artificial_delay_model_millis = delay;
      config.num_requests = requests;
      config.writer_concurrency = 64;
      PostNotificationResult result = RunPostNotification(config);
      std::printf(" %9.1f%%", 100.0 * result.ViolationRate());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
