#include "src/antipode/framing.h"

#include "src/common/serialization.h"

namespace antipode {
namespace {

// Magic prefix distinguishing framed values from raw bytes written by
// non-instrumented services (incremental deployment, §3.4).
constexpr char kFrameMagic[2] = {'\x7F', 'L'};

}  // namespace

std::string FrameValue(const Lineage& lineage, std::string_view value) {
  // One-pass, exact-size encode: WireSize() gives the length prefix up front,
  // so the lineage serializes straight into the frame — no intermediate blob.
  const size_t lineage_bytes = lineage.WireSize();
  std::string out;
  out.reserve(sizeof(kFrameMagic) + VarintWireSize(lineage_bytes) + lineage_bytes + value.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  AppendVarint(out, lineage_bytes);
  lineage.SerializeTo(out);
  out.append(value.data(), value.size());
  return out;
}

FramedValue UnframeValue(std::string_view stored) {
  FramedValue out;
  if (stored.size() < sizeof(kFrameMagic) ||
      stored.compare(0, sizeof(kFrameMagic), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    out.value.assign(stored.data(), stored.size());
    return out;
  }
  Deserializer d(stored.substr(sizeof(kFrameMagic)));
  auto blob = d.ReadString();
  if (!blob.ok()) {
    out.value.assign(stored.data(), stored.size());
    return out;
  }
  auto lineage = Lineage::Deserialize(*blob);
  if (lineage.ok()) {
    out.lineage = std::move(*lineage);
  }
  const size_t consumed = stored.size() - d.Remaining();
  out.value.assign(stored.substr(consumed));
  return out;
}

}  // namespace antipode
