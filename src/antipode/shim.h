// Shim base interface. A shim interposes a datastore's client API to
// (1) propagate lineages alongside data values and (2) implement the
// datastore-specific `wait` visibility primitive barrier relies on (§6.3).
// Typed read/write methods live on the concrete shims, since their
// signatures track the underlying datastore's data model (Table 2 note).

#ifndef SRC_ANTIPODE_SHIM_H_
#define SRC_ANTIPODE_SHIM_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/antipode/lineage.h"
#include "src/antipode/visibility_cache.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/net/region.h"

namespace antipode {

// How long a lineage-wide wait may take: one embedded WaitPolicy — the same
// policy type BarrierOptions embeds, so the enforcement layer threads a
// single deadline vocabulary through every backend.
struct LineageWaitOptions {
  WaitPolicy wait;

  TimePoint EffectiveDeadline() const { return wait.EffectiveDeadline(); }
};

class Shim {
 public:
  virtual ~Shim() = default;

  // Name of the datastore this shim fronts; write identifiers carrying this
  // name resolve to this shim at barrier time.
  virtual const std::string& store_name() const = 0;

  // Blocks until `id` (or a newer version of its key) is visible at
  // `region`. Datastore-specific: most stores wait on a replication
  // watermark; DynamoDB's shim uses strongly consistent reads (§6.4).
  virtual Status Wait(Region region, const WriteId& id, Duration timeout) = 0;

  // Invoked exactly once with the outcome of an asynchronous wait.
  using WaitCallback = std::function<void(Status)>;

  // Asynchronous `wait`: `done` fires once `id` is visible at `region` (Ok)
  // or once `deadline` passes (DeadlineExceeded) — whichever comes first.
  // Parallel barriers fan one WaitAsync per dependency and gather, so every
  // dependency shares the same deadline instead of a dwindling per-dep budget.
  //
  // The default adapter runs the blocking Wait on a small shared thread pool,
  // so out-of-tree shims that only implement Wait keep working; shims whose
  // store exposes an event-driven watermark should override this to avoid
  // parking a thread per dependency.
  virtual void WaitAsync(Region region, const WriteId& id, TimePoint deadline,
                         WaitCallback done);

  // Batched asynchronous `wait`: `done` fires exactly once — Ok when every
  // id in `ids` is visible at `region`, or the first error (in practice
  // DeadlineExceeded) otherwise. Barriers group a store's missed dependencies
  // into one call so replicated-store shims can register them as a single
  // batch (one deadline timer, one completion) instead of a waiter fan-out.
  //
  // The default adapter fans out to WaitAsync and gathers, so every shim gets
  // the batched surface for free. `ids` only needs to stay valid for the
  // duration of the call (implementations copy what they keep).
  virtual void WaitManyAsync(Region region, std::span<const WriteId> ids, TimePoint deadline,
                             WaitCallback done);

  // Visibility-cache state of the store this shim fronts, or nullptr when the
  // store does not publish applies (foreign shims, caching disabled). The
  // barrier fast path probes this before creating any waiter.
  virtual std::shared_ptr<StoreVisibility> visibility() const { return nullptr; }

  // Whether a successful Wait/WaitAsync at `region` implies ⟨key, version⟩ is
  // visible in the region's local replica. True for watermark-style shims;
  // false for shims that satisfy `wait` another way (DynamoDB's strong reads
  // hit the authority, §6.4) — their wait completions must not feed the
  // cache, or dry-run probes (which are local-replica semantics) would lie.
  virtual bool wait_implies_visibility() const { return true; }

  // Non-blocking visibility probe. This is the one documented boolean
  // surface: barrier's dry-run mode and the consistency checker use it; every
  // blocking/async wait reports through Status instead.
  virtual bool IsVisible(Region region, const WriteId& id) = 0;

  // Whether this shim can serve stabilization-frontier waits — true for
  // watermark-style shims whose store publishes an HLC-stamped apply frontier
  // (StoreVisibility::FrontierHlc). The stable-frontier backend only issues
  // WaitFrontierAsync against shims that return true; dependencies on other
  // shims fall back to per-dependency waits.
  virtual bool SupportsFrontier() const { return false; }

  // Waits until `region`'s stabilization frontier covers `cut_hlc` — every
  // write this store stamped at or before the cut has applied there — or the
  // deadline passes. `done` fires exactly once. The default rejects with
  // Unimplemented; shims that return true from SupportsFrontier override it.
  virtual void WaitFrontierAsync(Region region, uint64_t cut_hlc, TimePoint deadline,
                                 WaitCallback done);

  // wait(ℒ): waits for every dependency of `lineage` that belongs to this
  // datastore. Deadline-based so the bound covers the whole set instead of
  // handing later dependencies a dwindling budget.
  Status WaitLineage(Region region, const Lineage& lineage,
                     const LineageWaitOptions& options = {});

  // Locality scope this shim stamps onto the dependencies it appends — the
  // store's replica footprint (DESIGN.md §13). All-ones ("may need
  // enforcement anywhere") is the safe default for shims that cannot tell;
  // watermark shims narrow it to the store's configured regions so barriers
  // skip ⟨store, region⟩ pairs the write can never be read from.
  virtual RegionMask region_scope() const { return kAllRegionsMask; }

  // The WriteId for a write this shim just performed, scope pre-stamped.
  WriteId MakeWriteId(std::string key, uint64_t version) const {
    return WriteId{store_name(), std::move(key), version, region_scope()};
  }

 protected:
  // Shared executor for blocking-wait adapters (default WaitAsync, polling
  // shims). Lazily constructed, intentionally leaked at process exit.
  static ThreadPool& BlockingWaitPool();
};

// Which enforcement strategy a barrier dispatches through (DESIGN.md §12).
enum class EnforcementBackendKind : uint8_t {
  // Resolve from the registry's `default_backend` (the per-call default, so
  // deployments flip strategy in one place).
  kInherit = 0,
  // Antipode's native strategy: per-dependency waits on replication
  // watermarks, grouped by store, gathered at one shared deadline.
  kLineage,
  // Okapi-style hybrid stabilization: compute one HLC cut covering the
  // lineage and wait for each target region's stable frontier to pass it —
  // O(1) wait metadata per barrier instead of O(|deps|) waits, at the cost
  // of waiting for unrelated writes below the cut.
  kStableFrontier,
};

std::string_view EnforcementBackendKindName(EnforcementBackendKind kind);

// ShimRegistry construction knobs (namespace-scope for the same
// complete-class-context reason as LineageWaitOptions).
struct ShimRegistryOptions {
  // Label carried on the registry's metrics ("default" for the process-wide
  // instance, "test"/"bench" for private ones).
  std::string name = "default";
  // Re-registering a store name: replace the shim silently (true, the
  // historical behaviour — deployments swap shims at startup) or reject with
  // AlreadyExists (false, catches accidental double registration in tests).
  bool allow_replace = true;
  // Strategy used by barriers whose BarrierOptions leave `backend` at
  // kInherit. kInherit here means kLineage (the native strategy).
  EnforcementBackendKind default_backend = EnforcementBackendKind::kLineage;
};

// Maps datastore names to shims so barrier can resolve the write identifiers
// in a lineage without end-to-end knowledge of the application.
class ShimRegistry {
 public:
  using Options = ShimRegistryOptions;

  ShimRegistry() = default;
  explicit ShimRegistry(Options options) : options_(std::move(options)) {}

  // A process-wide default registry.
  static ShimRegistry& Default();

  // Ok on success; AlreadyExists when the name is taken and the registry was
  // built with `allow_replace = false`. Callers that register at startup may
  // ignore the result (the default registry always replaces).
  Status Register(Shim* shim);
  void Unregister(const std::string& store_name);
  Shim* Lookup(const std::string& store_name) const;
  void Clear();
  std::vector<std::string> RegisteredStores() const;

  // Visits every registered shim (snapshot semantics: registrations that race
  // with the walk may or may not be visited). The stable-frontier backend
  // enumerates frontier-capable shims this way without copying names.
  void ForEach(const std::function<void(Shim*)>& fn) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Shim*> shims_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_SHIM_H_
