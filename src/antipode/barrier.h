// barrier(ℒ): blocks until every write identifier in the lineage is visible
// at the caller's region (paper §6.3). Variants: timeout, asynchronous
// (callback once dependencies are visible), and dry-run — the passive
// consistency checker that reports which dependencies *would* have blocked,
// used to discover barrier placements during development.
//
// Region-local by default: visibility is enforced only at the caller's
// replica (the geo-replication optimization of §6.3); `BarrierGlobal` waits
// at an explicit set of regions instead.
//
// How a barrier actually waits is a strategy decision: the entry points
// resolve an `EnforcementBackend` (src/antipode/enforcement.h) from
// `BarrierOptions::backend` / the registry default and delegate the wait plan
// to it. The native lineage backend groups dependencies by datastore and fans
// one batched wait per ⟨store, region⟩ at a single shared deadline — the
// barrier costs the *maximum* of the outstanding waits, never their sum. The
// stable-frontier backend waits on one HLC stabilization cut instead. See
// DESIGN.md "Barrier execution model" and §12 "Enforcement strategies".

#ifndef SRC_ANTIPODE_BARRIER_H_
#define SRC_ANTIPODE_BARRIER_H_

#include <functional>
#include <vector>

#include "src/antipode/enforcement.h"
#include "src/antipode/lineage.h"
#include "src/antipode/shim.h"
#include "src/common/thread_pool.h"

namespace antipode {

// Blocks until all of `lineage`'s dependencies are visible at `region`.
Status Barrier(const Lineage& lineage, Region region, const BarrierOptions& options = {});

// Barrier on the current request context's lineage (no-op when none).
Status BarrierCtx(Region region, const BarrierOptions& options = {});

// Enforces visibility at every region in `regions` (global enforcement — the
// expensive alternative the region-local optimization avoids). In parallel
// mode the fan-out covers every ⟨region, dependency⟩ pair at once.
Status BarrierGlobal(const Lineage& lineage, const std::vector<Region>& regions,
                     const BarrierOptions& options = {});

// Asynchronous barrier: returns immediately; `done` runs on `executor` once
// the dependencies are visible (or the deadline cancels the waits).
void BarrierAsync(Lineage lineage, Region region, ThreadPool* executor,
                  std::function<void(Status)> done, const BarrierOptions& options = {});

// Dry-run (§6.3): inspects visibility without blocking. `unmet` lists
// dependencies that are not yet visible at `region` — each one is a
// potential XCY violation a real barrier would have prevented; `unresolved`
// lists dependencies whose datastore has no registered shim. Deliberately
// backend-independent: the probe asks the shims' IsVisible directly, so the
// checker's verdicts mean the same thing whichever strategy enforces.
// `use_scope` mirrors BarrierOptions::use_scope: dependencies whose locality
// scope excludes `region` are vacuously met and are not probed at all.
struct BarrierDryRunResult {
  bool consistent = true;
  std::vector<WriteId> unmet;
  std::vector<WriteId> unresolved;
};
BarrierDryRunResult BarrierDryRun(const Lineage& lineage, Region region,
                                  ShimRegistry* registry = &ShimRegistry::Default(),
                                  bool use_cache = true, bool use_scope = true);

}  // namespace antipode

#endif  // SRC_ANTIPODE_BARRIER_H_
