// barrier(ℒ): blocks until every write identifier in the lineage is visible
// at the caller's region (paper §6.3). Variants: timeout, asynchronous
// (callback once dependencies are visible), and dry-run — the passive
// consistency checker that reports which dependencies *would* have blocked,
// used to discover barrier placements during development.
//
// Region-local by default: visibility is enforced only at the caller's
// replica (the geo-replication optimization of §6.3); `BarrierGlobal` waits
// at an explicit set of regions instead.
//
// Execution model: dependencies are grouped by datastore (they are contiguous
// in the lineage's sorted dependency vector), one asynchronous wait is issued
// per ⟨region, dependency⟩ — all sharing a single deadline computed once —
// and the results are gathered; the first error wins. The barrier therefore
// costs the *maximum* of the outstanding waits, never their sum, and a
// timeout bounds the whole set rather than handing later dependencies a
// dwindling budget. See DESIGN.md "Barrier execution model".

#ifndef SRC_ANTIPODE_BARRIER_H_
#define SRC_ANTIPODE_BARRIER_H_

#include <functional>
#include <vector>

#include "src/antipode/lineage.h"
#include "src/antipode/shim.h"
#include "src/common/thread_pool.h"

namespace antipode {

enum class BarrierWaitMode {
  // Group by store, fan every wait out concurrently, gather at one shared
  // deadline. The default.
  kParallel,
  // Wait for one dependency at a time in lineage order. Kept as the
  // measurable baseline (bench/micro_barrier) and for debugging; semantics
  // are identical, latency and timeout sharpness are worse.
  kSequential,
};

struct BarrierOptions {
  // Relative budget for the whole barrier (every dependency shares it).
  Duration timeout = Duration::max();
  // Absolute budget; preferred when several waits must share one deadline
  // computed once by the caller. When both are set the earlier bound wins.
  TimePoint deadline = TimePoint::max();
  ShimRegistry* registry = &ShimRegistry::Default();
  // Dependencies on datastores without a registered shim: skip them (true,
  // the incremental-deployment default) or fail the barrier (false).
  bool ignore_unknown_stores = true;
  BarrierWaitMode wait_mode = BarrierWaitMode::kParallel;
  // Inspect instead of enforce: return immediately with Ok when every
  // dependency is already visible, FailedPrecondition (listing the unmet
  // dependencies) otherwise. Never blocks. `BarrierDryRun` is the richer
  // structured form of the same probe.
  bool dry_run = false;
  // Probe the visibility cache before issuing any wait: dependencies the
  // cache proves visible are skipped, and a barrier whose dependencies all
  // hit returns Ok with zero thread-pool, timer, or registry traffic
  // (`barrier.zero_wait`). Sound because visibility is monotone — a hit can
  // never be invalidated (DESIGN.md §8). Off is the measurable baseline.
  bool use_cache = true;

  // The single absolute bound every wait in the barrier shares: the earlier
  // of `deadline` and now + `timeout`.
  TimePoint EffectiveDeadline() const {
    const TimePoint from_timeout = DeadlineAfter(timeout);
    return deadline < from_timeout ? deadline : from_timeout;
  }
};

// Blocks until all of `lineage`'s dependencies are visible at `region`.
Status Barrier(const Lineage& lineage, Region region, const BarrierOptions& options = {});

// Barrier on the current request context's lineage (no-op when none).
Status BarrierCtx(Region region, const BarrierOptions& options = {});

// Enforces visibility at every region in `regions` (global enforcement — the
// expensive alternative the region-local optimization avoids). In parallel
// mode the fan-out covers every ⟨region, dependency⟩ pair at once.
Status BarrierGlobal(const Lineage& lineage, const std::vector<Region>& regions,
                     const BarrierOptions& options = {});

// Asynchronous barrier: returns immediately; `done` runs on `executor` once
// the dependencies are visible (or the deadline cancels the waits).
void BarrierAsync(Lineage lineage, Region region, ThreadPool* executor,
                  std::function<void(Status)> done, const BarrierOptions& options = {});

// Dry-run (§6.3): inspects visibility without blocking. `unmet` lists
// dependencies that are not yet visible at `region` — each one is a
// potential XCY violation a real barrier would have prevented; `unresolved`
// lists dependencies whose datastore has no registered shim.
struct BarrierDryRunResult {
  bool consistent = true;
  std::vector<WriteId> unmet;
  std::vector<WriteId> unresolved;
};
BarrierDryRunResult BarrierDryRun(const Lineage& lineage, Region region,
                                  ShimRegistry* registry = &ShimRegistry::Default(),
                                  bool use_cache = true);

}  // namespace antipode

#endif  // SRC_ANTIPODE_BARRIER_H_
