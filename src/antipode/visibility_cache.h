// Process-wide visibility cache: the read-mostly fast path in front of every
// barrier wait (DESIGN.md §8). Visibility is monotone — once ⟨store, key,
// version⟩ is visible at a region it stays visible — so a cache hit can never
// be invalidated, which makes this the rare cache with no coherence protocol:
// population only ever raises versions and watermarks.
//
// Two-level structure per store:
//   * a lock-striped per-key table mapping key → (latest write, highest
//     version known visible per region), populated event-driven from
//     ReplicatedStore apply notifications and from completed shim waits;
//   * a per-⟨store, region⟩ apply low-watermark over the store's write
//     sequence numbers: W(r) = highest S such that every write with seq ≤ S
//     has applied at r. One atomic load covers every old write of a key whose
//     latest write sits at or below the watermark.
//
// The watermark tracker doubles as the *stabilization frontier* feed for the
// stable-frontier enforcement backend (DESIGN.md §12): each apply carries the
// write's HLC stamp, so alongside W(r) the tracker publishes F(r) — the stamp
// of the newest write in the applied contiguous prefix. Stamps are monotone
// in sequence numbers (ReplicatedStore stamps both under one lock), so
// F(r) ≥ c proves every write stamped ≤ c has applied at r. `AwaitFrontier`
// registers event-driven waiters on that condition; they are woken from the
// same NoteApply calls that advance the watermark.
//
// A lookup is a striped-shard probe plus one atomic watermark load, with no
// allocation. A miss is always safe: the caller falls back to the real wait,
// which repopulates the cache on completion.
//
// The min-across-regions watermark additionally powers lineage pruning
// (Lineage::PruneVisibleEverywhere): a dependency visible at every region of
// its store can never block any barrier anywhere, so baggage can shed it.
//
// Layering: this header depends only on common + net, so the store layer can
// publish apply notifications without a dependency cycle (the sources live in
// src/antipode/ but compile into the `antipode_visibility` library that both
// antipode_store and antipode_core link).

#ifndef SRC_ANTIPODE_VISIBILITY_CACHE_H_
#define SRC_ANTIPODE_VISIBILITY_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/net/region.h"

namespace antipode {

// Visibility state of one registered store. Thread-safe; all methods may race
// freely with each other. Writers (NoteApply/NoteVisible) only ever raise
// versions and watermarks, so readers can combine the per-key probe with the
// watermark load without ordering hazards: a stale read yields a miss, never
// a false hit.
class StoreVisibility {
 public:
  StoreVisibility(std::string name, const std::vector<Region>& regions);

  const std::string& name() const { return name_; }
  bool TracksRegion(Region region) const { return tracked_[RegionIndex(region)]; }
  // The store's replica footprint as a bitmask — what lineage pruning narrows
  // dependency locality scopes against (a region outside the footprint can
  // never read this store's writes, so it never needs enforcement).
  RegionMask tracked_mask() const { return tracked_mask_; }

  // A write was stamped at its origin: `seq` is the store's dense write
  // sequence number, `hlc` its hybrid-logical-clock stamp. Called by
  // ReplicatedStore::Put under the same lock that assigns both (so issued
  // order equals stamp order — the caught-up rule below depends on it).
  void NoteIssued(uint64_t seq, uint64_t hlc);

  // An apply notification: the write ⟨key, version⟩ with per-store sequence
  // number `seq` and HLC stamp `hlc` became visible at `region`. Called by
  // ReplicatedStore for every apply (local and replicated), exactly once per
  // ⟨seq, region⟩. `hlc` may be 0 for stores that do not stamp writes; the
  // watermark still advances, only the frontier stays at 0.
  void NoteApply(Region region, std::string_view key, uint64_t version, uint64_t seq,
                 uint64_t hlc = 0);

  // A completed wait observed ⟨key, version⟩ visible at `region` (sequence
  // number unknown — e.g. a foreign shim's wait). Feeds only the per-key
  // table, never the watermark.
  void NoteVisible(Region region, std::string_view key, uint64_t version);

  // True iff ⟨key, version⟩ is known visible at `region`. False means
  // "unknown", not "invisible" — callers fall back to the real wait/probe.
  bool IsVisible(Region region, std::string_view key, uint64_t version) const;

  // True iff ⟨key, version⟩ is known visible at every region this store
  // replicates to — the lineage-pruning soundness condition.
  bool IsVisibleEverywhere(std::string_view key, uint64_t version) const;

  // Apply low-watermark of `region`: every write with seq ≤ watermark has
  // applied there. 0 until the first in-order apply.
  uint64_t watermark(Region region) const {
    return watermarks_[RegionIndex(region)].load(std::memory_order_acquire);
  }

  // min over tracked regions — the pruning bound.
  uint64_t MinWatermark() const;

  // --- stabilization frontier (stable-frontier backend feed) ---------------

  // F(region): HLC stamp of the newest write in the region's applied
  // contiguous prefix. Every write stamped ≤ F(region) has applied there
  // (stamps are monotone in seq). 0 until the first stamped in-order apply.
  uint64_t FrontierHlc(Region region) const {
    return frontiers_[RegionIndex(region)].load(std::memory_order_acquire);
  }

  // Highest ⟨seq, hlc⟩ this store has stamped (NoteIssued). 0 before the
  // first stamped write.
  uint64_t LatestIssuedSeq() const { return issued_seq_.load(std::memory_order_acquire); }
  uint64_t LatestIssuedHlc() const { return issued_hlc_.load(std::memory_order_acquire); }

  // True iff this store cannot be hiding a write stamped ≤ `cut` from
  // `region`: either the frontier has passed the cut, or the region has
  // applied everything the store ever issued (the caught-up rule — an idle
  // store must not stall global stabilization; any write it issues later is
  // stamped after the cut because stamps are process-wide monotone).
  bool FrontierCovers(Region region, uint64_t cut) const {
    return FrontierHlc(region) >= cut || watermark(region) >= LatestIssuedSeq();
  }

  // HLC stamp of the key's newest *stamp-known* write, provided that write
  // supersedes `version` (per-key versions are monotone, so its apply implies
  // the dependency's visibility). 0 when unknown — the caller falls back to a
  // per-dependency wait.
  uint64_t KnownHlc(std::string_view key, uint64_t version) const;

  // Event-driven wait on FrontierCovers(region, cut). Registers a waiter woken
  // by the NoteApply that first satisfies the condition; returns nullptr (and
  // leaves `cb` unconsumed) when already covered. The caller arms any deadline
  // timer itself: the first of apply-wake and timer to flip `fired` owns `cb`.
  struct FrontierWaiter {
    uint64_t cut = 0;
    std::atomic<bool> fired{false};
    std::function<void(Status)> cb;
  };
  std::shared_ptr<FrontierWaiter> AwaitFrontier(Region region, uint64_t cut,
                                                std::function<void(Status)>&& cb);

  // Frontier waiters currently registered at `region` (tests).
  size_t FrontierWaiterCount(Region region) const;

  // Number of keys resident in the per-key table (tests/benches).
  size_t KeyCount() const;

 private:
  struct KeyEntry {
    // Highest version of the key ever notified, and the sequence number and
    // HLC stamp of the write that produced it (0 when only NoteVisible saw
    // it). Paired updates happen under the shard lock.
    uint64_t latest_version = 0;
    uint64_t latest_seq = 0;
    uint64_t latest_hlc = 0;
    // Highest version directly observed visible per region.
    std::array<uint64_t, kNumRegions> visible{};
  };

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, KeyEntry, StringHash, StringEq> keys;
  };

  // Tracks watermark advance for one region: seqs arrive out of order (per
  // key applies are ordered, cross-key they race), so the contiguous prefix
  // is recovered through a pending seq → hlc map. Frontier waiters live here
  // too — they are woken by the same advance that could satisfy them.
  struct SeqTracker {
    std::mutex mu;
    uint64_t next_expected = 1;
    std::map<uint64_t, uint64_t> pending;
    std::vector<std::shared_ptr<FrontierWaiter>> frontier_waiters;
  };

  // 64-way striping (up from 16): NoteApply runs on every apply of every
  // store publishing here, so the per-key table is the cache's hottest map.
  static constexpr size_t kNumShards = 64;

  Shard& ShardFor(std::string_view key) const {
    return shards_[StringHash{}(key) % kNumShards];
  }

  std::string name_;
  std::array<bool, kNumRegions> tracked_{};
  RegionMask tracked_mask_ = 0;
  mutable std::array<Shard, kNumShards> shards_;
  mutable std::array<SeqTracker, kNumRegions> trackers_;
  std::array<std::atomic<uint64_t>, kNumRegions> watermarks_{};
  std::array<std::atomic<uint64_t>, kNumRegions> frontiers_{};
  std::atomic<uint64_t> issued_seq_{0};
  std::atomic<uint64_t> issued_hlc_{0};
};

// Registry of per-store visibility state, keyed by store name. Store names
// are global identifiers in Antipode (lineage dependencies reference stores
// by name), so one process-wide instance serves every barrier; private
// instances exist for benches that model synthetic stores.
//
// The registry is partitioned by region-group (DESIGN.md §13): a store lives
// in the bucket of its home group (RegionGroupOf of its replica footprint),
// so registrations and name lookups of one locality group never contend with
// another's — a US-group deployment churning stores cannot serialize SG-group
// pruning probes. Find does not know a store's footprint, so it probes the
// (few, uncontended) buckets in order.
class VisibilityCache {
 public:
  static VisibilityCache& Default();

  VisibilityCache() = default;
  VisibilityCache(const VisibilityCache&) = delete;
  VisibilityCache& operator=(const VisibilityCache&) = delete;

  // Registers (or re-registers) a store. Always starts cold: a re-created
  // store must never inherit visibility facts from a previous same-named
  // instance whose version counters restarted.
  std::shared_ptr<StoreVisibility> Register(const std::string& name,
                                            const std::vector<Region>& regions);

  // Removes `state` if it is still the registered instance for its name (a
  // newer same-named registration is left untouched).
  void Unregister(const std::shared_ptr<StoreVisibility>& state);

  // Current state for `name`; nullptr when unknown. Used by lineage pruning,
  // which resolves stores by name; barriers reach the state through their
  // shim instead (Shim::visibility()).
  std::shared_ptr<StoreVisibility> Find(std::string_view name) const;

  void Clear();
  size_t Size() const;

 private:
  struct Bucket {
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<StoreVisibility>, std::less<>> stores;
  };

  mutable std::array<Bucket, kNumRegionGroups> buckets_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_VISIBILITY_CACHE_H_
