// Umbrella header: the Antipode public API.
//
//   Core API     barrier(ℒ)                     src/antipode/barrier.h
//   Shim API     write/read/wait per datastore  src/antipode/*_shim.h
//   Lineage API  root/stop/append/remove/
//                transfer/serialize             src/antipode/lineage_api.h
//
// Typical integration (paper §6): create a shim per datastore, register it
// with the ShimRegistry, call LineageApi::Root() at the edge of each request,
// use the shims' *Ctx methods instead of raw datastore calls, and place
// BarrierCtx where visibility must be enforced.

#ifndef SRC_ANTIPODE_ANTIPODE_H_
#define SRC_ANTIPODE_ANTIPODE_H_

#include "src/antipode/barrier.h"
#include "src/antipode/doc_shim.h"
#include "src/antipode/dynamo_shim.h"
#include "src/antipode/checker.h"
#include "src/antipode/framing.h"
#include "src/antipode/history_checker.h"
#include "src/antipode/kv_shim.h"
#include "src/antipode/lineage.h"
#include "src/antipode/lineage_api.h"
#include "src/antipode/object_shim.h"
#include "src/antipode/queue_shim.h"
#include "src/antipode/session.h"
#include "src/antipode/shim.h"
#include "src/antipode/sql_shim.h"
#include "src/antipode/write_id.h"

#endif  // SRC_ANTIPODE_ANTIPODE_H_
