#include "src/antipode/barrier.h"

#include "src/antipode/lineage_api.h"

namespace antipode {
namespace {

Duration RemainingBudget(TimePoint deadline) {
  if (deadline == TimePoint::max()) {
    return Duration::max();
  }
  const TimePoint now = SystemClock::Instance().Now();
  if (now >= deadline) {
    return Duration::zero();
  }
  return std::chrono::duration_cast<Duration>(deadline - now);
}

}  // namespace

Status Barrier(const Lineage& lineage, Region region, const BarrierOptions& options) {
  const TimePoint deadline = options.timeout == Duration::max()
                                 ? TimePoint::max()
                                 : SystemClock::Instance().Now() + options.timeout;
  for (const auto& dep : lineage.deps()) {
    Shim* shim = options.registry->Lookup(dep.store);
    if (shim == nullptr) {
      if (options.ignore_unknown_stores) {
        continue;
      }
      return Status::FailedPrecondition("no shim registered for store: " + dep.store);
    }
    const Duration budget = RemainingBudget(deadline);
    if (deadline != TimePoint::max() && budget == Duration::zero()) {
      return Status::DeadlineExceeded("barrier deadline before " + dep.ToString());
    }
    Status status = shim->Wait(region, dep, budget);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

Status BarrierCtx(Region region, const BarrierOptions& options) {
  auto lineage = LineageApi::Current();
  if (!lineage.has_value()) {
    return Status::Ok();
  }
  return Barrier(*lineage, region, options);
}

Status BarrierGlobal(const Lineage& lineage, const std::vector<Region>& regions,
                     const BarrierOptions& options) {
  for (Region region : regions) {
    Status status = Barrier(lineage, region, options);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

void BarrierAsync(Lineage lineage, Region region, ThreadPool* executor,
                  std::function<void(Status)> done, const BarrierOptions& options) {
  executor->Submit([lineage = std::move(lineage), region, done = std::move(done), options] {
    done(Barrier(lineage, region, options));
  });
}

BarrierDryRunResult BarrierDryRun(const Lineage& lineage, Region region,
                                  ShimRegistry* registry) {
  BarrierDryRunResult result;
  for (const auto& dep : lineage.deps()) {
    Shim* shim = registry->Lookup(dep.store);
    if (shim == nullptr) {
      result.unresolved.push_back(dep);
      result.consistent = false;
      continue;
    }
    if (!shim->IsVisible(region, dep)) {
      result.unmet.push_back(dep);
      result.consistent = false;
    }
  }
  return result;
}

}  // namespace antipode
