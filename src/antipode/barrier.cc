#include "src/antipode/barrier.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

#include "src/antipode/enforcement_internal.h"
#include "src/antipode/lineage_api.h"
#include "src/common/property.h"
#include "src/common/sim.h"
#include "src/obs/metrics.h"

namespace antipode {
namespace {

using enforcement_internal::CacheCounters;
using enforcement_internal::CountBackendDispatch;

// Non-blocking dry-run folded into the standard barrier entry points: maps
// the structured BarrierDryRunResult onto the Status vocabulary.
Status DryRunStatus(const Lineage& lineage, Region region, const BarrierOptions& options) {
  const BarrierDryRunResult result =
      BarrierDryRun(lineage, region, options.registry, options.use_cache, options.use_scope);
  if (!result.unresolved.empty() && !options.ignore_unknown_stores) {
    return Status::FailedPrecondition("no shim registered for store: " +
                                      result.unresolved.front().store);
  }
  if (result.unmet.empty()) {
    return Status::Ok();
  }
  std::string detail = "barrier dry-run: unmet dependencies:";
  for (const auto& dep : result.unmet) {
    detail += " " + dep.ToString();
  }
  return Status::FailedPrecondition(std::move(detail));
}

// Blocking core shared by Barrier/BarrierGlobal (and BarrierAsync's
// inline-blocking bounce): latches on the backend's completion, then records
// the enforcement memo when the backend proved it sound.
Status RunBlocking(EnforcementBackend& backend, const Lineage& lineage,
                   const std::vector<Region>& regions, const BarrierOptions& options) {
  const TimePoint deadline = options.EffectiveDeadline();
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::Ok();
  };
  auto latch = std::make_shared<Latch>();
  bool memoizable = false;
  Status launched = backend.Launch(
      lineage, regions, deadline, options,
      [latch](Status status) {
        {
          std::lock_guard<std::mutex> lock(latch->mu);
          latch->status = std::move(status);
          latch->done = true;
        }
        latch->cv.notify_one();
      },
      &memoizable);
  if (!launched.ok()) {
    return launched;
  }
  if (SimScheduler* sim = SimScheduler::Active()) {
    // Cooperative latch: pump the simulation until the backend completes.
    // Backends bound their own completion by `deadline`, so an unbounded pump
    // here terminates whenever the threaded path would; a quiescent heap with
    // no completion is a genuine enforcement deadlock, surfaced as such.
    const bool completed = sim->RunUntil(
        [latch] {
          std::lock_guard<std::mutex> lock(latch->mu);
          return latch->done;
        },
        TimePoint::max());
    if (!completed) {
      return Status::DeadlineExceeded("barrier never completed (simulation quiescent)");
    }
  } else {
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->done; });
  }
  std::lock_guard<std::mutex> status_lock(latch->mu);
  if (latch->status.ok() && memoizable && options.use_cache) {
    for (Region region : regions) {
      lineage.MarkEnforced(region);
    }
  }
  return latch->status;
}

EnforcementBackend& DispatchBackend(const BarrierOptions& options) {
  EnforcementBackend& backend = ResolveBackend(options);
  CountBackendDispatch(&backend == &FrontierBackend() ? EnforcementBackendKind::kStableFrontier
                                                      : EnforcementBackendKind::kLineage);
  return backend;
}

}  // namespace

Status Barrier(const Lineage& lineage, Region region, const BarrierOptions& options) {
  if (options.dry_run) {
    return DryRunStatus(lineage, region, options);
  }
  return RunBlocking(DispatchBackend(options), lineage, {region}, options);
}

Status BarrierCtx(Region region, const BarrierOptions& options) {
  auto lineage = LineageApi::Current();
  if (!lineage.has_value()) {
    return Status::Ok();
  }
  return Barrier(*lineage, region, options);
}

Status BarrierGlobal(const Lineage& lineage, const std::vector<Region>& regions,
                     const BarrierOptions& options) {
  if (options.dry_run) {
    for (Region region : regions) {
      Status status = DryRunStatus(lineage, region, options);
      if (!status.ok()) {
        return status;
      }
    }
    return Status::Ok();
  }
  return RunBlocking(DispatchBackend(options), lineage, regions, options);
}

void BarrierAsync(Lineage lineage, Region region, ThreadPool* executor,
                  std::function<void(Status)> done, const BarrierOptions& options) {
  if (options.dry_run) {
    Status status = DryRunStatus(lineage, region, options);
    if (!executor->Submit([done, status] { done(status); })) {
      done(status);
    }
    return;
  }
  EnforcementBackend& backend = DispatchBackend(options);
  if (backend.MayBlockInline(options)) {
    // Inline-blocking strategies (sequential lineage mode) run whole on the
    // executor so the caller never parks.
    executor->Submit([&backend, lineage = std::move(lineage), region, done = std::move(done),
                      options] { done(RunBlocking(backend, lineage, {region}, options)); });
    return;
  }
  // Event-driven: no thread blocks while dependencies replicate; the gather
  // bounces the result onto `executor` so `done` never runs on a timer or
  // apply thread. A finite deadline cancels outstanding waits, so `done` is
  // guaranteed to fire by then even if a dependency never arrives.
  const TimePoint deadline = options.EffectiveDeadline();
  auto finish = std::make_shared<std::function<void(Status)>>(
      [executor, done = std::move(done)](Status status) {
        if (!executor->Submit([done, status] { done(status); })) {
          done(status);  // executor shut down: deliver inline
        }
      });
  Status launched =
      backend.Launch(lineage, {region}, deadline, options,
                     [finish](Status status) { (*finish)(std::move(status)); }, nullptr);
  if (!launched.ok()) {
    (*finish)(launched);
  }
}

BarrierDryRunResult BarrierDryRun(const Lineage& lineage, Region region, ShimRegistry* registry,
                                  bool use_cache, bool use_scope) {
  BarrierDryRunResult result;
  if (use_cache && lineage.enforced_at(region)) {
    // A past barrier proved every dependency visible in this region's local
    // replicas; IsVisible shares that semantics, so the probes would all pass.
    if (PropertyRegistry::Instance().deep_checks()) {
      // Re-probe what the memo claims: a false-positive memo here would let
      // a barrier skip a wait it still owed. Visibility is monotone, so any
      // probe the original barrier passed must still pass.
      for (const auto& dep : lineage.deps()) {
        if (use_scope && (dep.scope & RegionBit(region)) == 0) {
          continue;
        }
        Shim* shim = registry->Lookup(dep.store);
        ANTIPODE_ALWAYS("barrier.memo_sound", shim == nullptr || shim->IsVisible(region, dep));
      }
    }
    if (!lineage.Empty()) {
      CacheCounters().hit->Increment(lineage.Size());
    }
    return result;
  }
  uint64_t scoped_skips = 0;
  for (const auto& dep : lineage.deps()) {
    // A dependency whose locality scope excludes this region is vacuously met
    // here — the checker does not even resolve its shim, mirroring the
    // enforcing backends.
    if (use_scope && (dep.scope & RegionBit(region)) == 0) {
      ++scoped_skips;
      continue;
    }
    Shim* shim = registry->Lookup(dep.store);
    if (shim == nullptr) {
      result.unresolved.push_back(dep);
      result.consistent = false;
      continue;
    }
    std::shared_ptr<StoreVisibility> vis = use_cache ? shim->visibility() : nullptr;
    if (vis != nullptr && vis->IsVisible(region, dep.key, dep.version)) {
      CacheCounters().hit->Increment();
      continue;
    }
    if (use_cache) {
      CacheCounters().miss->Increment();
    }
    if (!shim->IsVisible(region, dep)) {
      result.unmet.push_back(dep);
      result.consistent = false;
      continue;
    }
    // IsVisible is local-replica semantics for every shim (dynamo included),
    // so a positive probe can always feed the cache.
    if (vis != nullptr) {
      vis->NoteVisible(region, dep.key, dep.version);
    }
  }
  enforcement_internal::CountScopedSkips(scoped_skips);
  // Consistent ⇒ every dependency resolved and probed visible locally, which
  // is exactly the enforcement memo's meaning.
  if (use_cache && result.consistent) {
    lineage.MarkEnforced(region);
  }
  return result;
}

}  // namespace antipode
