#include "src/antipode/barrier.h"

#include <condition_variable>
#include <memory>
#include <mutex>

#include "src/antipode/lineage_api.h"

namespace antipode {
namespace {

// Join point for a fan-out of asynchronous waits: counts completions, keeps
// the first error, fires `done` exactly once when the last wait lands.
class WaitGather {
 public:
  WaitGather(size_t outstanding, std::function<void(Status)> done)
      : outstanding_(outstanding), done_(std::move(done)) {}

  void Complete(const Status& status) {
    std::function<void(Status)> fire;
    Status result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!status.ok() && first_error_.ok()) {
        first_error_ = status;
      }
      if (--outstanding_ > 0) {
        return;
      }
      fire = std::move(done_);
      result = first_error_;
    }
    fire(result);
  }

 private:
  std::mutex mu_;
  size_t outstanding_;
  Status first_error_ = Status::Ok();
  std::function<void(Status)> done_;
};

// Fans one shim WaitAsync per ⟨region, dependency⟩, all sharing `deadline`.
// Returns non-Ok (and never calls `done`) only for the fail-fast path —
// a dependency on an unregistered store under strict resolution. Otherwise
// `done` fires exactly once, possibly synchronously for already-visible sets.
Status LaunchBarrierWaits(const Lineage& lineage, const std::vector<Region>& regions,
                          TimePoint deadline, const BarrierOptions& options,
                          std::function<void(Status)> done) {
  // Dependencies are sorted, so each store's run is contiguous: one registry
  // lookup per store, not per dependency.
  std::vector<std::pair<Shim*, const WriteId*>> plan;
  plan.reserve(lineage.Size());
  Shim* shim = nullptr;
  const std::string* current_store = nullptr;
  for (const auto& dep : lineage.deps()) {
    if (current_store == nullptr || dep.store != *current_store) {
      current_store = &dep.store;
      shim = options.registry->Lookup(dep.store);
      if (shim == nullptr && !options.ignore_unknown_stores) {
        return Status::FailedPrecondition("no shim registered for store: " + dep.store);
      }
    }
    if (shim != nullptr) {
      plan.emplace_back(shim, &dep);
    }
  }

  const size_t waits = plan.size() * regions.size();
  if (waits == 0) {
    done(Status::Ok());
    return Status::Ok();
  }
  auto gather = std::make_shared<WaitGather>(waits, std::move(done));
  for (Region region : regions) {
    for (const auto& [wait_shim, dep] : plan) {
      wait_shim->WaitAsync(region, *dep, deadline,
                           [gather](Status status) { gather->Complete(status); });
    }
  }
  return Status::Ok();
}

// Blocks the calling thread on the gathered fan-out.
Status BarrierParallel(const Lineage& lineage, const std::vector<Region>& regions,
                       TimePoint deadline, const BarrierOptions& options) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::Ok();
  };
  auto latch = std::make_shared<Latch>();
  Status launched = LaunchBarrierWaits(lineage, regions, deadline, options, [latch](Status status) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->status = std::move(status);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  if (!launched.ok()) {
    return launched;
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return latch->status;
}

// The legacy one-dependency-at-a-time loop, kept as a baseline. Still uses
// the single shared deadline: each wait gets the budget remaining until it.
Status BarrierSequential(const Lineage& lineage, Region region, TimePoint deadline,
                         const BarrierOptions& options) {
  for (const auto& dep : lineage.deps()) {
    Shim* shim = options.registry->Lookup(dep.store);
    if (shim == nullptr) {
      if (options.ignore_unknown_stores) {
        continue;
      }
      return Status::FailedPrecondition("no shim registered for store: " + dep.store);
    }
    const Duration budget = RemainingBudget(deadline);
    if (deadline != TimePoint::max() && budget == Duration::zero()) {
      return Status::DeadlineExceeded("barrier deadline before " + dep.ToString());
    }
    Status status = shim->Wait(region, dep, budget);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

}  // namespace

Status Barrier(const Lineage& lineage, Region region, const BarrierOptions& options) {
  const TimePoint deadline = DeadlineAfter(options.timeout);
  if (options.wait_mode == BarrierWaitMode::kSequential) {
    return BarrierSequential(lineage, region, deadline, options);
  }
  return BarrierParallel(lineage, {region}, deadline, options);
}

Status BarrierCtx(Region region, const BarrierOptions& options) {
  auto lineage = LineageApi::Current();
  if (!lineage.has_value()) {
    return Status::Ok();
  }
  return Barrier(*lineage, region, options);
}

Status BarrierGlobal(const Lineage& lineage, const std::vector<Region>& regions,
                     const BarrierOptions& options) {
  const TimePoint deadline = DeadlineAfter(options.timeout);
  if (options.wait_mode == BarrierWaitMode::kSequential) {
    for (Region region : regions) {
      Status status = BarrierSequential(lineage, region, deadline, options);
      if (!status.ok()) {
        return status;
      }
    }
    return Status::Ok();
  }
  return BarrierParallel(lineage, regions, deadline, options);
}

void BarrierAsync(Lineage lineage, Region region, ThreadPool* executor,
                  std::function<void(Status)> done, const BarrierOptions& options) {
  const TimePoint deadline = DeadlineAfter(options.timeout);
  if (options.wait_mode == BarrierWaitMode::kSequential) {
    executor->Submit([lineage = std::move(lineage), region, deadline, done = std::move(done),
                      options] { done(BarrierSequential(lineage, region, deadline, options)); });
    return;
  }
  // Event-driven: no thread blocks while dependencies replicate; the gather
  // bounces the result onto `executor` so `done` never runs on a timer or
  // apply thread. A finite deadline cancels outstanding waits, so `done` is
  // guaranteed to fire by then even if a dependency never arrives.
  auto finish = std::make_shared<std::function<void(Status)>>(
      [executor, done = std::move(done)](Status status) {
        if (!executor->Submit([done, status] { done(status); })) {
          done(status);  // executor shut down: deliver inline
        }
      });
  Status launched = LaunchBarrierWaits(lineage, {region}, deadline, options,
                                       [finish](Status status) { (*finish)(std::move(status)); });
  if (!launched.ok()) {
    (*finish)(launched);
  }
}

BarrierDryRunResult BarrierDryRun(const Lineage& lineage, Region region,
                                  ShimRegistry* registry) {
  BarrierDryRunResult result;
  for (const auto& dep : lineage.deps()) {
    Shim* shim = registry->Lookup(dep.store);
    if (shim == nullptr) {
      result.unresolved.push_back(dep);
      result.consistent = false;
      continue;
    }
    if (!shim->IsVisible(region, dep)) {
      result.unmet.push_back(dep);
      result.consistent = false;
    }
  }
  return result;
}

}  // namespace antipode
