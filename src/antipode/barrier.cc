#include "src/antipode/barrier.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

#include "src/antipode/lineage_api.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace antipode {
namespace {

// Join point for a fan-out of asynchronous waits: counts completions, keeps
// the first error, fires `done` exactly once when the last wait lands.
class WaitGather {
 public:
  WaitGather(size_t outstanding, std::function<void(Status)> done)
      : outstanding_(outstanding), done_(std::move(done)) {}

  void Complete(const Status& status) {
    std::function<void(Status)> fire;
    Status result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!status.ok() && first_error_.ok()) {
        first_error_ = status;
      }
      if (--outstanding_ > 0) {
        return;
      }
      fire = std::move(done_);
      result = first_error_;
    }
    fire(result);
  }

 private:
  std::mutex mu_;
  size_t outstanding_;
  Status first_error_ = Status::Ok();
  std::function<void(Status)> done_;
};

// Per-barrier trace bookkeeping shared by the per-dependency wait callbacks
// (which run on apply/timer threads) and the completion wrapper. Tracks which
// dependency stalled the longest — the barrier's critical path.
struct BarrierTraceState {
  uint64_t trace_id = 0;
  uint64_t barrier_span_id = 0;
  uint64_t parent_span_id = 0;
  TimePoint start{};
  Region region = Region::kLocal;

  std::mutex mu;
  double max_stall_ms = -1.0;
  std::string critical_store;
  std::string critical_key;

  void Observe(double stall_ms, const WriteId& dep) {
    std::lock_guard<std::mutex> lock(mu);
    if (stall_ms > max_stall_ms) {
      max_stall_ms = stall_ms;
      critical_store = dep.store;
      critical_key = dep.key;
    }
  }
};

// Opens trace state for one barrier invocation when tracing is on and the
// caller's request is part of a sampled trace; nullptr otherwise (the common,
// free case). Barrier spans are assembled manually because their waits start
// and finish on different threads.
std::shared_ptr<BarrierTraceState> MaybeStartBarrierTrace(Region region) {
  Tracer& tracer = Tracer::Default();
  if (!tracer.enabled()) {
    return nullptr;
  }
  const SpanContext parent = CurrentSpanContext();
  if (!parent.valid()) {
    return nullptr;
  }
  auto trace = std::make_shared<BarrierTraceState>();
  trace->trace_id = parent.trace_id;
  trace->barrier_span_id = tracer.NextSpanId();
  trace->parent_span_id = parent.span_id;
  trace->start = SystemClock::Instance().Now();
  trace->region = region;
  return trace;
}

// Emits the "antipode/barrier" parent span once the fan-out has gathered,
// annotated with the dependency count, outcome, and critical path.
void FinishBarrierTrace(const BarrierTraceState& trace, size_t num_deps, const char* mode,
                        const Status& status) {
  TraceEvent event;
  event.name = "antipode/barrier";
  event.category = "barrier";
  event.trace_id = trace.trace_id;
  event.span_id = trace.barrier_span_id;
  event.parent_span_id = trace.parent_span_id;
  event.region = trace.region;
  event.start = trace.start;
  event.end = SystemClock::Instance().Now();
  event.annotations.emplace_back("deps", std::to_string(num_deps));
  event.annotations.emplace_back("mode", mode);
  event.annotations.emplace_back("status", std::string(StatusCodeName(status.code())));
  if (trace.max_stall_ms >= 0.0) {
    event.annotations.emplace_back("critical_path_store", trace.critical_store);
    event.annotations.emplace_back("critical_path_key", trace.critical_key);
    event.annotations.emplace_back("critical_stall_model_ms",
                                   std::to_string(trace.max_stall_ms));
  }
  Tracer::Default().Record(std::move(event));
}

// Emits one "barrier/wait" child span for a finished dependency wait.
void RecordWaitSpan(const BarrierTraceState& trace, const WriteId& dep, Region region,
                    TimePoint end, double stall_ms, const Status& status) {
  TraceEvent event;
  event.name = "barrier/wait";
  event.category = "barrier";
  event.trace_id = trace.trace_id;
  event.span_id = Tracer::Default().NextSpanId();
  event.parent_span_id = trace.barrier_span_id;
  event.region = region;
  event.start = trace.start;
  event.end = end;
  event.annotations.emplace_back("store", dep.store);
  event.annotations.emplace_back("key", dep.key);
  event.annotations.emplace_back("version", std::to_string(dep.version));
  event.annotations.emplace_back("stall_model_ms", std::to_string(stall_ms));
  event.annotations.emplace_back("status", std::string(StatusCodeName(status.code())));
  Tracer::Default().Record(std::move(event));
}

// Barrier throughput/latency metrics, cached per region so the per-call cost
// after warm-up is two relaxed increments and one histogram record (racing
// initializers store identical registry pointers, atomically for TSan).
struct BarrierInstruments {
  std::atomic<Counter*> calls{nullptr};
  std::atomic<Counter*> errors{nullptr};
  std::atomic<HistogramMetric*> stall{nullptr};
};

void CountBarrier(Region region, const Status& status, double stall_model_ms) {
  static BarrierInstruments per_region[kNumRegions];
  BarrierInstruments& slot = per_region[RegionIndex(region)];
  Counter* calls = slot.calls.load(std::memory_order_acquire);
  Counter* errors = slot.errors.load(std::memory_order_acquire);
  HistogramMetric* stall = slot.stall.load(std::memory_order_acquire);
  if (calls == nullptr) {
    MetricsRegistry& registry = MetricsRegistry::Default();
    const std::string region_name(RegionName(region));
    calls = registry.GetCounter("barrier.calls", {{"region", region_name}});
    errors = registry.GetCounter("barrier.errors", {{"region", region_name}});
    stall = registry.GetHistogram("barrier.stall_model_ms", {{"region", region_name}});
    slot.calls.store(calls, std::memory_order_release);
    slot.errors.store(errors, std::memory_order_release);
    slot.stall.store(stall, std::memory_order_release);
  }
  calls->Increment();
  if (!status.ok()) {
    errors->Increment();
  }
  stall->Record(stall_model_ms);
}

// Fans one shim WaitAsync per ⟨region, dependency⟩, all sharing `deadline`.
// Returns non-Ok (and never calls `done`) only for the fail-fast path —
// a dependency on an unregistered store under strict resolution. Otherwise
// `done` fires exactly once, possibly synchronously for already-visible sets.
Status LaunchBarrierWaits(const Lineage& lineage, const std::vector<Region>& regions,
                          TimePoint deadline, const BarrierOptions& options,
                          std::function<void(Status)> done) {
  // Dependencies are sorted, so each store's run is contiguous: one registry
  // lookup per store, not per dependency.
  std::vector<std::pair<Shim*, const WriteId*>> plan;
  plan.reserve(lineage.Size());
  Shim* shim = nullptr;
  const std::string* current_store = nullptr;
  for (const auto& dep : lineage.deps()) {
    if (current_store == nullptr || dep.store != *current_store) {
      current_store = &dep.store;
      shim = options.registry->Lookup(dep.store);
      if (shim == nullptr && !options.ignore_unknown_stores) {
        return Status::FailedPrecondition("no shim registered for store: " + dep.store);
      }
    }
    if (shim != nullptr) {
      plan.emplace_back(shim, &dep);
    }
  }

  const Region primary = regions.empty() ? Region::kLocal : regions.front();
  const TimePoint start = SystemClock::Instance().Now();
  std::shared_ptr<BarrierTraceState> trace = MaybeStartBarrierTrace(primary);

  const size_t num_deps = plan.size();
  auto finish = [primary, start, num_deps, trace, done = std::move(done)](Status status) {
    if (trace != nullptr) {
      FinishBarrierTrace(*trace, num_deps, "parallel", status);
    }
    CountBarrier(primary, status,
                 TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
                     SystemClock::Instance().Now() - start)));
    done(status);
  };

  const size_t waits = plan.size() * regions.size();
  if (waits == 0) {
    finish(Status::Ok());
    return Status::Ok();
  }
  auto gather = std::make_shared<WaitGather>(waits, std::move(finish));
  for (Region region : regions) {
    for (const auto& [wait_shim, dep] : plan) {
      if (trace != nullptr) {
        // Traced waits copy their WriteId: the callback may outlive the
        // lineage (BarrierAsync) and needs it to label the wait span.
        wait_shim->WaitAsync(region, *dep, deadline,
                             [gather, trace, region, dep = *dep](Status status) {
                               const TimePoint end = SystemClock::Instance().Now();
                               const double stall_ms =
                                   TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
                                       end - trace->start));
                               trace->Observe(stall_ms, dep);
                               RecordWaitSpan(*trace, dep, region, end, stall_ms, status);
                               gather->Complete(status);
                             });
      } else {
        wait_shim->WaitAsync(region, *dep, deadline,
                             [gather](Status status) { gather->Complete(status); });
      }
    }
  }
  return Status::Ok();
}

// Blocks the calling thread on the gathered fan-out.
Status BarrierParallel(const Lineage& lineage, const std::vector<Region>& regions,
                       TimePoint deadline, const BarrierOptions& options) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::Ok();
  };
  auto latch = std::make_shared<Latch>();
  Status launched = LaunchBarrierWaits(lineage, regions, deadline, options, [latch](Status status) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->status = std::move(status);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  if (!launched.ok()) {
    return launched;
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return latch->status;
}

// The legacy one-dependency-at-a-time loop, kept as a baseline. Still uses
// the single shared deadline: each wait gets the budget remaining until it.
Status BarrierSequential(const Lineage& lineage, Region region, TimePoint deadline,
                         const BarrierOptions& options) {
  const TimePoint start = SystemClock::Instance().Now();
  std::shared_ptr<BarrierTraceState> trace = MaybeStartBarrierTrace(region);
  Status result = Status::Ok();
  for (const auto& dep : lineage.deps()) {
    Shim* shim = options.registry->Lookup(dep.store);
    if (shim == nullptr) {
      if (options.ignore_unknown_stores) {
        continue;
      }
      result = Status::FailedPrecondition("no shim registered for store: " + dep.store);
      break;
    }
    const Duration budget = RemainingBudget(deadline);
    if (deadline != TimePoint::max() && budget == Duration::zero()) {
      result = Status::DeadlineExceeded("barrier deadline before " + dep.ToString());
      break;
    }
    const TimePoint wait_start = SystemClock::Instance().Now();
    Status status = shim->Wait(region, dep, budget);
    if (trace != nullptr) {
      const TimePoint end = SystemClock::Instance().Now();
      const double stall_ms =
          TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(end - wait_start));
      trace->Observe(stall_ms, dep);
      RecordWaitSpan(*trace, dep, region, end, stall_ms, status);
    }
    if (!status.ok()) {
      result = status;
      break;
    }
  }
  if (trace != nullptr) {
    FinishBarrierTrace(*trace, lineage.Size(), "sequential", result);
  }
  CountBarrier(region, result,
               TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
                   SystemClock::Instance().Now() - start)));
  return result;
}

// Non-blocking dry-run folded into the standard barrier entry points: maps
// the structured BarrierDryRunResult onto the Status vocabulary.
Status DryRunStatus(const Lineage& lineage, Region region, const BarrierOptions& options) {
  const BarrierDryRunResult result = BarrierDryRun(lineage, region, options.registry);
  if (!result.unresolved.empty() && !options.ignore_unknown_stores) {
    return Status::FailedPrecondition("no shim registered for store: " +
                                      result.unresolved.front().store);
  }
  if (result.unmet.empty()) {
    return Status::Ok();
  }
  std::string detail = "barrier dry-run: unmet dependencies:";
  for (const auto& dep : result.unmet) {
    detail += " " + dep.ToString();
  }
  return Status::FailedPrecondition(std::move(detail));
}

}  // namespace

Status Barrier(const Lineage& lineage, Region region, const BarrierOptions& options) {
  if (options.dry_run) {
    return DryRunStatus(lineage, region, options);
  }
  const TimePoint deadline = options.EffectiveDeadline();
  if (options.wait_mode == BarrierWaitMode::kSequential) {
    return BarrierSequential(lineage, region, deadline, options);
  }
  return BarrierParallel(lineage, {region}, deadline, options);
}

Status BarrierCtx(Region region, const BarrierOptions& options) {
  auto lineage = LineageApi::Current();
  if (!lineage.has_value()) {
    return Status::Ok();
  }
  return Barrier(*lineage, region, options);
}

Status BarrierGlobal(const Lineage& lineage, const std::vector<Region>& regions,
                     const BarrierOptions& options) {
  if (options.dry_run) {
    for (Region region : regions) {
      Status status = DryRunStatus(lineage, region, options);
      if (!status.ok()) {
        return status;
      }
    }
    return Status::Ok();
  }
  const TimePoint deadline = options.EffectiveDeadline();
  if (options.wait_mode == BarrierWaitMode::kSequential) {
    for (Region region : regions) {
      Status status = BarrierSequential(lineage, region, deadline, options);
      if (!status.ok()) {
        return status;
      }
    }
    return Status::Ok();
  }
  return BarrierParallel(lineage, regions, deadline, options);
}

void BarrierAsync(Lineage lineage, Region region, ThreadPool* executor,
                  std::function<void(Status)> done, const BarrierOptions& options) {
  if (options.dry_run) {
    Status status = DryRunStatus(lineage, region, options);
    if (!executor->Submit([done, status] { done(status); })) {
      done(status);
    }
    return;
  }
  const TimePoint deadline = options.EffectiveDeadline();
  if (options.wait_mode == BarrierWaitMode::kSequential) {
    executor->Submit([lineage = std::move(lineage), region, deadline, done = std::move(done),
                      options] { done(BarrierSequential(lineage, region, deadline, options)); });
    return;
  }
  // Event-driven: no thread blocks while dependencies replicate; the gather
  // bounces the result onto `executor` so `done` never runs on a timer or
  // apply thread. A finite deadline cancels outstanding waits, so `done` is
  // guaranteed to fire by then even if a dependency never arrives.
  auto finish = std::make_shared<std::function<void(Status)>>(
      [executor, done = std::move(done)](Status status) {
        if (!executor->Submit([done, status] { done(status); })) {
          done(status);  // executor shut down: deliver inline
        }
      });
  Status launched = LaunchBarrierWaits(lineage, {region}, deadline, options,
                                       [finish](Status status) { (*finish)(std::move(status)); });
  if (!launched.ok()) {
    (*finish)(launched);
  }
}

BarrierDryRunResult BarrierDryRun(const Lineage& lineage, Region region,
                                  ShimRegistry* registry) {
  BarrierDryRunResult result;
  for (const auto& dep : lineage.deps()) {
    Shim* shim = registry->Lookup(dep.store);
    if (shim == nullptr) {
      result.unresolved.push_back(dep);
      result.consistent = false;
      continue;
    }
    if (!shim->IsVisible(region, dep)) {
      result.unmet.push_back(dep);
      result.consistent = false;
    }
  }
  return result;
}

}  // namespace antipode
