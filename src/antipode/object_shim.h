// Shim for the S3-like ObjectStore.

#ifndef SRC_ANTIPODE_OBJECT_SHIM_H_
#define SRC_ANTIPODE_OBJECT_SHIM_H_

#include <string>

#include "src/antipode/lineage_api.h"
#include "src/antipode/watermark_shim.h"
#include "src/store/object_store.h"

namespace antipode {

class ObjectShim : public WatermarkShim {
 public:
  explicit ObjectShim(ObjectStore* store) : WatermarkShim(store), objects_(store) {}

  struct ReadResult {
    std::string value;
    Lineage lineage;
  };

  Lineage PutObject(Region region, const std::string& bucket, const std::string& key,
                    std::string_view value, Lineage lineage);
  // NotFound when the object is absent at `region`.
  Result<ReadResult> GetObject(Region region, const std::string& bucket,
                               const std::string& key) const;

  Status PutObjectCtx(Region region, const std::string& bucket, const std::string& key,
                      std::string_view value);
  Result<std::string> GetObjectCtx(Region region, const std::string& bucket,
                                   const std::string& key) const;

 private:
  ObjectStore* objects_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_OBJECT_SHIM_H_
