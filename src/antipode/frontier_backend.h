// Okapi-style hybrid stabilization enforcement (DESIGN.md §12). Instead of
// one wait per dependency, the barrier folds its dependencies into a single
// HLC cut — the maximum stamp among the writes that supersede them — and
// waits, per involved ⟨store, region⟩, for the store's stabilization frontier
// to pass the cut (StoreVisibility::FrontierCovers). Soundness rests on two
// invariants the store layer maintains:
//   * stamps are monotone in each store's sequence numbers (seq and HLC are
//     assigned under one lock), so F(r) ≥ c proves every write stamped ≤ c
//     has applied at r;
//   * stamps are process-wide monotone (one HlcClock), so an idle store whose
//     region applied everything it ever issued can never hide a write below
//     any already-computed cut (the caught-up rule).
//
// Dependencies the cut cannot cover — stores without a frontier (foreign
// shims, caching disabled) or keys whose stamp the cache no longer knows —
// fall back to the lineage backend's batched per-dependency waits, so a mixed
// deployment degrades gracefully rather than failing.

#ifndef SRC_ANTIPODE_FRONTIER_BACKEND_H_
#define SRC_ANTIPODE_FRONTIER_BACKEND_H_

#include <functional>
#include <string_view>
#include <vector>

#include "src/antipode/enforcement.h"

namespace antipode {

class StableFrontierBackend : public EnforcementBackend {
 public:
  std::string_view name() const override { return "stable_frontier"; }

  // Frontier waits are inherently batched; wait_mode is ignored and Launch
  // never blocks the caller.
  Status Launch(const Lineage& lineage, const std::vector<Region>& regions, TimePoint deadline,
                const BarrierOptions& options, std::function<void(Status)> done,
                bool* memoizable) override;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_FRONTIER_BACKEND_H_
