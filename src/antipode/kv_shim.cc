#include "src/antipode/kv_shim.h"

#include "src/antipode/framing.h"

namespace antipode {

Lineage KvShim::Write(Region region, const std::string& key, std::string_view value,
                      Lineage lineage) {
  const uint64_t version = kv_->Set(region, key, FrameValue(lineage, value));
  lineage.Append(WriteId{store_name(), key, version});
  return lineage;
}

KvShim::ReadResult KvShim::Read(Region region, const std::string& key) const {
  ReadResult out;
  auto entry = kv_->Get(region, key);
  if (!entry.has_value() || entry->bytes.empty()) {
    return out;
  }
  FramedValue framed = UnframeValue(entry->bytes);
  out.value = std::move(framed.value);
  out.lineage = std::move(framed.lineage);
  out.lineage.Append(WriteId{store_name(), key, entry->version});
  return out;
}

void KvShim::WriteCtx(Region region, const std::string& key, std::string_view value) {
  Lineage lineage = LineageApi::Current().value_or(Lineage());
  LineageApi::Install(Write(region, key, value, std::move(lineage)));
}

std::optional<std::string> KvShim::ReadCtx(Region region, const std::string& key) const {
  ReadResult result = Read(region, key);
  if (result.value.has_value()) {
    LineageApi::Transfer(result.lineage);
  }
  return std::move(result.value);
}

}  // namespace antipode
