#include "src/antipode/kv_shim.h"

#include "src/antipode/framing.h"

namespace antipode {

Lineage KvShim::Write(Region region, const std::string& key, std::string_view value,
                      Lineage lineage) {
  const uint64_t version = kv_->Set(region, key, FrameValue(lineage, value));
  lineage.Append(MakeWriteId(key, version));
  return lineage;
}

Result<KvShim::ReadResult> KvShim::Read(Region region, const std::string& key) const {
  auto entry = kv_->Get(region, key);
  if (!entry.has_value() || entry->bytes.empty()) {
    return Status::NotFound("kv read miss: " + key);
  }
  ReadResult out;
  FramedValue framed = UnframeValue(entry->bytes);
  out.value = std::move(framed.value);
  out.lineage = std::move(framed.lineage);
  out.lineage.Append(MakeWriteId(key, entry->version));
  return out;
}

Status KvShim::WriteCtx(Region region, const std::string& key, std::string_view value) {
  Lineage lineage = LineageApi::Current().value_or(Lineage());
  LineageApi::Install(Write(region, key, value, std::move(lineage)));
  return Status::Ok();
}

Result<std::string> KvShim::ReadCtx(Region region, const std::string& key) const {
  auto result = Read(region, key);
  if (!result.ok()) {
    return result.status();
  }
  LineageApi::Transfer(result->lineage);
  return std::move(result->value);
}

}  // namespace antipode
