// Bookkeeping shared by the enforcement backends and the barrier entry
// points: the wait-gather join, the barrier.* / cache-outcome instruments,
// and the memoized-Ok fast path. Internal to src/antipode — strategies
// include this so both are measured with identical counters.

#ifndef SRC_ANTIPODE_ENFORCEMENT_INTERNAL_H_
#define SRC_ANTIPODE_ENFORCEMENT_INTERNAL_H_

#include <functional>
#include <mutex>
#include <utility>

#include "src/antipode/enforcement.h"
#include "src/antipode/lineage.h"
#include "src/common/status.h"
#include "src/net/region.h"

namespace antipode {

class Counter;

namespace enforcement_internal {

// Join point for a fan-out of asynchronous waits: counts completions, keeps
// the first error, fires `done` exactly once when the last wait lands.
class WaitGather {
 public:
  WaitGather(size_t outstanding, std::function<void(Status)> done)
      : outstanding_(outstanding), done_(std::move(done)) {}

  void Complete(const Status& status) {
    std::function<void(Status)> fire;
    Status result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!status.ok() && first_error_.ok()) {
        first_error_ = status;
      }
      if (--outstanding_ > 0) {
        return;
      }
      fire = std::move(done_);
      result = first_error_;
    }
    fire(result);
  }

 private:
  std::mutex mu_;
  size_t outstanding_;
  Status first_error_ = Status::Ok();
  std::function<void(Status)> done_;
};

// The region a barrier's metrics and memo fast path attribute to: the first
// requested region, kLocal for an empty (trivially satisfied) request. Shared
// so both strategies agree on the attribution rule.
inline Region PrimaryRegion(const std::vector<Region>& regions) {
  return regions.empty() ? Region::kLocal : regions.front();
}

// Barrier throughput/latency metrics (barrier.calls / errors /
// deadline_exceeded / stall_model_ms), cached per region.
void CountBarrier(Region region, const Status& status, double stall_model_ms);

// barrier.scoped_skip — ⟨dependency, region⟩ pairs a barrier skipped because
// the dependency's locality scope excluded the region (options.use_scope).
// Process-global like the cache counters; the bench reports it per phase via
// snapshot deltas.
void CountScopedSkips(uint64_t n);

// barrier.backend{backend=...} dispatch counter, cached per strategy.
void CountBackendDispatch(EnforcementBackendKind kind);

// Visibility-cache outcome counters. Process-global (not per region): the
// cache itself is region-aware, the hit rate is one number operators watch.
struct CacheInstruments {
  Counter* hit;
  Counter* miss;
  Counter* zero_wait;
};
const CacheInstruments& CacheCounters();

// O(1) completion for a lineage some prior barrier already enforced at every
// requested region (Lineage::enforced_at): visibility is monotone, so the old
// verdict can never go stale. The dependencies count as cache hits so the
// hit-rate arithmetic stays coherent with the probe path.
Status MemoizedOk(const Lineage& lineage, size_t num_regions, Region primary);

// True when `lineage` carries the enforcement memo for every region in
// `regions` — the guard in front of MemoizedOk.
bool AllEnforced(const Lineage& lineage, const std::vector<Region>& regions);

}  // namespace enforcement_internal
}  // namespace antipode

#endif  // SRC_ANTIPODE_ENFORCEMENT_INTERNAL_H_
