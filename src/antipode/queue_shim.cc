#include "src/antipode/queue_shim.h"

#include "src/antipode/framing.h"
#include "src/context/request_context.h"
#include "src/obs/trace.h"

namespace antipode {

void DispatchFramedMessage(const std::string& store_name, RegionMask scope,
                           const BrokerMessage& message, const ShimMessageHandler& handler) {
  FramedValue framed = UnframeValue(message.payload);
  ConsumedMessage consumed;
  consumed.payload = std::move(framed.value);
  consumed.lineage = std::move(framed.lineage);
  consumed.lineage.Append(WriteId{store_name, message.key, message.version, scope});
  consumed.delivered_at = message.delivered_at;

  // Consumption starts a new execution; it runs under a fresh context whose
  // lineage is the message's (reads-from-lineage: the consumer now depends on
  // everything the producer's request did before publishing).
  RequestContext context;
  ScopedContext scoped(std::move(context));
  LineageApi::Install(consumed.lineage);
  // Join the producer's trace (the span context rode the broker message), so
  // the consumer's barrier and reads land in the same end-to-end trace.
  if (message.trace_id != 0 && Tracer::Default().enabled()) {
    SetCurrentSpanContext(SpanContext{message.trace_id, message.parent_span_id});
  }
  handler(consumed);
}

Lineage QueueShim::Publish(Region region, const std::string& queue, std::string_view payload,
                           Lineage lineage) {
  auto result = queue_->PublishWithKey(region, queue, FrameValue(lineage, payload));
  lineage.Append(MakeWriteId(result.key, result.version));
  return lineage;
}

Status QueueShim::PublishCtx(Region region, const std::string& queue, std::string_view payload) {
  Lineage lineage = LineageApi::Current().value_or(Lineage());
  LineageApi::Install(Publish(region, queue, payload, std::move(lineage)));
  return Status::Ok();
}

void QueueShim::Subscribe(Region region, const std::string& queue, ThreadPool* executor,
                          ShimMessageHandler handler) {
  const std::string name = store_name();
  const RegionMask scope = region_scope();
  queue_->Subscribe(region, queue, executor,
                    [name, scope, handler = std::move(handler)](const BrokerMessage& message) {
                      DispatchFramedMessage(name, scope, message, handler);
                    });
}

Lineage PubSubShim::Publish(Region region, const std::string& topic, std::string_view payload,
                            Lineage lineage) {
  auto result = pubsub_->PublishWithKey(region, topic, FrameValue(lineage, payload));
  lineage.Append(MakeWriteId(result.key, result.version));
  return lineage;
}

Status PubSubShim::PublishCtx(Region region, const std::string& topic, std::string_view payload) {
  Lineage lineage = LineageApi::Current().value_or(Lineage());
  LineageApi::Install(Publish(region, topic, payload, std::move(lineage)));
  return Status::Ok();
}

void PubSubShim::Subscribe(Region region, const std::string& topic, ThreadPool* executor,
                           ShimMessageHandler handler) {
  const std::string name = store_name();
  const RegionMask scope = region_scope();
  pubsub_->Subscribe(region, topic, executor,
                     [name, scope, handler = std::move(handler)](const BrokerMessage& message) {
                       DispatchFramedMessage(name, scope, message, handler);
                     });
}

}  // namespace antipode
