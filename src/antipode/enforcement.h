// Pluggable enforcement strategies (DESIGN.md §12). A barrier entry point
// resolves one `EnforcementBackend` and delegates the actual wait plan to it;
// the entry points own only the call plumbing (dry-run, blocking latch /
// executor bounce, memoization of blocking successes).
//
// Two strategies ship in-tree:
//   * kLineage (`LineageBarrierBackend`) — Antipode's native plan: group the
//     lineage's dependencies by datastore, fan one batched wait per
//     ⟨store, region⟩ on the stores' replication watermarks, gather at one
//     shared deadline. Metadata cost O(|lineage|), wait cost max over exactly
//     the dependencies.
//   * kStableFrontier (`StableFrontierBackend`) — Okapi-style hybrid
//     stabilization: every write is stamped with a hybrid logical clock at
//     issue; each store region publishes an HLC apply frontier ("every write
//     stamped ≤ F has applied here"). A barrier folds its dependencies into
//     one HLC cut (the max dependency stamp) and waits for the involved
//     stores' frontiers to pass the cut — O(1) metadata and one wait per
//     ⟨store, region⟩ regardless of dependency count, at the price of also
//     waiting for unrelated writes stamped below the cut.

#ifndef SRC_ANTIPODE_ENFORCEMENT_H_
#define SRC_ANTIPODE_ENFORCEMENT_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "src/antipode/lineage.h"
#include "src/antipode/shim.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/net/region.h"

namespace antipode {

enum class BarrierWaitMode {
  // Group by store, fan every wait out concurrently, gather at one shared
  // deadline. The default.
  kParallel,
  // Wait for one dependency at a time in lineage order. Kept as the
  // measurable baseline (bench/micro_barrier) and for debugging; semantics
  // are identical, latency and timeout sharpness are worse. Only meaningful
  // under the lineage backend (frontier waits are inherently batched).
  kSequential,
};

struct BarrierOptions {
  // Deadline policy for the whole barrier (every wait in it shares the one
  // effective deadline). First member so existing designated initializers
  // that start at `registry` keep compiling.
  WaitPolicy wait;
  ShimRegistry* registry = &ShimRegistry::Default();
  // Dependencies on datastores without a registered shim: skip them (true,
  // the incremental-deployment default) or fail the barrier (false).
  bool ignore_unknown_stores = true;
  BarrierWaitMode wait_mode = BarrierWaitMode::kParallel;
  // Inspect instead of enforce: return immediately with Ok when every
  // dependency is already visible, FailedPrecondition (listing the unmet
  // dependencies) otherwise. Never blocks. `BarrierDryRun` is the richer
  // structured form of the same probe.
  bool dry_run = false;
  // Probe the visibility cache before issuing any wait: dependencies the
  // cache proves visible are skipped, and a barrier whose dependencies all
  // hit returns Ok with zero thread-pool, timer, or registry traffic
  // (`barrier.zero_wait`). Sound because visibility is monotone — a hit can
  // never be invalidated (DESIGN.md §8). Off is the measurable baseline.
  bool use_cache = true;
  // Honor each dependency's locality scope (WriteId::scope): waits and
  // frontier cuts are armed only for ⟨store, region⟩ pairs the scope still
  // names, so a barrier at US never blocks on — or even probes — SG-only
  // replication state (DESIGN.md §13). Skipped pairs count in
  // `barrier.scoped_skip`. Sound because a cleared scope bit means the write
  // either has no replica at that region (nothing readable there) or was
  // already proven visible there; off is the measurable unscoped baseline.
  bool use_scope = true;
  // Which enforcement strategy serves this barrier. kInherit resolves the
  // registry's `default_backend`, so deployments flip strategy in one place
  // and individual call sites can still pin one explicitly.
  EnforcementBackendKind backend = EnforcementBackendKind::kInherit;

  // The single absolute bound every wait in the barrier shares.
  TimePoint EffectiveDeadline() const { return wait.EffectiveDeadline(); }
};

// One enforcement strategy. Stateless; the two in-tree implementations are
// process-wide singletons reached through `ResolveBackend`.
class EnforcementBackend {
 public:
  virtual ~EnforcementBackend() = default;

  // Stable label carried on `barrier.backend` metrics and bench output.
  virtual std::string_view name() const = 0;

  // True when Launch may block the calling thread before returning
  // (sequential lineage mode runs its waits inline). BarrierAsync submits
  // such launches to the executor instead of calling them on the caller.
  virtual bool MayBlockInline(const BarrierOptions& options) const {
    (void)options;
    return false;
  }

  // Enforces `lineage` at every region in `regions`, bounded by `deadline`.
  // Returns non-Ok (and never calls `done`) only for fail-fast launch errors
  // (a dependency on an unregistered store under strict resolution);
  // otherwise `done` fires exactly once — possibly synchronously — with the
  // barrier outcome. Backends own their cache probing, zero-wait fast paths,
  // and `barrier.*` instrumentation so the two strategies are measured
  // identically.
  //
  // `memoizable` (optional) is written before `done` can fire: true iff an
  // Ok outcome proves every dependency visible in the regions' local
  // replicas — i.e. whether the caller may set the lineage's enforcement
  // memo. Backends that memoize internally report false.
  virtual Status Launch(const Lineage& lineage, const std::vector<Region>& regions,
                        TimePoint deadline, const BarrierOptions& options,
                        std::function<void(Status)> done, bool* memoizable) = 0;
};

// Process-wide strategy singletons.
EnforcementBackend& LineageBackend();
EnforcementBackend& FrontierBackend();

// The backend `options` selects: the explicit `options.backend` when set,
// otherwise the registry's `default_backend` (kInherit there means lineage).
EnforcementBackend& ResolveBackend(const BarrierOptions& options);

// Bytes of enforcement metadata a request must carry for `lineage` under
// `kind`: the serialized lineage for kLineage, one varint-encoded HLC cut for
// kStableFrontier. The bench's metadata-vs-wait-time axis.
size_t EnforcementMetadataBytes(EnforcementBackendKind kind, const Lineage& lineage);

}  // namespace antipode

#endif  // SRC_ANTIPODE_ENFORCEMENT_H_
