// Antipode's native enforcement strategy: per-dependency waits on the
// stores' replication watermarks, grouped by ⟨store, region⟩, gathered at one
// shared deadline (paper §6.3). Behaviour extracted verbatim from the
// pre-strategy barrier implementation — this is the reference backend the
// XCY checker and tier-1 suites pin down.

#ifndef SRC_ANTIPODE_LINEAGE_BACKEND_H_
#define SRC_ANTIPODE_LINEAGE_BACKEND_H_

#include <functional>
#include <string_view>
#include <vector>

#include "src/antipode/enforcement.h"

namespace antipode {

class LineageBarrierBackend : public EnforcementBackend {
 public:
  std::string_view name() const override { return "lineage"; }

  // Sequential mode runs its waits inline on the caller.
  bool MayBlockInline(const BarrierOptions& options) const override {
    return options.wait_mode == BarrierWaitMode::kSequential;
  }

  Status Launch(const Lineage& lineage, const std::vector<Region>& regions, TimePoint deadline,
                const BarrierOptions& options, std::function<void(Status)> done,
                bool* memoizable) override;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_LINEAGE_BACKEND_H_
