#include "src/antipode/lineage_backend.h"

#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/antipode/enforcement_internal.h"
#include "src/common/property.h"
#include "src/common/sim.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace antipode {
namespace {

using enforcement_internal::AllEnforced;
using enforcement_internal::CacheCounters;
using enforcement_internal::CacheInstruments;
using enforcement_internal::CountBarrier;
using enforcement_internal::CountScopedSkips;
using enforcement_internal::MemoizedOk;
using enforcement_internal::PrimaryRegion;
using enforcement_internal::WaitGather;

// Per-barrier trace bookkeeping shared by the per-dependency wait callbacks
// (which run on apply/timer threads) and the completion wrapper. Tracks which
// dependency stalled the longest — the barrier's critical path.
struct BarrierTraceState {
  uint64_t trace_id = 0;
  uint64_t barrier_span_id = 0;
  uint64_t parent_span_id = 0;
  TimePoint start{};
  Region region = Region::kLocal;

  std::mutex mu;
  double max_stall_ms = -1.0;
  std::string critical_store;
  std::string critical_key;

  void Observe(double stall_ms, const WriteId& dep) {
    std::lock_guard<std::mutex> lock(mu);
    if (stall_ms > max_stall_ms) {
      max_stall_ms = stall_ms;
      critical_store = dep.store;
      critical_key = dep.key;
    }
  }
};

// Opens trace state for one barrier invocation when tracing is on and the
// caller's request is part of a sampled trace; nullptr otherwise (the common,
// free case). Barrier spans are assembled manually because their waits start
// and finish on different threads.
std::shared_ptr<BarrierTraceState> MaybeStartBarrierTrace(Region region) {
  Tracer& tracer = Tracer::Default();
  if (!tracer.enabled()) {
    return nullptr;
  }
  const SpanContext parent = CurrentSpanContext();
  if (!parent.valid()) {
    return nullptr;
  }
  auto trace = std::make_shared<BarrierTraceState>();
  trace->trace_id = parent.trace_id;
  trace->barrier_span_id = tracer.NextSpanId();
  trace->parent_span_id = parent.span_id;
  trace->start = GlobalClock().Now();
  trace->region = region;
  return trace;
}

// Emits the "antipode/barrier" parent span once the fan-out has gathered,
// annotated with the dependency count, outcome, and critical path.
void FinishBarrierTrace(const BarrierTraceState& trace, size_t num_deps, const char* mode,
                        const Status& status) {
  TraceEvent event;
  event.name = "antipode/barrier";
  event.category = "barrier";
  event.trace_id = trace.trace_id;
  event.span_id = trace.barrier_span_id;
  event.parent_span_id = trace.parent_span_id;
  event.region = trace.region;
  event.start = trace.start;
  event.end = GlobalClock().Now();
  event.annotations.emplace_back("deps", std::to_string(num_deps));
  event.annotations.emplace_back("mode", mode);
  event.annotations.emplace_back("status", std::string(StatusCodeName(status.code())));
  if (trace.max_stall_ms >= 0.0) {
    event.annotations.emplace_back("critical_path_store", trace.critical_store);
    event.annotations.emplace_back("critical_path_key", trace.critical_key);
    event.annotations.emplace_back("critical_stall_model_ms",
                                   std::to_string(trace.max_stall_ms));
  }
  Tracer::Default().Record(std::move(event));
}

// Emits one "barrier/wait" child span for a finished dependency wait.
void RecordWaitSpan(const BarrierTraceState& trace, const WriteId& dep, Region region,
                    TimePoint end, double stall_ms, const Status& status) {
  TraceEvent event;
  event.name = "barrier/wait";
  event.category = "barrier";
  event.trace_id = trace.trace_id;
  event.span_id = Tracer::Default().NextSpanId();
  event.parent_span_id = trace.barrier_span_id;
  event.region = region;
  event.start = trace.start;
  event.end = end;
  event.annotations.emplace_back("store", dep.store);
  event.annotations.emplace_back("key", dep.key);
  event.annotations.emplace_back("version", std::to_string(dep.version));
  event.annotations.emplace_back("stall_model_ms", std::to_string(stall_ms));
  event.annotations.emplace_back("status", std::string(StatusCodeName(status.code())));
  Tracer::Default().Record(std::move(event));
}

// Shared-pointer alias for the cache state a shim exposes; nullptr when the
// shim's store does not publish applies.
using VisibilityHandle = std::shared_ptr<StoreVisibility>;

// Fans asynchronous waits for the dependencies the visibility cache cannot
// prove visible, all sharing `deadline`. Cache-hit dependencies are filtered
// out up front; when everything hits, `done` fires synchronously with zero
// thread-pool, timer, or registry traffic (the `barrier.zero_wait` path).
// Misses are batched per ⟨shim, region⟩ through WaitManyAsync so one store's
// misses cost one deadline timer and one completion, not one per dependency.
//
// Returns non-Ok (and never calls `done`) only for the fail-fast path —
// a dependency on an unregistered store under strict resolution. Otherwise
// `done` fires exactly once, possibly synchronously for already-visible sets.
// `memoizable` (optional) reports whether an Ok outcome proves every
// dependency visible in the regions' local replicas — i.e. whether the caller
// may set the lineage's enforcement memo. False when an unknown store was
// skipped or a dependency needed a real wait through a shim whose wait does
// not imply local visibility (dynamo-style authority reads).
Status LaunchBarrierWaits(const Lineage& lineage, const std::vector<Region>& regions,
                          TimePoint deadline, const BarrierOptions& options,
                          std::function<void(Status)> done, bool* memoizable = nullptr) {
  if (memoizable != nullptr) {
    *memoizable = true;
  }
  // Dependencies are sorted, so each store's run is contiguous: one registry
  // lookup (and one cache-state fetch) per store, not per dependency.
  struct StoreRun {
    Shim* shim = nullptr;
    VisibilityHandle vis;
    const WriteId* begin = nullptr;
    const WriteId* end = nullptr;
  };
  std::vector<StoreRun> runs;
  {
    Shim* shim = nullptr;
    VisibilityHandle vis;
    const std::string* current_store = nullptr;
    for (const auto& dep : lineage.deps()) {
      if (current_store == nullptr || dep.store != *current_store) {
        current_store = &dep.store;
        shim = options.registry->Lookup(dep.store);
        if (shim == nullptr && !options.ignore_unknown_stores) {
          return Status::FailedPrecondition("no shim registered for store: " + dep.store);
        }
        vis = shim != nullptr ? shim->visibility() : nullptr;
        if (shim == nullptr && memoizable != nullptr) {
          *memoizable = false;  // skipped dependency: outcome proves nothing about it
        }
        if (shim != nullptr) {
          runs.push_back(StoreRun{shim, vis, &dep, &dep + 1});
          continue;
        }
      }
      if (shim != nullptr) {
        runs.back().end = &dep + 1;
      }
    }
  }

  const Region primary = PrimaryRegion(regions);
  const TimePoint start = GlobalClock().Now();
  std::shared_ptr<BarrierTraceState> trace = MaybeStartBarrierTrace(primary);

  // Filter every ⟨region, dependency⟩ pair against the cache; survivors are
  // grouped per ⟨shim, region⟩ for one batched wait each. The WriteId copies
  // are required anyway: wait callbacks may outlive the lineage
  // (BarrierAsync) and the completion feeds the ids back into the cache.
  struct WaitGroup {
    Shim* shim = nullptr;
    VisibilityHandle vis;
    Region region = Region::kLocal;
    std::vector<WriteId> ids;
  };
  std::vector<WaitGroup> groups;
  size_t num_deps = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t scoped_skips = 0;
  for (Region region : regions) {
    for (const StoreRun& run : runs) {
      WaitGroup* group = nullptr;
      for (const WriteId* dep = run.begin; dep != run.end; ++dep) {
        ++num_deps;
        // Locality scope: a cleared bit means the dependency cannot need
        // enforcement at `region` (no replica there, or already proven
        // visible there), so no wait is armed and the cache is not probed.
        // Vacuously satisfied, so memoizability is unaffected.
        if (options.use_scope && (dep->scope & RegionBit(region)) == 0) {
          ++scoped_skips;
          continue;
        }
        if (options.use_cache) {
          if (run.vis != nullptr && run.vis->IsVisible(region, dep->key, dep->version)) {
            ++hits;
            continue;
          }
          ++misses;
        }
        if (group == nullptr) {
          groups.push_back(WaitGroup{run.shim, run.vis, region, {}});
          group = &groups.back();
          group->ids.reserve(static_cast<size_t>(run.end - dep));
          if (memoizable != nullptr && !run.shim->wait_implies_visibility()) {
            *memoizable = false;  // this wait succeeds via the authority, not the replica
          }
        }
        // The locality invariant at the wait-arming point: a scoped barrier
        // never issues a wait for a region the dependency's scope excludes.
        ANTIPODE_ALWAYS("barrier.scope_respected",
                        !options.use_scope || (dep->scope & RegionBit(region)) != 0);
        group->ids.push_back(*dep);
      }
    }
  }
  if (options.use_cache && (hits != 0 || misses != 0)) {
    const CacheInstruments& counters = CacheCounters();
    if (hits != 0) counters.hit->Increment(hits);
    if (misses != 0) counters.miss->Increment(misses);
  }
  CountScopedSkips(scoped_skips);

  auto finish = [primary, start, num_deps, deadline, trace, done = std::move(done)](Status status) {
    if (trace != nullptr) {
      FinishBarrierTrace(*trace, num_deps, "parallel", status);
    }
    // In virtual time completion instants are exact, so a finite deadline is
    // honored with zero slack: the deadline timer claims every outstanding
    // wait at the deadline itself. (Not asserted on real threads, where a
    // loaded dispatcher can fire late without any logic being wrong.)
    if (SimScheduler::Active() != nullptr) {
      ANTIPODE_ALWAYS("barrier.deadline_honored",
                      deadline == TimePoint::max() || GlobalClock().Now() <= deadline);
    }
    ANTIPODE_SOMETIMES("barrier.deadline_exceeded",
                       status.code() == StatusCode::kDeadlineExceeded);
    CountBarrier(primary, status,
                 TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
                     GlobalClock().Now() - start)));
    done(status);
  };

  if (groups.empty()) {
    // Every dependency hit the cache (or the lineage resolved to nothing):
    // the barrier completes without touching a registry, timer, or pool.
    if (options.use_cache) {
      CacheCounters().zero_wait->Increment();
    }
    finish(Status::Ok());
    return Status::Ok();
  }

  const bool traced = trace != nullptr;
  const size_t waits =
      traced ? [&] {
        size_t n = 0;
        for (const WaitGroup& g : groups) n += g.ids.size();
        return n;
      }()
             : groups.size();
  auto gather = std::make_shared<WaitGather>(waits, std::move(finish));
  for (WaitGroup& group : groups) {
    // A wait that succeeded proves its ids visible at the region — feed that
    // back so the next barrier over the same lineage hits. Gated on the shim:
    // dynamo-style waits succeed via the authority, not the local replica.
    const bool feed_cache = group.vis != nullptr && group.shim->wait_implies_visibility();
    if (traced) {
      // Traced barriers keep the one-wait-per-dependency fan-out: each
      // dependency gets its own "barrier/wait" span and critical-path sample.
      const Region region = group.region;
      for (WriteId& id : group.ids) {
        group.shim->WaitAsync(
            region, id, deadline,
            [gather, trace, region, feed_cache, vis = group.vis, dep = id](Status status) {
              const TimePoint end = GlobalClock().Now();
              const double stall_ms = TimeScale::ToModelMillis(
                  std::chrono::duration_cast<Duration>(end - trace->start));
              trace->Observe(stall_ms, dep);
              RecordWaitSpan(*trace, dep, region, end, stall_ms, status);
              if (status.ok() && feed_cache) {
                vis->NoteVisible(region, dep.key, dep.version);
              }
              gather->Complete(status);
            });
      }
      continue;
    }
    const Region region = group.region;
    auto ids = std::make_shared<std::vector<WriteId>>(std::move(group.ids));
    group.shim->WaitManyAsync(region, *ids, deadline,
                              [gather, region, feed_cache, vis = group.vis, ids](Status status) {
                                if (status.ok() && feed_cache) {
                                  for (const WriteId& id : *ids) {
                                    vis->NoteVisible(region, id.key, id.version);
                                  }
                                }
                                gather->Complete(status);
                              });
  }
  return Status::Ok();
}

// The legacy one-dependency-at-a-time loop, kept as a baseline. Still uses
// the single shared deadline: each wait gets the budget remaining until it.
// Memoizes (and takes the memo fast path) per region internally, matching
// the pre-strategy behaviour for multi-region sequential barriers.
Status BarrierSequential(const Lineage& lineage, Region region, TimePoint deadline,
                         const BarrierOptions& options) {
  if (options.use_cache && lineage.enforced_at(region)) {
    return MemoizedOk(lineage, 1, region);
  }
  const TimePoint start = GlobalClock().Now();
  std::shared_ptr<BarrierTraceState> trace = MaybeStartBarrierTrace(region);
  Status result = Status::Ok();
  bool any_wait = false;
  bool memoizable = true;
  uint64_t scoped_skips = 0;
  for (const auto& dep : lineage.deps()) {
    // Same locality-scope rule as the parallel path: an out-of-scope
    // dependency is vacuously met at this region.
    if (options.use_scope && (dep.scope & RegionBit(region)) == 0) {
      ++scoped_skips;
      continue;
    }
    Shim* shim = options.registry->Lookup(dep.store);
    if (shim == nullptr) {
      if (options.ignore_unknown_stores) {
        memoizable = false;
        continue;
      }
      result = Status::FailedPrecondition("no shim registered for store: " + dep.store);
      break;
    }
    VisibilityHandle vis = options.use_cache ? shim->visibility() : nullptr;
    if (options.use_cache) {
      if (vis != nullptr && vis->IsVisible(region, dep.key, dep.version)) {
        CacheCounters().hit->Increment();
        continue;
      }
      CacheCounters().miss->Increment();
    }
    any_wait = true;
    ANTIPODE_ALWAYS("barrier.scope_respected",
                    !options.use_scope || (dep.scope & RegionBit(region)) != 0);
    if (!shim->wait_implies_visibility()) {
      memoizable = false;
    }
    const Duration budget = RemainingBudget(deadline);
    if (deadline != TimePoint::max() && budget == Duration::zero()) {
      result = Status::DeadlineExceeded("barrier deadline before " + dep.ToString());
      break;
    }
    const TimePoint wait_start = GlobalClock().Now();
    Status status = shim->Wait(region, dep, budget);
    if (status.ok() && vis != nullptr && shim->wait_implies_visibility()) {
      vis->NoteVisible(region, dep.key, dep.version);
    }
    if (trace != nullptr) {
      const TimePoint end = GlobalClock().Now();
      const double stall_ms =
          TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(end - wait_start));
      trace->Observe(stall_ms, dep);
      RecordWaitSpan(*trace, dep, region, end, stall_ms, status);
    }
    if (!status.ok()) {
      result = status;
      break;
    }
  }
  if (trace != nullptr) {
    FinishBarrierTrace(*trace, lineage.Size(), "sequential", result);
  }
  CountScopedSkips(scoped_skips);
  if (options.use_cache && !any_wait && result.ok()) {
    CacheCounters().zero_wait->Increment();
  }
  if (options.use_cache && result.ok() && memoizable) {
    lineage.MarkEnforced(region);
  }
  if (SimScheduler::Active() != nullptr) {
    ANTIPODE_ALWAYS("barrier.deadline_honored",
                    deadline == TimePoint::max() || GlobalClock().Now() <= deadline);
  }
  ANTIPODE_SOMETIMES("barrier.deadline_exceeded",
                     result.code() == StatusCode::kDeadlineExceeded);
  CountBarrier(region, result,
               TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
                   GlobalClock().Now() - start)));
  return result;
}

}  // namespace

Status LineageBarrierBackend::Launch(const Lineage& lineage, const std::vector<Region>& regions,
                                     TimePoint deadline, const BarrierOptions& options,
                                     std::function<void(Status)> done, bool* memoizable) {
  if (options.wait_mode == BarrierWaitMode::kSequential) {
    if (memoizable != nullptr) {
      *memoizable = false;  // BarrierSequential memoizes per region itself
    }
    Status result = Status::Ok();
    for (Region region : regions) {
      result = BarrierSequential(lineage, region, deadline, options);
      if (!result.ok()) {
        break;
      }
    }
    done(result);
    return Status::Ok();
  }
  if (options.use_cache && AllEnforced(lineage, regions)) {
    if (PropertyRegistry::Instance().deep_checks()) {
      // The memo claims every dependency is already visible at every region;
      // re-probe each one (visibility is monotone, so the original proof must
      // still hold). A failure here is the memo lying — the one cache bug
      // that would silently break the paper's zero-violation claim.
      for (Region region : regions) {
        for (const auto& dep : lineage.deps()) {
          if (options.use_scope && (dep.scope & RegionBit(region)) == 0) {
            continue;
          }
          Shim* shim = options.registry->Lookup(dep.store);
          ANTIPODE_ALWAYS("barrier.memo_sound",
                          shim == nullptr || shim->IsVisible(region, dep));
        }
      }
    }
    if (memoizable != nullptr) {
      *memoizable = false;  // already memoized; nothing new proved
    }
    done(MemoizedOk(lineage, regions.size(), PrimaryRegion(regions)));
    return Status::Ok();
  }
  return LaunchBarrierWaits(lineage, regions, deadline, options, std::move(done), memoizable);
}

EnforcementBackend& LineageBackend() {
  static auto* backend = new LineageBarrierBackend();
  return *backend;
}

}  // namespace antipode
