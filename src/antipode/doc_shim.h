// Shim for the MongoDB-like DocStore: the lineage rides in a document field.

#ifndef SRC_ANTIPODE_DOC_SHIM_H_
#define SRC_ANTIPODE_DOC_SHIM_H_

#include <optional>
#include <string>

#include "src/antipode/lineage_api.h"
#include "src/antipode/watermark_shim.h"
#include "src/store/doc_store.h"

namespace antipode {

class DocShim : public WatermarkShim {
 public:
  explicit DocShim(DocStore* store) : WatermarkShim(store), docs_(store) {}

  struct ReadResult {
    std::optional<Document> doc;  // lineage field stripped
    Lineage lineage;
  };

  Lineage InsertDoc(Region region, const std::string& collection, const std::string& id,
                    Document doc, Lineage lineage);
  ReadResult FindById(Region region, const std::string& collection, const std::string& id) const;

  void InsertDocCtx(Region region, const std::string& collection, const std::string& id,
                    Document doc);
  std::optional<Document> FindByIdCtx(Region region, const std::string& collection,
                                      const std::string& id) const;

 private:
  DocStore* docs_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_DOC_SHIM_H_
