// Shim for the MongoDB-like DocStore: the lineage rides in a document field.

#ifndef SRC_ANTIPODE_DOC_SHIM_H_
#define SRC_ANTIPODE_DOC_SHIM_H_

#include <string>

#include "src/antipode/lineage_api.h"
#include "src/antipode/watermark_shim.h"
#include "src/store/doc_store.h"

namespace antipode {

class DocShim : public WatermarkShim {
 public:
  explicit DocShim(DocStore* store) : WatermarkShim(store), docs_(store) {}

  struct ReadResult {
    Document doc;  // lineage field stripped
    Lineage lineage;
  };

  Lineage InsertDoc(Region region, const std::string& collection, const std::string& id,
                    Document doc, Lineage lineage);
  // NotFound when the document is absent at `region`; InvalidArgument when
  // the stored bytes do not decode as a document.
  Result<ReadResult> FindById(Region region, const std::string& collection,
                              const std::string& id) const;

  Status InsertDocCtx(Region region, const std::string& collection, const std::string& id,
                      Document doc);
  Result<Document> FindByIdCtx(Region region, const std::string& collection,
                               const std::string& id) const;

 private:
  DocStore* docs_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_DOC_SHIM_H_
