// Shims for the broker substrates (RabbitMQ/AMQ-like queues and SNS-like
// pub/sub). Lineages ride inside the message frame; consuming a message
// re-installs the producer's lineage (plus the message's own write id) into
// the consumer's request context, which is how causality crosses the
// asynchronous hop in DeathStarBench and TrainTicket (§7.1).

#ifndef SRC_ANTIPODE_QUEUE_SHIM_H_
#define SRC_ANTIPODE_QUEUE_SHIM_H_

#include <functional>
#include <string>

#include "src/antipode/lineage.h"
#include "src/antipode/lineage_api.h"
#include "src/antipode/watermark_shim.h"
#include "src/store/pubsub_store.h"
#include "src/store/queue_store.h"

namespace antipode {

// Payload + the lineage reconstructed from the message frame (including the
// message's own write identifier).
struct ConsumedMessage {
  std::string payload;
  Lineage lineage;
  Region delivered_at = Region::kLocal;
};

using ShimMessageHandler = std::function<void(const ConsumedMessage&)>;

class QueueShim : public WatermarkShim {
 public:
  explicit QueueShim(QueueStore* store) : WatermarkShim(store), queue_(store) {}

  // ℒ' ← publish(queue, ⟨payload, ℒ⟩).
  Lineage Publish(Region region, const std::string& queue, std::string_view payload,
                  Lineage lineage);
  Status PublishCtx(Region region, const std::string& queue, std::string_view payload);

  // Subscribes a consumer whose handler runs under a fresh RequestContext
  // carrying the message's lineage (so barrier/reads inside the handler see
  // the producer's dependencies).
  void Subscribe(Region region, const std::string& queue, ThreadPool* executor,
                 ShimMessageHandler handler);

 private:
  QueueStore* queue_;
};

class PubSubShim : public WatermarkShim {
 public:
  explicit PubSubShim(PubSubStore* store) : WatermarkShim(store), pubsub_(store) {}

  Lineage Publish(Region region, const std::string& topic, std::string_view payload,
                  Lineage lineage);
  Status PublishCtx(Region region, const std::string& topic, std::string_view payload);

  void Subscribe(Region region, const std::string& topic, ThreadPool* executor,
                 ShimMessageHandler handler);

 private:
  PubSubStore* pubsub_;
};

// Shared by both shims: decodes a broker message into payload + lineage and
// invokes `handler` under a context carrying that lineage. `scope` is the
// broker store's locality scope, stamped onto the message's own write id
// (Shim::region_scope of the subscribing shim).
void DispatchFramedMessage(const std::string& store_name, RegionMask scope,
                           const BrokerMessage& message, const ShimMessageHandler& handler);

}  // namespace antipode

#endif  // SRC_ANTIPODE_QUEUE_SHIM_H_
