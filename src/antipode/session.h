// Session guarantees on top of lineages. A `Session` accumulates the lineage
// of every request a user performs and gates subsequent reads on it,
// providing read-your-writes and monotonic-reads *without* FlightTracker's
// centralized ticket service (§8): the session object lives wherever the
// user's state lives (client library, edge, sticky LB) and its dependency
// set is just a lineage, enforced with the ordinary barrier machinery.
//
// Typical use:
//   Session session("alice");
//   … per request: ScopedContext + LineageApi::Root() + session.Attach();
//     <shimmed writes/reads>
//     session.AbsorbCtx();                       // at request end
//   … before a user-facing read elsewhere:
//     session.GuardRead(region);                 // RYW gate

#ifndef SRC_ANTIPODE_SESSION_H_
#define SRC_ANTIPODE_SESSION_H_

#include <mutex>
#include <string>

#include "src/antipode/barrier.h"
#include "src/antipode/lineage.h"

namespace antipode {

class Session {
 public:
  explicit Session(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  // Folds `lineage` into the session's dependency set.
  void Absorb(const Lineage& lineage);

  // Folds the current request context's lineage into the session. Call when
  // a request finishes (before its lineage is truncated by `stop`).
  void AbsorbCtx();

  // Installs the session's dependencies into the current request context so
  // that a new request starts causally after everything the session did.
  void Attach() const;

  // Read-your-writes gate: blocks until every session dependency is visible
  // at `region`.
  Status GuardRead(Region region, const BarrierOptions& options = {}) const;

  // Non-blocking variant: true when a read at `region` would already observe
  // all session writes.
  bool IsReadConsistent(Region region,
                        ShimRegistry* registry = &ShimRegistry::Default()) const;

  Lineage Snapshot() const;
  size_t NumDeps() const;
  void Clear();

 private:
  std::string id_;
  mutable std::mutex mu_;
  Lineage lineage_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_SESSION_H_
