// Base for shims whose `wait` is a replication-watermark wait on the
// underlying ReplicatedStore (every store except DynamoDB, whose shim uses
// strongly consistent reads instead).

#ifndef SRC_ANTIPODE_WATERMARK_SHIM_H_
#define SRC_ANTIPODE_WATERMARK_SHIM_H_

#include "src/antipode/shim.h"
#include "src/store/replicated_store.h"

namespace antipode {

class WatermarkShim : public Shim {
 public:
  explicit WatermarkShim(ReplicatedStore* store) : store_(store) {}

  const std::string& store_name() const override { return store_->name(); }

  Status Wait(Region region, const WriteId& id, Duration timeout) override {
    return store_->WaitVisible(region, id.key, id.version, timeout);
  }

  // Event-driven: rides the store's per-key waiter registry instead of
  // parking a pool thread, so a barrier can have thousands outstanding.
  void WaitAsync(Region region, const WriteId& id, TimePoint deadline,
                 WaitCallback done) override {
    store_->WaitVisibleAsync(region, id.key, id.version, deadline, std::move(done));
  }

  bool IsVisible(Region region, const WriteId& id) override {
    return store_->IsVisible(region, id.key, id.version);
  }

 protected:
  ReplicatedStore* store_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_WATERMARK_SHIM_H_
