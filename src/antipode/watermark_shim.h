// Base for shims whose `wait` is a replication-watermark wait on the
// underlying ReplicatedStore (every store except DynamoDB, whose shim uses
// strongly consistent reads instead).

#ifndef SRC_ANTIPODE_WATERMARK_SHIM_H_
#define SRC_ANTIPODE_WATERMARK_SHIM_H_

#include "src/antipode/shim.h"
#include "src/store/replicated_store.h"

namespace antipode {

class WatermarkShim : public Shim {
 public:
  explicit WatermarkShim(ReplicatedStore* store) : store_(store) {}

  const std::string& store_name() const override { return store_->name(); }

  Status Wait(Region region, const WriteId& id, Duration timeout) override {
    return store_->WaitVisible(region, id.key, id.version, timeout);
  }

  // Event-driven: rides the store's per-key waiter registry instead of
  // parking a pool thread, so a barrier can have thousands outstanding.
  void WaitAsync(Region region, const WriteId& id, TimePoint deadline,
                 WaitCallback done) override {
    store_->WaitVisibleAsync(region, id.key, id.version, deadline, std::move(done));
  }

  // One registry batch per store: already-visible ids register nothing, the
  // rest share a single deadline timer and completion.
  void WaitManyAsync(Region region, std::span<const WriteId> ids, TimePoint deadline,
                     WaitCallback done) override {
    std::vector<KeyVersion> items;
    items.reserve(ids.size());
    for (const WriteId& id : ids) {
      items.push_back(KeyVersion{id.key, id.version});
    }
    store_->WaitVisibleBatchAsync(region, items, deadline, std::move(done));
  }

  bool IsVisible(Region region, const WriteId& id) override {
    return store_->IsVisible(region, id.key, id.version);
  }

  std::shared_ptr<StoreVisibility> visibility() const override { return store_->visibility(); }

  // Scope from the store's replica footprint: a region without a replica can
  // never read (or be stale on) this store's writes.
  RegionMask region_scope() const override { return store_->region_mask(); }

  // Frontier waits ride the store's HLC-stamped apply watermark; only
  // available when the store publishes visibility state (caching enabled).
  bool SupportsFrontier() const override { return store_->visibility() != nullptr; }

  void WaitFrontierAsync(Region region, uint64_t cut_hlc, TimePoint deadline,
                         WaitCallback done) override {
    store_->WaitFrontierAsync(region, cut_hlc, deadline, std::move(done));
  }

 protected:
  ReplicatedStore* store_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_WATERMARK_SHIM_H_
