// Offline XCY-consistency checking over recorded executions — the testable
// form of the §4.2 definition. Where `BarrierDryRun` asks "would this barrier
// have blocked *right now*", the history checker validates an entire
// execution after the fact:
//
//   An execution is XCY consistent iff each process observes writes in an
//   order that respects ↝, where ↝ is happened-before extended with
//   reads-from-lineage: reading a value written by operation a' of lineage
//   ℒ(a') orders *all* of ℒ(a') before the read and everything after it.
//
// Operationally, per process we maintain the set of writes the process is
// causally required to observe (its accumulated dependency frontier, one
// max-version per ⟨store, key⟩). A read of ⟨store, key⟩ that returns a
// version older than the frontier's entry for that key is an XCY violation;
// "not found" counts as version 0. Observing a write folds the writer's
// whole lineage into the frontier (rule 2) and program order carries the
// frontier forward (rules 1 and 3).
//
// Applications under test record events via the Observe* calls; tests and
// tools then ask for the violation list.

#ifndef SRC_ANTIPODE_HISTORY_CHECKER_H_
#define SRC_ANTIPODE_HISTORY_CHECKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/antipode/lineage.h"
#include "src/antipode/write_id.h"

namespace antipode {

class XcyHistoryChecker {
 public:
  struct Violation {
    uint64_t process = 0;
    WriteId required;          // the dependency the process had to observe
    uint64_t observed_version = 0;  // what it actually read (0 = not found)
    std::string ToString() const;
  };

  // The process performed write `id` while carrying `lineage` (the
  // dependency set the write was issued with). The write joins the process's
  // own frontier, as do its carried dependencies.
  void ObserveWrite(uint64_t process, const WriteId& id, const Lineage& lineage);

  // The process read ⟨store, key⟩ and got `observed_version` (0 when the key
  // was missing), along with the lineage stored beside the value (empty for
  // a miss). Checks the read against the process's frontier, then folds the
  // writer's lineage in.
  void ObserveRead(uint64_t process, const std::string& store, const std::string& key,
                   uint64_t observed_version, const Lineage& writer_lineage);

  // A message (or RPC) from one process to another carries the sender's
  // frontier to the receiver (happened-before across processes).
  void ObserveMessage(uint64_t from_process, uint64_t to_process);

  std::vector<Violation> violations() const;
  bool Consistent() const;
  size_t EventCount() const;
  void Reset();

 private:
  using Frontier = std::map<std::pair<std::string, std::string>, uint64_t>;

  static void MergeLineage(Frontier& frontier, const Lineage& lineage);

  mutable std::mutex mu_;
  std::map<uint64_t, Frontier> frontiers_;
  std::vector<Violation> violations_;
  size_t events_ = 0;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_HISTORY_CHECKER_H_
