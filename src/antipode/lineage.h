// Lineage: the set of datastore write identifiers a request's execution tree
// has accumulated (paper §4.1, §6.1). Lineages travel alongside requests (in
// the request-context baggage) and alongside data values (written by shims
// into the underlying datastore), and are what `barrier` enforces.
//
// The dependency set is deliberately small: it is truncated when a lineage
// ends (`stop`, or simply the end of the request) and only crosses lineage
// boundaries through an explicit `transfer` (§5.1).
//
// Representation: a flat vector kept sorted by ⟨store, key, version⟩ with at
// most one entry per ⟨store, key⟩. Lineages stay under ~200 bytes (paper
// §7.4), so a contiguous vector beats a node-based set on every hot path —
// append, transfer, serialize — by avoiding per-element allocations.

#ifndef SRC_ANTIPODE_LINEAGE_H_
#define SRC_ANTIPODE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/antipode/write_id.h"
#include "src/common/status.h"

namespace antipode {

class Lineage {
 public:
  Lineage() = default;
  explicit Lineage(uint64_t id) : id_(id) {}

  // Identifier of the root action this lineage stems from (0 = anonymous).
  uint64_t id() const { return id_; }
  void set_id(uint64_t id) { id_ = id; }

  // Dependency-set operations (Table 2 append / remove / transfer).
  //
  // Append compacts: versions are per-key monotonic, so visibility of a
  // newer version of the same ⟨store, key⟩ implies visibility of every older
  // one — keeping only the highest version per key is lossless for barrier
  // and keeps lineages small on linchpin objects that are written repeatedly.
  void Append(WriteId dep);
  void Remove(const WriteId& dep);
  // Folds `other`'s dependencies into this lineage (with the same per-key
  // compaction), explicitly establishing cross-lineage transitivity.
  void Transfer(const Lineage& other);

  bool Contains(const WriteId& dep) const;
  bool Empty() const { return deps_.empty(); }
  size_t Size() const { return deps_.size(); }
  // Sorted by ⟨store, key, version⟩; dependencies of one store are contiguous.
  const std::vector<WriteId>& deps() const { return deps_; }

  // Dependencies belonging to one datastore (what a shim's `wait` enforces).
  std::vector<WriteId> DepsForStore(const std::string& store) const;

  bool operator==(const Lineage& other) const { return id_ == other.id_ && deps_ == other.deps_; }

  // Wire encoding — its size is the "lineage metadata size" the paper
  // reports (≤200 B in DeathStarBench, ≈200 B average on Alibaba graphs).
  std::string Serialize() const;
  static Result<Lineage> Deserialize(std::string_view data);
  // Computed arithmetically; always equals Serialize().size().
  size_t WireSize() const;

  std::string ToString() const;

 private:
  uint64_t id_ = 0;
  std::vector<WriteId> deps_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_LINEAGE_H_
