// Lineage: the set of datastore write identifiers a request's execution tree
// has accumulated (paper §4.1, §6.1). Lineages travel alongside requests (in
// the request-context baggage) and alongside data values (written by shims
// into the underlying datastore), and are what `barrier` enforces.
//
// The dependency set is deliberately small: it is truncated when a lineage
// ends (`stop`, or simply the end of the request) and only crosses lineage
// boundaries through an explicit `transfer` (§5.1).
//
// Representation: a flat vector kept sorted by ⟨store, key, version⟩ with at
// most one entry per ⟨store, key⟩. Lineages stay under ~200 bytes (paper
// §7.4), so a contiguous vector beats a node-based set on every hot path —
// append, transfer, serialize — by avoiding per-element allocations.

#ifndef SRC_ANTIPODE_LINEAGE_H_
#define SRC_ANTIPODE_LINEAGE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/antipode/visibility_cache.h"
#include "src/antipode/write_id.h"
#include "src/common/small_vector.h"
#include "src/common/status.h"

namespace antipode {

class Lineage {
 public:
  // Inline slots sized for the common request: most calibrated call graphs
  // accumulate a handful of *distinct* ⟨store, key⟩ pairs before compaction,
  // so typical lineages never touch the heap (DESIGN.md §14).
  using DepVector = SmallVector<WriteId, 4>;

  Lineage() = default;
  explicit Lineage(uint64_t id) : id_(id) {}

  // The enforcement memo is a per-object cache of a monotone fact, so copies
  // and moves carry it along (same dependency set ⇒ same facts).
  Lineage(const Lineage& other)
      : id_(other.id_),
        deps_(other.deps_),
        enforced_(other.enforced_.load(std::memory_order_acquire)) {}
  Lineage& operator=(const Lineage& other) {
    id_ = other.id_;
    deps_ = other.deps_;
    enforced_.store(other.enforced_.load(std::memory_order_acquire),
                    std::memory_order_release);
    return *this;
  }
  Lineage(Lineage&& other) noexcept
      : id_(other.id_),
        deps_(std::move(other.deps_)),
        enforced_(other.enforced_.load(std::memory_order_acquire)) {}
  Lineage& operator=(Lineage&& other) noexcept {
    id_ = other.id_;
    deps_ = std::move(other.deps_);
    enforced_.store(other.enforced_.load(std::memory_order_acquire),
                    std::memory_order_release);
    return *this;
  }

  // Identifier of the root action this lineage stems from (0 = anonymous).
  uint64_t id() const { return id_; }
  void set_id(uint64_t id) { id_ = id; }

  // Dependency-set operations (Table 2 append / remove / transfer).
  //
  // Append compacts: versions are per-key monotonic, so visibility of a
  // newer version of the same ⟨store, key⟩ implies visibility of every older
  // one — keeping only the highest version per key is lossless for barrier
  // and keeps lineages small on linchpin objects that are written repeatedly.
  // The dependency's locality scope (WriteId::scope, derived by the shim from
  // the owning store's replica set) rides along: a version raise adopts the
  // newer write's scope, an equal-version re-append intersects, and a zero
  // incoming scope is normalized to all-ones ("unknown").
  void Append(WriteId dep);
  void Remove(const WriteId& dep);
  // Folds `other`'s dependencies into this lineage (with the same per-key
  // compaction), explicitly establishing cross-lineage transitivity. Locality
  // scopes intersect at equal versions (both masks over-approximate where
  // enforcement is still needed); a version conflict keeps the winner's scope.
  void Transfer(const Lineage& other);

  // Drops every dependency the visibility cache proves visible at *all*
  // regions of its store (per-key fact or min-across-regions watermark).
  // Sound because such a dependency can never block any barrier anywhere —
  // barriers only wait on invisible writes, and visibility is monotone — so
  // removing it changes no barrier's outcome, only the bytes the lineage
  // drags through baggage and shim-framed values (the §7.4 metadata size).
  // Dependencies on stores unknown to the cache are kept. Surviving
  // dependencies have their locality scope narrowed region by region — bits
  // clear where the store has no replica or the write is already proven
  // visible — and a scope narrowed to zero is the per-dependency form of
  // "visible everywhere", so the dependency drops. Returns the number
  // pruned (also accumulated in the `lineage.pruned_deps` metric).
  //
  // Opt-in at Serialize/Transfer boundaries (e.g. via
  // LineageApi::SetPruneOnInstall) rather than automatic: tests and
  // debugging tooling legitimately inspect lineages for writes that have
  // long replicated.
  size_t PruneVisibleEverywhere(const VisibilityCache& cache = VisibilityCache::Default());

  // Enforcement memo (DESIGN.md §8): bit r set ⇒ some past barrier verified
  // every current dependency visible in region r's local replicas. Visibility
  // is monotone and the dependency set is immutable between mutations, so the
  // fact can never go stale — a repeat barrier over this lineage at r is O(1).
  // Adding dependencies (Append/Transfer) clears the memo; removing them
  // (Remove/Prune) keeps it, since a verified superset covers any subset.
  // Only set by barriers whose every wait implies local-replica visibility
  // (dynamo-style authority waits do not memoize), so dry-run probes may
  // trust it too.
  bool enforced_at(Region region) const {
    return (enforced_.load(std::memory_order_acquire) >> RegionIndex(region)) & 1u;
  }
  void MarkEnforced(Region region) const {
    enforced_.fetch_or(static_cast<uint8_t>(1u << RegionIndex(region)),
                       std::memory_order_acq_rel);
  }

  bool Contains(const WriteId& dep) const;
  bool Empty() const { return deps_.empty(); }
  size_t Size() const { return deps_.size(); }
  // Sorted by ⟨store, key, version⟩; dependencies of one store are contiguous.
  const DepVector& deps() const { return deps_; }

  // Dependencies belonging to one datastore (what a shim's `wait` enforces).
  std::vector<WriteId> DepsForStore(const std::string& store) const;

  bool operator==(const Lineage& other) const { return id_ == other.id_ && deps_ == other.deps_; }

  // Wire encoding — its size is the "lineage metadata size" the paper
  // reports (≤200 B in DeathStarBench, ≈200 B average on Alibaba graphs).
  // Distinct store names are interned into a front table and dependencies
  // reference them by index: an application has a handful of datastores
  // shared by many services, so deep-graph lineages (20–60 deps) stop paying
  // the store string once per dependency.
  std::string Serialize() const;
  // Appends the wire encoding to `out` (exactly WireSize() bytes) — the
  // single-buffer path Install/FrameValue use with a reused scratch string.
  void SerializeTo(std::string& out) const;
  static Result<Lineage> Deserialize(std::string_view data);
  // Computed arithmetically; always equals Serialize().size().
  size_t WireSize() const;

  std::string ToString() const;

 private:
  uint64_t id_ = 0;
  DepVector deps_;
  // Bitmask over RegionIndex; mutable because it is a memo of externally
  // observable state, not part of the lineage's value (operator== ignores it).
  mutable std::atomic<uint8_t> enforced_{0};
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_LINEAGE_H_
