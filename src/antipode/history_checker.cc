#include "src/antipode/history_checker.h"

#include "src/common/property.h"
#include "src/common/sim.h"

namespace antipode {

std::string XcyHistoryChecker::Violation::ToString() const {
  return "process " + std::to_string(process) + " required " + required.ToString() +
         " but observed v" + std::to_string(observed_version);
}

void XcyHistoryChecker::MergeLineage(Frontier& frontier, const Lineage& lineage) {
  for (const auto& dep : lineage.deps()) {
    auto& required = frontier[{dep.store, dep.key}];
    required = std::max(required, dep.version);
  }
}

void XcyHistoryChecker::ObserveWrite(uint64_t process, const WriteId& id,
                                     const Lineage& lineage) {
  std::lock_guard<std::mutex> lock(mu_);
  events_++;
  Frontier& frontier = frontiers_[process];
  MergeLineage(frontier, lineage);
  auto& required = frontier[{id.store, id.key}];
  required = std::max(required, id.version);
}

void XcyHistoryChecker::ObserveRead(uint64_t process, const std::string& store,
                                    const std::string& key, uint64_t observed_version,
                                    const Lineage& writer_lineage) {
  std::lock_guard<std::mutex> lock(mu_);
  events_++;
  Frontier& frontier = frontiers_[process];
  auto it = frontier.find({store, key});
  if (it != frontier.end() && observed_version < it->second) {
    violations_.push_back(
        Violation{process, WriteId{store, key, it->second}, observed_version});
  }
  // The paper's core claim as a live property. Only asserted in simulation,
  // where every observed history runs under enforcement — threaded baselines
  // (and the checker's own unit tests) produce violations on purpose.
  if (SimScheduler::Active() != nullptr) {
    ANTIPODE_ALWAYS(
        "xcy.read_not_stale", it == frontier.end() || observed_version >= it->second, [&] {
          return Violation{process, WriteId{store, key, it->second}, observed_version}
              .ToString();
        });
  }
  // Rule 2: the read establishes dependencies on the writer's whole lineage
  // (plus the write itself), carried forward by program order (rules 1+3).
  MergeLineage(frontier, writer_lineage);
  if (observed_version > 0) {
    auto& required = frontier[{store, key}];
    required = std::max(required, observed_version);
  }
}

void XcyHistoryChecker::ObserveMessage(uint64_t from_process, uint64_t to_process) {
  std::lock_guard<std::mutex> lock(mu_);
  events_++;
  const Frontier& from = frontiers_[from_process];
  Frontier& to = frontiers_[to_process];
  for (const auto& [key, version] : from) {
    auto& required = to[key];
    required = std::max(required, version);
  }
}

std::vector<XcyHistoryChecker::Violation> XcyHistoryChecker::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

bool XcyHistoryChecker::Consistent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.empty();
}

size_t XcyHistoryChecker::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void XcyHistoryChecker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  frontiers_.clear();
  violations_.clear();
  events_ = 0;
}

}  // namespace antipode
