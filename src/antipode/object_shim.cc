#include "src/antipode/object_shim.h"

#include "src/antipode/framing.h"

namespace antipode {

Lineage ObjectShim::PutObject(Region region, const std::string& bucket, const std::string& key,
                              std::string_view value, Lineage lineage) {
  const uint64_t version = objects_->PutObject(region, bucket, key, FrameValue(lineage, value));
  lineage.Append(MakeWriteId(ObjectStore::ObjectKey(bucket, key), version));
  return lineage;
}

Result<ObjectShim::ReadResult> ObjectShim::GetObject(Region region, const std::string& bucket,
                                                     const std::string& key) const {
  const std::string object_key = ObjectStore::ObjectKey(bucket, key);
  auto entry = objects_->Get(region, object_key);
  if (!entry.has_value() || entry->bytes.empty()) {
    return Status::NotFound("object read miss: " + object_key);
  }
  ReadResult out;
  FramedValue framed = UnframeValue(entry->bytes);
  out.value = std::move(framed.value);
  out.lineage = std::move(framed.lineage);
  out.lineage.Append(MakeWriteId(object_key, entry->version));
  return out;
}

Status ObjectShim::PutObjectCtx(Region region, const std::string& bucket, const std::string& key,
                                std::string_view value) {
  Lineage lineage = LineageApi::Current().value_or(Lineage());
  LineageApi::Install(PutObject(region, bucket, key, value, std::move(lineage)));
  return Status::Ok();
}

Result<std::string> ObjectShim::GetObjectCtx(Region region, const std::string& bucket,
                                             const std::string& key) const {
  auto result = GetObject(region, bucket, key);
  if (!result.ok()) {
    return result.status();
  }
  LineageApi::Transfer(result->lineage);
  return std::move(result->value);
}

}  // namespace antipode
