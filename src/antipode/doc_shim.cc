#include "src/antipode/doc_shim.h"

#include "src/antipode/framing.h"

namespace antipode {

Lineage DocShim::InsertDoc(Region region, const std::string& collection, const std::string& id,
                           Document doc, Lineage lineage) {
  doc.Set(kLineageField, Value(lineage.Serialize()));
  const uint64_t version = docs_->InsertDoc(region, collection, id, doc);
  lineage.Append(MakeWriteId(DocStore::DocKey(collection, id), version));
  return lineage;
}

Result<DocShim::ReadResult> DocShim::FindById(Region region, const std::string& collection,
                                              const std::string& id) const {
  const std::string key = DocStore::DocKey(collection, id);
  auto entry = docs_->Get(region, key);
  if (!entry.has_value() || entry->bytes.empty()) {
    return Status::NotFound("doc read miss: " + key);
  }
  auto doc = Document::Deserialize(entry->bytes);
  if (!doc.ok()) {
    return doc.status();
  }
  ReadResult out;
  auto lineage_field = doc->Get(kLineageField);
  if (lineage_field.has_value() && lineage_field->is_string()) {
    auto lineage = Lineage::Deserialize(lineage_field->as_string());
    if (lineage.ok()) {
      out.lineage = std::move(*lineage);
    }
  }
  doc->Erase(kLineageField);
  out.lineage.Append(MakeWriteId(key, entry->version));
  out.doc = std::move(*doc);
  return out;
}

Status DocShim::InsertDocCtx(Region region, const std::string& collection, const std::string& id,
                             Document doc) {
  Lineage lineage = LineageApi::Current().value_or(Lineage());
  LineageApi::Install(InsertDoc(region, collection, id, std::move(doc), std::move(lineage)));
  return Status::Ok();
}

Result<Document> DocShim::FindByIdCtx(Region region, const std::string& collection,
                                      const std::string& id) const {
  auto result = FindById(region, collection, id);
  if (!result.ok()) {
    return result.status();
  }
  LineageApi::Transfer(result->lineage);
  return std::move(result->doc);
}

}  // namespace antipode
