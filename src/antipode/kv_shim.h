// Shim for the Redis-like KvStore (paper §6.4: no shim exceeded 50 LoC; this
// one is in the same spirit — framing, id reconstruction, watermark wait).

#ifndef SRC_ANTIPODE_KV_SHIM_H_
#define SRC_ANTIPODE_KV_SHIM_H_

#include <string>

#include "src/antipode/lineage_api.h"
#include "src/antipode/watermark_shim.h"
#include "src/store/kv_store.h"

namespace antipode {

class KvShim : public WatermarkShim {
 public:
  explicit KvShim(KvStore* store) : WatermarkShim(store), kv_(store) {}

  struct ReadResult {
    std::string value;
    Lineage lineage;  // ℒ(writer) including the write's own identifier
  };

  // ℒ' ← write(k, ⟨v, ℒ⟩): stores value+lineage, returns ℒ extended with the
  // new write identifier.
  Lineage Write(Region region, const std::string& key, std::string_view value, Lineage lineage);

  // ⟨v, ℒ⟩ ← read(k). NotFound when the key is absent at `region`.
  Result<ReadResult> Read(Region region, const std::string& key) const;

  // Context-bound variants: Write uses and updates the current request
  // lineage; Read transfers the writer's lineage into the current context
  // (the reads-from-lineage rule of §4.2).
  Status WriteCtx(Region region, const std::string& key, std::string_view value);
  Result<std::string> ReadCtx(Region region, const std::string& key) const;

 private:
  KvStore* kv_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_KV_SHIM_H_
