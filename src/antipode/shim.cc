#include "src/antipode/shim.h"

namespace antipode {

Status Shim::WaitLineage(Region region, const Lineage& lineage, Duration timeout) {
  const TimePoint deadline = timeout == Duration::max()
                                 ? TimePoint::max()
                                 : SystemClock::Instance().Now() + timeout;
  for (const auto& dep : lineage.DepsForStore(store_name())) {
    Duration remaining = Duration::max();
    if (deadline != TimePoint::max()) {
      const TimePoint now = SystemClock::Instance().Now();
      if (now >= deadline) {
        return Status::DeadlineExceeded("lineage wait: " + dep.ToString());
      }
      remaining = std::chrono::duration_cast<Duration>(deadline - now);
    }
    Status status = Wait(region, dep, remaining);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

ShimRegistry& ShimRegistry::Default() {
  static auto* registry = new ShimRegistry();
  return *registry;
}

void ShimRegistry::Register(Shim* shim) {
  std::lock_guard<std::mutex> lock(mu_);
  shims_[shim->store_name()] = shim;
}

void ShimRegistry::Unregister(const std::string& store_name) {
  std::lock_guard<std::mutex> lock(mu_);
  shims_.erase(store_name);
}

Shim* ShimRegistry::Lookup(const std::string& store_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shims_.find(store_name);
  return it == shims_.end() ? nullptr : it->second;
}

void ShimRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  shims_.clear();
}

std::vector<std::string> ShimRegistry::RegisteredStores() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(shims_.size());
  for (const auto& [name, shim] : shims_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace antipode
