#include "src/antipode/shim.h"

namespace antipode {

Status Shim::WaitLineage(Region region, const Lineage& lineage,
                         const LineageWaitOptions& options) {
  const TimePoint deadline = options.EffectiveDeadline();
  for (const auto& dep : lineage.DepsForStore(store_name())) {
    if (deadline != TimePoint::max() && RemainingBudget(deadline) == Duration::zero()) {
      return Status::DeadlineExceeded("lineage wait: " + dep.ToString());
    }
    Status status = Wait(region, dep, RemainingBudget(deadline));
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

ThreadPool& Shim::BlockingWaitPool() {
  static auto* pool = new ThreadPool(16, "shim-wait");
  return *pool;
}

void Shim::WaitAsync(Region region, const WriteId& id, TimePoint deadline, WaitCallback done) {
  // Compatibility adapter: park the blocking Wait on the shared pool. The
  // remaining budget is derived from the caller's single shared deadline.
  auto done_ptr = std::make_shared<WaitCallback>(std::move(done));
  const bool submitted = BlockingWaitPool().Submit([this, region, id, deadline, done_ptr] {
    (*done_ptr)(Wait(region, id, RemainingBudget(deadline)));
  });
  if (!submitted) {
    (*done_ptr)(Status::Unavailable("shim wait pool shut down"));
  }
}

void Shim::WaitFrontierAsync(Region region, uint64_t cut_hlc, TimePoint deadline,
                             WaitCallback done) {
  (void)region;
  (void)cut_hlc;
  (void)deadline;
  done(Status::Unimplemented("shim does not publish a stabilization frontier: " + store_name()));
}

void Shim::WaitManyAsync(Region region, std::span<const WriteId> ids, TimePoint deadline,
                         WaitCallback done) {
  if (ids.empty()) {
    done(Status::Ok());
    return;
  }
  // Default adapter: fan out to per-id WaitAsync and gather. The launch token
  // (pending starts at ids.size() + 1) keeps `done` from firing while waits
  // are still being issued.
  struct Gather {
    std::atomic<size_t> pending;
    std::mutex mu;
    Status first_error = Status::Ok();
    WaitCallback done;
    explicit Gather(size_t n) : pending(n) {}
    void Complete(Status status) {
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = std::move(status);
      }
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Status final = Status::Ok();
        {
          std::lock_guard<std::mutex> lock(mu);
          final = first_error;
        }
        done(std::move(final));
      }
    }
  };
  auto gather = std::make_shared<Gather>(ids.size() + 1);
  gather->done = std::move(done);
  for (const WriteId& id : ids) {
    WaitAsync(region, id, deadline,
              [gather](Status status) { gather->Complete(std::move(status)); });
  }
  gather->Complete(Status::Ok());  // release the launch token
}

std::string_view EnforcementBackendKindName(EnforcementBackendKind kind) {
  switch (kind) {
    case EnforcementBackendKind::kInherit:
      return "inherit";
    case EnforcementBackendKind::kLineage:
      return "lineage";
    case EnforcementBackendKind::kStableFrontier:
      return "stable_frontier";
  }
  return "unknown";
}

ShimRegistry& ShimRegistry::Default() {
  static auto* registry = new ShimRegistry();
  return *registry;
}

Status ShimRegistry::Register(Shim* shim) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = shims_.emplace(shim->store_name(), shim);
  if (!inserted) {
    if (!options_.allow_replace) {
      return Status::AlreadyExists("shim already registered for store: " + shim->store_name());
    }
    it->second = shim;
  }
  return Status::Ok();
}

void ShimRegistry::Unregister(const std::string& store_name) {
  std::lock_guard<std::mutex> lock(mu_);
  shims_.erase(store_name);
}

Shim* ShimRegistry::Lookup(const std::string& store_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shims_.find(store_name);
  return it == shims_.end() ? nullptr : it->second;
}

void ShimRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  shims_.clear();
}

std::vector<std::string> ShimRegistry::RegisteredStores() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(shims_.size());
  for (const auto& [name, shim] : shims_) {
    out.push_back(name);
  }
  return out;
}

void ShimRegistry::ForEach(const std::function<void(Shim*)>& fn) const {
  // Snapshot under the lock, call outside it: `fn` may complete waits inline
  // (e.g. an already-covered frontier wait) and those completions must not run
  // under the registry mutex.
  std::vector<Shim*> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(shims_.size());
    for (const auto& [name, shim] : shims_) {
      snapshot.push_back(shim);
    }
  }
  for (Shim* shim : snapshot) {
    fn(shim);
  }
}

}  // namespace antipode
