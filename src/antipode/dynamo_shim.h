// Shim for the DynamoDB-like store. Dynamo is eventually consistent with no
// replication watermark a client could wait on, so — exactly as the paper
// does (§6.4) — `wait` is implemented with the store's strongly consistent
// reads: a strong read observes the authoritative copy, after which the
// caller can keep reading consistently via `GetItemConsistentCtx`.

#ifndef SRC_ANTIPODE_DYNAMO_SHIM_H_
#define SRC_ANTIPODE_DYNAMO_SHIM_H_

#include <optional>
#include <string>

#include "src/antipode/lineage_api.h"
#include "src/antipode/shim.h"
#include "src/store/dynamo_store.h"

namespace antipode {

class DynamoShim : public Shim {
 public:
  explicit DynamoShim(DynamoStore* store) : dynamo_(store) {}

  const std::string& store_name() const override { return dynamo_->name(); }

  // Strong-read based wait: probes the authoritative copy (one WAN round
  // trip) instead of blocking on local replication.
  Status Wait(Region region, const WriteId& id, Duration timeout) override;
  // Async variant: each strong-read probe runs on the shared wait pool and
  // re-arms itself through the timer service, so between probes no thread is
  // parked. The shim must outlive all outstanding waits.
  void WaitAsync(Region region, const WriteId& id, TimePoint deadline,
                 WaitCallback done) override;
  bool IsVisible(Region region, const WriteId& id) override;

  // Cache hits (fed by replica applies) may still skip strong-read waits:
  // locally visible implies the authority has the write, since the authority
  // is updated synchronously at Put before any shipment.
  std::shared_ptr<StoreVisibility> visibility() const override { return dynamo_->visibility(); }

  // ...but wait completions must not feed the cache: a successful strong read
  // proves the authority has the write, not the local replica, and IsVisible
  // (the dry-run/checker surface) is local-replica semantics here.
  bool wait_implies_visibility() const override { return false; }

  // Scope from the replica footprint, like the watermark shims: a region with
  // no replica of this table can never read (even strongly — the item simply
  // is not served there) so it never needs enforcement.
  RegionMask region_scope() const override { return dynamo_->region_mask(); }

  struct ReadResult {
    Document item;  // lineage field stripped
    Lineage lineage;
  };

  Result<Lineage> PutItem(Region region, const std::string& table, const std::string& key,
                          Document item, Lineage lineage);
  // NotFound when the item is absent; InvalidArgument when the stored bytes
  // do not decode as a document.
  Result<ReadResult> GetItem(Region region, const std::string& table,
                             const std::string& key) const;
  Result<ReadResult> GetItemConsistent(Region region, const std::string& table,
                                       const std::string& key) const;

  Status PutItemCtx(Region region, const std::string& table, const std::string& key,
                    Document item);
  Result<Document> GetItemCtx(Region region, const std::string& table,
                              const std::string& key) const;
  Result<Document> GetItemConsistentCtx(Region region, const std::string& table,
                                        const std::string& key) const;

 private:
  struct ProbeState {
    Region region;
    WriteId id;
    TimePoint deadline;
    WaitCallback done;
  };
  // One strong-read probe; completes or re-arms itself via the timer service.
  void ProbeLoop(const std::shared_ptr<ProbeState>& state);

  Result<ReadResult> DecodeEntry(const std::optional<StoredEntry>& entry,
                                 const std::string& key) const;

  DynamoStore* dynamo_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_DYNAMO_SHIM_H_
