#include "src/antipode/lineage.h"

#include <algorithm>
#include <tuple>

#include "src/common/logging.h"
#include "src/common/serialization.h"

namespace antipode {
namespace {

// Orders by ⟨store, key⟩ only — the compaction invariant guarantees at most
// one version per pair, so this is the lookup order for Append/Transfer.
bool StoreKeyLess(const WriteId& a, const WriteId& b) {
  return std::tie(a.store, a.key) < std::tie(b.store, b.key);
}

bool SameStoreKey(const WriteId& a, const WriteId& b) {
  return a.store == b.store && a.key == b.key;
}

}  // namespace

void Lineage::Append(WriteId dep) {
  auto it = std::lower_bound(deps_.begin(), deps_.end(), dep, StoreKeyLess);
  if (it != deps_.end() && SameStoreKey(*it, dep)) {
    if (it->version < dep.version) {
      it->version = dep.version;
    }
    return;
  }
  deps_.insert(it, std::move(dep));
}

void Lineage::Remove(const WriteId& dep) {
  auto it = std::lower_bound(deps_.begin(), deps_.end(), dep);
  if (it != deps_.end() && *it == dep) {
    deps_.erase(it);
  }
}

bool Lineage::Contains(const WriteId& dep) const {
  return std::binary_search(deps_.begin(), deps_.end(), dep);
}

void Lineage::Transfer(const Lineage& other) {
  if (other.deps_.empty()) {
    return;
  }
  if (deps_.empty()) {
    deps_ = other.deps_;
    return;
  }
  // Linear merge of two sorted, per-key-compacted runs.
  std::vector<WriteId> merged;
  merged.reserve(deps_.size() + other.deps_.size());
  auto a = deps_.begin();
  auto b = other.deps_.begin();
  while (a != deps_.end() && b != other.deps_.end()) {
    if (SameStoreKey(*a, *b)) {
      WriteId dep = *a;
      dep.version = std::max(a->version, b->version);
      merged.push_back(std::move(dep));
      ++a;
      ++b;
    } else if (StoreKeyLess(*a, *b)) {
      merged.push_back(*a++);
    } else {
      merged.push_back(*b++);
    }
  }
  merged.insert(merged.end(), a, deps_.end());
  merged.insert(merged.end(), b, other.deps_.end());
  deps_ = std::move(merged);
}

std::vector<WriteId> Lineage::DepsForStore(const std::string& store) const {
  // Store runs are contiguous in the sorted vector.
  auto lo = std::lower_bound(deps_.begin(), deps_.end(), store,
                             [](const WriteId& dep, const std::string& s) { return dep.store < s; });
  auto hi = lo;
  while (hi != deps_.end() && hi->store == store) {
    ++hi;
  }
  return std::vector<WriteId>(lo, hi);
}

std::string Lineage::Serialize() const {
  Serializer s;
  s.WriteVarint(id_);
  s.WriteVarint(deps_.size());
  for (const auto& dep : deps_) {
    dep.SerializeTo(s);
  }
  return s.Release();
}

size_t Lineage::WireSize() const {
  size_t n = VarintWireSize(id_) + VarintWireSize(deps_.size());
  for (const auto& dep : deps_) {
    n += dep.WireSize();
  }
  return n;
}

Result<Lineage> Lineage::Deserialize(std::string_view data) {
  Deserializer d(data);
  auto id = d.ReadVarint();
  if (!id.ok()) {
    return id.status();
  }
  auto count = d.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  Lineage lineage(*id);
  // Every serialized dependency is >= 3 bytes, which bounds a trustworthy
  // reserve even when `count` is adversarial garbage.
  lineage.deps_.reserve(std::min<uint64_t>(*count, d.Remaining() / 3 + 1));
  bool canonical = true;
  for (uint64_t i = 0; i < *count; ++i) {
    auto dep = WriteId::DeserializeFrom(d);
    if (!dep.ok()) {
      return dep.status();
    }
    // Trusted fast path: our own Serialize emits deps sorted by ⟨store, key⟩
    // with one version per pair, so an in-order wire can be appended directly
    // instead of re-running the O(log n) compaction probe per element.
    if (canonical &&
        (lineage.deps_.empty() || StoreKeyLess(lineage.deps_.back(), *dep))) {
      lineage.deps_.push_back(std::move(*dep));
    } else {
      canonical = false;
      lineage.Append(std::move(*dep));
    }
  }
#ifndef NDEBUG
  if (!canonical) {
    LOG_WARNING << "Lineage::Deserialize: wire not in canonical order (foreign encoder?); "
                   "fell back to compacting inserts";
  }
#endif
  return lineage;
}

std::string Lineage::ToString() const {
  std::string out = "Lineage{id=" + std::to_string(id_) + ", deps=[";
  bool first = true;
  for (const auto& dep : deps_) {
    if (!first) {
      out += ", ";
    }
    out += dep.ToString();
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace antipode
