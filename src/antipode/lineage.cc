#include "src/antipode/lineage.h"

#include <algorithm>
#include <tuple>

#include "src/common/serialization.h"
#include "src/obs/metrics.h"

namespace antipode {
namespace {

// Orders by ⟨store, key⟩ only — the compaction invariant guarantees at most
// one version per pair, so this is the lookup order for Append/Transfer.
bool StoreKeyLess(const WriteId& a, const WriteId& b) {
  return std::tie(a.store, a.key) < std::tie(b.store, b.key);
}

bool SameStoreKey(const WriteId& a, const WriteId& b) {
  return a.store == b.store && a.key == b.key;
}

}  // namespace

void Lineage::Append(WriteId dep) {
  if (dep.scope == 0) {
    // Zero would claim "needs enforcement nowhere" — a caller that cleared
    // every bit meant "unknown", so normalize to the conservative default
    // (also keeps the no-zero-scope wire invariant).
    dep.scope = kAllRegionsMask;
  }
  auto it = std::lower_bound(deps_.begin(), deps_.end(), dep, StoreKeyLess);
  if (it != deps_.end() && SameStoreKey(*it, dep)) {
    if (it->version < dep.version) {
      it->version = dep.version;
      it->scope = dep.scope;  // a newer write restarts from its store's scope
      enforced_.store(0, std::memory_order_release);  // newer version unverified
    } else if (it->version == dep.version) {
      // Same write seen twice: each mask over-approximates where enforcement
      // may still be needed, so the intersection is sound. Never narrows to
      // zero silently — a write enforced everywhere is simply droppable, but
      // Append is not a pruning point, so keep the broader claim instead.
      const RegionMask both = it->scope & dep.scope;
      it->scope = both != 0 ? both : it->scope;
    }
    return;
  }
  deps_.insert(it, std::move(dep));
  enforced_.store(0, std::memory_order_release);
}

void Lineage::Remove(const WriteId& dep) {
  auto it = std::lower_bound(deps_.begin(), deps_.end(), dep);
  if (it != deps_.end() && *it == dep) {
    deps_.erase(it);
  }
}

bool Lineage::Contains(const WriteId& dep) const {
  return std::binary_search(deps_.begin(), deps_.end(), dep);
}

void Lineage::Transfer(const Lineage& other) {
  if (other.deps_.empty()) {
    return;
  }
  if (deps_.empty()) {
    deps_ = other.deps_;
    enforced_.store(other.enforced_.load(std::memory_order_acquire),
                    std::memory_order_release);
    return;
  }
  // The union is enforced at a region only where both inputs were: every
  // merged dependency (at its max version) comes from one of the two.
  enforced_.fetch_and(other.enforced_.load(std::memory_order_acquire),
                      std::memory_order_acq_rel);
  // Linear merge of two sorted, per-key-compacted runs.
  DepVector merged;
  merged.reserve(deps_.size() + other.deps_.size());
  auto a = deps_.begin();
  auto b = other.deps_.begin();
  while (a != deps_.end() && b != other.deps_.end()) {
    if (SameStoreKey(*a, *b)) {
      WriteId dep = *a;
      if (a->version == b->version) {
        // Same write from two lineages: both masks are sound
        // over-approximations, so intersect — but keep at least one claim
        // (see Append) rather than emitting a zero scope.
        const RegionMask both = a->scope & b->scope;
        dep.scope = both != 0 ? both : a->scope;
      } else if (a->version < b->version) {
        dep.version = b->version;
        dep.scope = b->scope;  // the winning (newer) write carries its scope
      }
      merged.push_back(std::move(dep));
      ++a;
      ++b;
    } else if (StoreKeyLess(*a, *b)) {
      merged.push_back(*a++);
    } else {
      merged.push_back(*b++);
    }
  }
  merged.insert(merged.end(), a, deps_.end());
  merged.insert(merged.end(), b, other.deps_.end());
  deps_ = std::move(merged);
}

size_t Lineage::PruneVisibleEverywhere(const VisibilityCache& cache) {
  if (deps_.empty()) {
    return 0;
  }
  // Stores are contiguous in the sorted vector: one cache lookup per store
  // run, then a per-dependency probe. Compact in place.
  std::shared_ptr<StoreVisibility> vis;
  const std::string* current_store = nullptr;
  auto keep = deps_.begin();
  for (auto& dep : deps_) {
    if (current_store == nullptr || dep.store != *current_store) {
      current_store = &dep.store;
      vis = cache.Find(dep.store);
    }
    if (vis != nullptr) {
      // Narrow the locality scope region by region: a bit clears when the
      // store has no replica there (nothing of this write is readable at that
      // region) or the cache proves the write visible there. Visibility is
      // monotone, so a cleared bit stays sound forever; a scope narrowed to
      // zero is the per-dependency form of "visible everywhere" — drop it.
      RegionMask scope = dep.scope & vis->tracked_mask();
      for (int r = 0; r < kNumRegions; ++r) {
        const Region region = static_cast<Region>(r);
        if ((scope & RegionBit(region)) != 0 &&
            vis->IsVisible(region, dep.key, dep.version)) {
          scope = static_cast<RegionMask>(scope & ~RegionBit(region));
        }
      }
      if (scope == 0) {
        continue;  // prune
      }
      dep.scope = scope;
    }
    if (&*keep != &dep) {
      *keep = std::move(dep);
    }
    ++keep;
  }
  const size_t pruned = static_cast<size_t>(deps_.end() - keep);
  deps_.erase(keep, deps_.end());
  if (pruned != 0) {
    static Counter* const pruned_deps = MetricsRegistry::Default().GetCounter("lineage.pruned_deps");
    pruned_deps->Increment(pruned);
  }
  return pruned;
}

std::vector<WriteId> Lineage::DepsForStore(const std::string& store) const {
  // Store runs are contiguous in the sorted vector.
  auto lo = std::lower_bound(deps_.begin(), deps_.end(), store,
                             [](const WriteId& dep, const std::string& s) { return dep.store < s; });
  auto hi = lo;
  while (hi != deps_.end() && hi->store == store) {
    ++hi;
  }
  return std::vector<WriteId>(lo, hi);
}

std::string Lineage::Serialize() const {
  std::string out;
  out.reserve(WireSize());
  SerializeTo(out);
  return out;
}

void Lineage::SerializeTo(std::string& out) const {
  out.reserve(out.size() + WireSize());
  AppendVarint(out, id_);
  // Interned store table: deps_ is sorted by ⟨store, key⟩, so distinct
  // stores form contiguous runs in sorted order — one pass counts them, one
  // emits them, and the table is canonically sorted for free. Dependencies
  // then reference their store by table index (a single-byte varint for any
  // realistic datastore count) instead of repeating the name.
  size_t num_stores = 0;
  const std::string* prev = nullptr;
  for (const auto& dep : deps_) {
    if (prev == nullptr || dep.store != *prev) {
      prev = &dep.store;
      ++num_stores;
    }
  }
  AppendVarint(out, num_stores);
  prev = nullptr;
  for (const auto& dep : deps_) {
    if (prev == nullptr || dep.store != *prev) {
      prev = &dep.store;
      AppendLengthPrefixed(out, dep.store);
    }
  }
  AppendVarint(out, deps_.size());
  prev = nullptr;
  size_t index = 0;
  for (const auto& dep : deps_) {
    if (prev != nullptr && dep.store != *prev) {
      ++index;
    }
    prev = &dep.store;
    AppendVarint(out, index);
    AppendLengthPrefixed(out, dep.key);
    AppendVarint(out, dep.version);
    // Locality scope rides the lineage wire (not WriteId's own encoding,
    // which other call sites use scope-free): one varint — always a single
    // byte, since the mask fits kNumRegions bits — after each dependency.
    AppendVarint(out, dep.scope);
  }
}

size_t Lineage::WireSize() const {
  size_t n = VarintWireSize(id_) + VarintWireSize(deps_.size());
  size_t num_stores = 0;
  size_t index = 0;
  const std::string* prev = nullptr;
  for (const auto& dep : deps_) {
    if (prev == nullptr || dep.store != *prev) {
      if (prev != nullptr) {
        ++index;
      }
      prev = &dep.store;
      ++num_stores;
      n += VarintWireSize(dep.store.size()) + dep.store.size();
    }
    n += VarintWireSize(index) + VarintWireSize(dep.key.size()) + dep.key.size() +
         VarintWireSize(dep.version) + VarintWireSize(dep.scope);
  }
  n += VarintWireSize(num_stores);
  return n;
}

Result<Lineage> Lineage::Deserialize(std::string_view data) {
  Deserializer d(data);
  auto id = d.ReadVarint();
  if (!id.ok()) {
    return Status::InvalidArgument("lineage wire truncated in id: " +
                                   std::string(id.status().message()));
  }
  auto store_count = d.ReadVarint();
  if (!store_count.ok()) {
    return Status::InvalidArgument("lineage wire truncated in store table size: " +
                                   std::string(store_count.status().message()));
  }
  // Each table entry costs at least its one-byte length prefix, which bounds
  // a trustworthy reserve even when the count is adversarial garbage.
  if (*store_count > d.Remaining()) {
    return Status::InvalidArgument("lineage wire store table size " +
                                   std::to_string(*store_count) + " exceeds remaining payload");
  }
  std::vector<std::string> stores;
  stores.reserve(*store_count);
  for (uint64_t i = 0; i < *store_count; ++i) {
    auto store = d.ReadString();
    if (!store.ok()) {
      return Status::InvalidArgument("lineage wire truncated in store table entry " +
                                     std::to_string(i) + " of " + std::to_string(*store_count) +
                                     ": " + std::string(store.status().message()));
    }
    // Serialize interns stores in sorted first-appearance order over a
    // sorted dependency vector, so the table is strictly increasing; an
    // unsorted or duplicated entry marks a corrupt or foreign wire.
    if (!stores.empty() && !(stores.back() < *store)) {
      return Status::InvalidArgument("lineage wire store table not canonical at entry " +
                                     std::to_string(i) + " (\"" + *store + "\")");
    }
    stores.push_back(std::move(*store));
  }
  auto count = d.ReadVarint();
  if (!count.ok()) {
    return Status::InvalidArgument("lineage wire truncated in dependency count: " +
                                   std::string(count.status().message()));
  }
  Lineage lineage(*id);
  // Every serialized dependency is >= 4 bytes (a store index, a key length
  // prefix, a version, and a scope), which bounds the reserve like above.
  lineage.deps_.reserve(std::min<uint64_t>(*count, d.Remaining() / 4 + 1));
  uint64_t prev_index = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto index = d.ReadVarint();
    if (!index.ok()) {
      return Status::InvalidArgument("lineage wire truncated in store index of dependency " +
                                     std::to_string(i) + " of " + std::to_string(*count) + ": " +
                                     std::string(index.status().message()));
    }
    if (*index >= *store_count) {
      return Status::InvalidArgument("lineage wire store index " + std::to_string(*index) +
                                     " at dependency " + std::to_string(i) +
                                     " is outside the " + std::to_string(*store_count) +
                                     "-entry store table");
    }
    // Canonical index sequence: starts at 0 and advances by at most one —
    // anything else means the dependency runs are unsorted across stores or
    // the table carries entries no dependency references.
    if (i == 0 ? *index != 0 : (*index != prev_index && *index != prev_index + 1)) {
      return Status::InvalidArgument("lineage wire not canonical: store index " +
                                     std::to_string(*index) + " at dependency " +
                                     std::to_string(i) + " after index " +
                                     std::to_string(prev_index));
    }
    auto key = d.ReadString();
    if (!key.ok()) {
      // A short read is a framing error of the lineage blob, not a range
      // problem of one field — report it as such, with position context.
      return Status::InvalidArgument("lineage wire truncated at dependency " +
                                     std::to_string(i) + " of " + std::to_string(*count) + ": " +
                                     std::string(key.status().message()));
    }
    auto version = d.ReadVarint();
    if (!version.ok()) {
      return Status::InvalidArgument("lineage wire truncated in version of dependency " +
                                     std::to_string(i) + " of " + std::to_string(*count) + ": " +
                                     std::string(version.status().message()));
    }
    auto scope = d.ReadVarint();
    if (!scope.ok()) {
      return Status::InvalidArgument("lineage wire truncated in region scope of dependency " +
                                     std::to_string(i) + " of " + std::to_string(*count) + ": " +
                                     std::string(scope.status().message()));
    }
    WriteId dep{stores[*index], std::move(*key), *version};
    // A scope must name at least one real region: zero claims "enforce
    // nowhere" (such a dependency is never serialized — it is pruned), and
    // bits beyond kNumRegions would round-trip into masks no barrier can
    // interpret. Both mark a corrupt or foreign wire.
    if (*scope == 0) {
      return Status::InvalidArgument("lineage wire has zero region scope at dependency " +
                                     std::to_string(i) + " (" + dep.ToString() + ")");
    }
    if ((*scope & ~static_cast<uint64_t>(kAllRegionsMask)) != 0) {
      return Status::InvalidArgument(
          "lineage wire region scope " + std::to_string(*scope) + " at dependency " +
          std::to_string(i) + " has bits beyond the " + std::to_string(kNumRegions) +
          " known regions");
    }
    dep.scope = static_cast<RegionMask>(*scope);
    // Our own Serialize emits deps strictly sorted by ⟨store, key⟩ with one
    // version per pair, which is what lets this loop append directly instead
    // of re-running the O(log n) compaction probe per element. Anything
    // unsorted or duplicated is therefore a corrupt or foreign wire —
    // rejected, not silently repaired: repairing would let a malformed blob
    // round-trip into a "valid" lineage that other replicas decode
    // differently than this one intended. (Cross-store order is already
    // pinned by the index sequence; within a store the keys must climb.)
    if (*index == prev_index && !lineage.deps_.empty() &&
        !(lineage.deps_.back().key < dep.key)) {
      const bool duplicate = lineage.deps_.back().key == dep.key;
      return Status::InvalidArgument(
          std::string("lineage wire not canonical: ") +
          (duplicate ? "duplicate ⟨store, key⟩ pair " : "out-of-order dependency ") +
          dep.ToString() + " at index " + std::to_string(i));
    }
    prev_index = *index;
    lineage.deps_.push_back(std::move(dep));
  }
  if (*count == 0 ? *store_count != 0 : prev_index + 1 != *store_count) {
    return Status::InvalidArgument("lineage wire store table has unreferenced entries (" +
                                   std::to_string(*store_count) + " stores, " +
                                   std::to_string(*count) + " dependencies)");
  }
  if (d.Remaining() != 0) {
    return Status::InvalidArgument("lineage wire has " + std::to_string(d.Remaining()) +
                                   " trailing bytes after " + std::to_string(*count) +
                                   " dependencies");
  }
  return lineage;
}

std::string Lineage::ToString() const {
  std::string out = "Lineage{id=" + std::to_string(id_) + ", deps=[";
  bool first = true;
  for (const auto& dep : deps_) {
    if (!first) {
      out += ", ";
    }
    out += dep.ToString();
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace antipode
