#include "src/antipode/lineage.h"

#include "src/common/serialization.h"

namespace antipode {

void Lineage::Append(WriteId dep) {
  // Locate an existing entry for the same ⟨store, key⟩: entries are ordered
  // by (store, key, version), so it is the predecessor range of
  // (store, key, +inf).
  auto it = deps_.lower_bound(WriteId{dep.store, dep.key, 0});
  if (it != deps_.end() && it->store == dep.store && it->key == dep.key) {
    if (it->version >= dep.version) {
      return;  // an equal-or-newer version already subsumes this dependency
    }
    deps_.erase(it);
  }
  deps_.insert(std::move(dep));
}

void Lineage::Transfer(const Lineage& other) {
  for (const auto& dep : other.deps_) {
    Append(dep);
  }
}

std::vector<WriteId> Lineage::DepsForStore(const std::string& store) const {
  std::vector<WriteId> out;
  for (const auto& dep : deps_) {
    if (dep.store == store) {
      out.push_back(dep);
    }
  }
  return out;
}

std::string Lineage::Serialize() const {
  Serializer s;
  s.WriteVarint(id_);
  s.WriteVarint(deps_.size());
  for (const auto& dep : deps_) {
    dep.SerializeTo(s);
  }
  return s.Release();
}

Result<Lineage> Lineage::Deserialize(std::string_view data) {
  Deserializer d(data);
  auto id = d.ReadVarint();
  if (!id.ok()) {
    return id.status();
  }
  auto count = d.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  Lineage lineage(*id);
  for (uint64_t i = 0; i < *count; ++i) {
    auto dep = WriteId::DeserializeFrom(d);
    if (!dep.ok()) {
      return dep.status();
    }
    lineage.Append(std::move(*dep));
  }
  return lineage;
}

std::string Lineage::ToString() const {
  std::string out = "Lineage{id=" + std::to_string(id_) + ", deps=[";
  bool first = true;
  for (const auto& dep : deps_) {
    if (!first) {
      out += ", ";
    }
    out += dep.ToString();
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace antipode
