#include "src/antipode/enforcement.h"

#include <array>
#include <atomic>

#include "src/antipode/enforcement_internal.h"
#include "src/common/hlc.h"
#include "src/common/serialization.h"
#include "src/obs/metrics.h"

namespace antipode {

EnforcementBackend& ResolveBackend(const BarrierOptions& options) {
  EnforcementBackendKind kind = options.backend;
  if (kind == EnforcementBackendKind::kInherit) {
    kind = options.registry->options().default_backend;
  }
  return kind == EnforcementBackendKind::kStableFrontier ? FrontierBackend() : LineageBackend();
}

size_t EnforcementMetadataBytes(EnforcementBackendKind kind, const Lineage& lineage) {
  if (kind == EnforcementBackendKind::kStableFrontier) {
    // One varint HLC cut per request, independent of the dependency count.
    // Sized against the clock's current reading — what a cut computed now
    // would cost on the wire.
    return VarintWireSize(HlcClock::Default().Last());
  }
  return lineage.WireSize();
}

namespace enforcement_internal {

namespace {

// Racing initializers store identical registry pointers, atomically for TSan.
struct BarrierInstruments {
  std::atomic<Counter*> calls{nullptr};
  std::atomic<Counter*> errors{nullptr};
  std::atomic<Counter*> deadline{nullptr};
  std::atomic<HistogramMetric*> stall{nullptr};
};

}  // namespace

void CountBarrier(Region region, const Status& status, double stall_model_ms) {
  static BarrierInstruments per_region[kNumRegions];
  BarrierInstruments& slot = per_region[RegionIndex(region)];
  Counter* calls = slot.calls.load(std::memory_order_acquire);
  Counter* errors = slot.errors.load(std::memory_order_acquire);
  Counter* deadline = slot.deadline.load(std::memory_order_acquire);
  HistogramMetric* stall = slot.stall.load(std::memory_order_acquire);
  if (calls == nullptr) {
    MetricsRegistry& registry = MetricsRegistry::Default();
    const std::string region_name(RegionName(region));
    calls = registry.GetCounter("barrier.calls", {{"region", region_name}});
    errors = registry.GetCounter("barrier.errors", {{"region", region_name}});
    deadline = registry.GetCounter("barrier.deadline_exceeded", {{"region", region_name}});
    stall = registry.GetHistogram("barrier.stall_model_ms", {{"region", region_name}});
    slot.calls.store(calls, std::memory_order_release);
    slot.errors.store(errors, std::memory_order_release);
    slot.deadline.store(deadline, std::memory_order_release);
    slot.stall.store(stall, std::memory_order_release);
  }
  calls->Increment();
  if (!status.ok()) {
    errors->Increment();
    if (status.code() == StatusCode::kDeadlineExceeded) {
      deadline->Increment();
    }
  }
  stall->Record(stall_model_ms);
}

void CountBackendDispatch(EnforcementBackendKind kind) {
  static std::array<std::atomic<Counter*>, 3> per_kind{};
  const size_t slot = kind == EnforcementBackendKind::kStableFrontier ? 1 : 0;
  Counter* counter = per_kind[slot].load(std::memory_order_acquire);
  if (counter == nullptr) {
    const EnforcementBackendKind resolved =
        slot == 1 ? EnforcementBackendKind::kStableFrontier : EnforcementBackendKind::kLineage;
    counter = MetricsRegistry::Default().GetCounter(
        "barrier.backend", {{"backend", std::string(EnforcementBackendKindName(resolved))}});
    per_kind[slot].store(counter, std::memory_order_release);
  }
  counter->Increment();
}

void CountScopedSkips(uint64_t n) {
  if (n == 0) {
    return;
  }
  static Counter* const counter = MetricsRegistry::Default().GetCounter("barrier.scoped_skip");
  counter->Increment(n);
}

const CacheInstruments& CacheCounters() {
  static const CacheInstruments counters = [] {
    MetricsRegistry& registry = MetricsRegistry::Default();
    return CacheInstruments{registry.GetCounter("barrier.cache_hit"),
                            registry.GetCounter("barrier.cache_miss"),
                            registry.GetCounter("barrier.zero_wait")};
  }();
  return counters;
}

Status MemoizedOk(const Lineage& lineage, size_t num_regions, Region primary) {
  const CacheInstruments& counters = CacheCounters();
  if (!lineage.Empty()) {
    counters.hit->Increment(lineage.Size() * num_regions);
  }
  counters.zero_wait->Increment();
  CountBarrier(primary, Status::Ok(), 0.0);
  return Status::Ok();
}

bool AllEnforced(const Lineage& lineage, const std::vector<Region>& regions) {
  for (Region region : regions) {
    if (!lineage.enforced_at(region)) {
      return false;
    }
  }
  return true;
}

}  // namespace enforcement_internal
}  // namespace antipode
