#include "src/antipode/dynamo_shim.h"

#include "src/antipode/framing.h"

namespace antipode {

Status DynamoShim::Wait(Region region, const WriteId& id, Duration timeout) {
  const TimePoint deadline = timeout == Duration::max()
                                 ? TimePoint::max()
                                 : GlobalClock().Now() + timeout;
  // Poll with strongly consistent reads. The authoritative copy reflects the
  // write as soon as it is durable at its origin, so in practice this
  // resolves on the first probe; the loop guards the (rare) case of probing
  // before the writer's Put returned.
  while (true) {
    auto entry = dynamo_->StrongGet(region, id.key);
    if (entry.has_value() && entry->version >= id.version) {
      return Status::Ok();
    }
    if (deadline != TimePoint::max() && GlobalClock().Now() >= deadline) {
      return Status::DeadlineExceeded("dynamo wait: " + id.ToString());
    }
    GlobalClock().SleepFor(TimeScale::FromModelMillis(10.0));
  }
}

void DynamoShim::WaitAsync(Region region, const WriteId& id, TimePoint deadline,
                           WaitCallback done) {
  auto state = std::make_shared<ProbeState>(ProbeState{region, id, deadline, std::move(done)});
  if (!BlockingWaitPool().Submit([this, state] { ProbeLoop(state); })) {
    state->done(Status::Unavailable("shim wait pool shut down"));
  }
}

void DynamoShim::ProbeLoop(const std::shared_ptr<ProbeState>& state) {
  auto entry = dynamo_->StrongGet(state->region, state->id.key);
  if (entry.has_value() && entry->version >= state->id.version) {
    state->done(Status::Ok());
    return;
  }
  if (state->deadline != TimePoint::max() &&
      GlobalClock().Now() >= state->deadline) {
    state->done(Status::DeadlineExceeded("dynamo wait: " + state->id.ToString()));
    return;
  }
  // Re-arm after the poll interval on the store's injected timer service (a
  // private deployment must not leak probes onto the shared engine). The
  // probe runs on the pool, so the timer dispatcher never pays the strong
  // read's WAN round trip; between probes no thread is parked.
  const bool armed = dynamo_->timers()->ScheduleAfter(
      TimeScale::FromModelMillis(10.0), [this, state] {
        if (!BlockingWaitPool().Submit([this, state] { ProbeLoop(state); })) {
          state->done(Status::Unavailable("shim wait pool shut down"));
        }
      });
  if (!armed) {
    state->done(Status::Unavailable("timer service shut down during dynamo wait"));
  }
}

bool DynamoShim::IsVisible(Region region, const WriteId& id) {
  // Dry-run probes the *local* replica: it reports whether an
  // eventually-consistent reader in this region would already observe the
  // write, which is what the consistency checker wants to know.
  return dynamo_->IsVisible(region, id.key, id.version);
}

Result<Lineage> DynamoShim::PutItem(Region region, const std::string& table,
                                    const std::string& key, Document item, Lineage lineage) {
  item.Set(kLineageField, Value(lineage.Serialize()));
  auto version = dynamo_->PutItem(region, table, key, item);
  if (!version.ok()) {
    return version.status();
  }
  lineage.Append(MakeWriteId(DynamoStore::ItemKey(table, key), *version));
  return lineage;
}

Result<DynamoShim::ReadResult> DynamoShim::DecodeEntry(const std::optional<StoredEntry>& entry,
                                                       const std::string& key) const {
  if (!entry.has_value() || entry->bytes.empty()) {
    return Status::NotFound("dynamo read miss: " + key);
  }
  auto doc = Document::Deserialize(entry->bytes);
  if (!doc.ok()) {
    return doc.status();
  }
  ReadResult out;
  auto lineage_field = doc->Get(kLineageField);
  if (lineage_field.has_value() && lineage_field->is_string()) {
    auto lineage = Lineage::Deserialize(lineage_field->as_string());
    if (lineage.ok()) {
      out.lineage = std::move(*lineage);
    }
  }
  doc->Erase(kLineageField);
  out.lineage.Append(MakeWriteId(key, entry->version));
  out.item = std::move(*doc);
  return out;
}

Result<DynamoShim::ReadResult> DynamoShim::GetItem(Region region, const std::string& table,
                                                   const std::string& key) const {
  const std::string item_key = DynamoStore::ItemKey(table, key);
  return DecodeEntry(dynamo_->Get(region, item_key), item_key);
}

Result<DynamoShim::ReadResult> DynamoShim::GetItemConsistent(Region region,
                                                             const std::string& table,
                                                             const std::string& key) const {
  const std::string item_key = DynamoStore::ItemKey(table, key);
  return DecodeEntry(dynamo_->StrongGet(region, item_key), item_key);
}

Status DynamoShim::PutItemCtx(Region region, const std::string& table, const std::string& key,
                              Document item) {
  Lineage lineage = LineageApi::Current().value_or(Lineage());
  auto updated = PutItem(region, table, key, std::move(item), std::move(lineage));
  if (!updated.ok()) {
    return updated.status();
  }
  LineageApi::Install(*updated);
  return Status::Ok();
}

Result<Document> DynamoShim::GetItemCtx(Region region, const std::string& table,
                                        const std::string& key) const {
  auto result = GetItem(region, table, key);
  if (!result.ok()) {
    return result.status();
  }
  LineageApi::Transfer(result->lineage);
  return std::move(result->item);
}

Result<Document> DynamoShim::GetItemConsistentCtx(Region region, const std::string& table,
                                                  const std::string& key) const {
  auto result = GetItemConsistent(region, table, key);
  if (!result.ok()) {
    return result.status();
  }
  LineageApi::Transfer(result->lineage);
  return std::move(result->item);
}

}  // namespace antipode
