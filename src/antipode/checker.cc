#include "src/antipode/checker.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/antipode/lineage_api.h"

namespace antipode {

bool ConsistencyChecker::Check(const std::string& site, const Lineage& lineage, Region region) {
  const BarrierDryRunResult result = BarrierDryRun(lineage, region, registry_);
  std::lock_guard<std::mutex> lock(mu_);
  SiteReport& report = sites_[site];
  report.checks++;
  if (!result.consistent) {
    report.inconsistent++;
  }
  for (const auto& dep : result.unmet) {
    report.unmet_by_store[dep.store]++;
  }
  report.unresolved += result.unresolved.size();
  return result.consistent;
}

bool ConsistencyChecker::CheckCtx(const std::string& site, Region region) {
  auto lineage = LineageApi::Current();
  if (!lineage.has_value()) {
    return Check(site, Lineage(), region);
  }
  return Check(site, *lineage, region);
}

std::map<std::string, ConsistencyChecker::SiteReport> ConsistencyChecker::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_;
}

std::string ConsistencyChecker::Summary() const {
  const auto report = Report();
  std::vector<std::pair<std::string, SiteReport>> sorted(report.begin(), report.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.InconsistencyRate() > b.second.InconsistencyRate();
  });
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  for (const auto& [site, site_report] : sorted) {
    os << site << ": " << 100.0 * site_report.InconsistencyRate() << "% inconsistent ("
       << site_report.inconsistent << "/" << site_report.checks << " checks)";
    if (!site_report.unmet_by_store.empty()) {
      os << " — unmet deps:";
      for (const auto& [store, count] : site_report.unmet_by_store) {
        os << " " << store << "×" << count;
      }
    }
    if (site_report.unresolved > 0) {
      os << " — " << site_report.unresolved << " deps on uninstrumented stores";
    }
    os << "\n";
  }
  return os.str();
}

void ConsistencyChecker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
}

}  // namespace antipode
