// Value framing used by every shim: the serialized lineage is written
// alongside the application value in the underlying datastore (paper §6.2
// "datastore propagation"). The stored bytes are
//     varint(lineage_len) ‖ lineage ‖ value
// so the size increase visible in store metrics is exactly the lineage
// metadata overhead Table 3 reports.
//
// Note the framed lineage is the *dependency set the write was issued with*;
// the write's own identifier is reconstructed at read time from the entry's
// key and version, so it costs no extra bytes.

#ifndef SRC_ANTIPODE_FRAMING_H_
#define SRC_ANTIPODE_FRAMING_H_

#include <string>
#include <string_view>

#include "src/antipode/lineage.h"

namespace antipode {

// Field under which document-model shims (SQL/Doc/Dynamo) store the
// serialized lineage — the one-time schema change of §6.4.
inline constexpr char kLineageField[] = "_antipode_lineage";

struct FramedValue {
  std::string value;
  Lineage lineage;
};

// Encodes lineage + value into the stored representation.
std::string FrameValue(const Lineage& lineage, std::string_view value);

// Decodes a stored representation. Bytes that were written without a shim
// (no valid frame) decode as {bytes, empty lineage} on a best-effort basis.
FramedValue UnframeValue(std::string_view stored);

}  // namespace antipode

#endif  // SRC_ANTIPODE_FRAMING_H_
