#include "src/antipode/visibility_cache.h"

#include <algorithm>

namespace antipode {

StoreVisibility::StoreVisibility(std::string name, const std::vector<Region>& regions)
    : name_(std::move(name)), tracked_mask_(RegionMaskOf(regions)) {
  for (Region r : regions) tracked_[RegionIndex(r)] = true;
}

void StoreVisibility::NoteIssued(uint64_t seq, uint64_t hlc) {
  // Called under the store's stamp lock, so both values advance monotonically
  // and in lockstep with the seq/stamp assignment — the caught-up rule
  // (FrontierCovers) reads them racily and relies on exactly that.
  issued_seq_.store(seq, std::memory_order_release);
  issued_hlc_.store(hlc, std::memory_order_release);
}

void StoreVisibility::NoteApply(Region region, std::string_view key, uint64_t version,
                                uint64_t seq, uint64_t hlc) {
  const size_t ri = RegionIndex(region);
  // Per-key entry first, watermark second: once watermark(r) ≥ seq, a reader
  // combining ⟨latest_version, latest_seq⟩ with the watermark must find the
  // entry already updated, otherwise an old-write probe could miss forever.
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.keys.find(key);
    if (it == shard.keys.end()) it = shard.keys.emplace(std::string(key), KeyEntry{}).first;
    KeyEntry& entry = it->second;
    if (version > entry.latest_version) {
      entry.latest_version = version;
      entry.latest_seq = seq;
      entry.latest_hlc = hlc;
    }
    entry.visible[ri] = std::max(entry.visible[ri], version);
  }
  // Advance the contiguous-prefix watermark (and the stabilization frontier
  // alongside it). Applies race across keys, so out-of-order seqs park in
  // `pending` until the gap fills. Frontier waiters satisfied by the advance
  // fire after the tracker lock drops — their callbacks may take unrelated
  // locks (barrier gathers) but must not re-enter this cache.
  SeqTracker& tracker = trackers_[ri];
  std::vector<std::shared_ptr<FrontierWaiter>> due;
  {
    std::lock_guard<std::mutex> lock(tracker.mu);
    if (seq < tracker.next_expected) return;  // duplicate notification
    if (seq != tracker.next_expected) {
      tracker.pending.emplace(seq, hlc);
      return;
    }
    uint64_t next = seq + 1;
    uint64_t frontier = hlc;
    auto it = tracker.pending.begin();
    while (it != tracker.pending.end() && it->first == next) {
      ++next;
      frontier = std::max(frontier, it->second);
      it = tracker.pending.erase(it);
    }
    tracker.next_expected = next;
    const uint64_t watermark = next - 1;
    watermarks_[ri].store(watermark, std::memory_order_release);
    // Stamps are monotone in seq, so the max over the consumed run is the
    // stamp of its newest write; the max against the previous frontier only
    // guards against unstamped (hlc = 0) stores.
    if (frontier > frontiers_[ri].load(std::memory_order_relaxed)) {
      frontiers_[ri].store(frontier, std::memory_order_release);
    }
    if (!tracker.frontier_waiters.empty()) {
      const uint64_t f = frontiers_[ri].load(std::memory_order_relaxed);
      const uint64_t issued = issued_seq_.load(std::memory_order_acquire);
      auto keep = tracker.frontier_waiters.begin();
      for (auto& waiter : tracker.frontier_waiters) {
        if (waiter->fired.load(std::memory_order_acquire)) {
          continue;  // abandoned by its deadline timer; drop it
        }
        if ((f >= waiter->cut || watermark >= issued) &&
            !waiter->fired.exchange(true, std::memory_order_acq_rel)) {
          due.push_back(std::move(waiter));
          continue;
        }
        *keep++ = std::move(waiter);
      }
      tracker.frontier_waiters.erase(keep, tracker.frontier_waiters.end());
    }
  }
  for (auto& waiter : due) {
    waiter->cb(Status::Ok());
  }
}

void StoreVisibility::NoteVisible(Region region, std::string_view key, uint64_t version) {
  const size_t ri = RegionIndex(region);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.keys.find(key);
  if (it == shard.keys.end()) it = shard.keys.emplace(std::string(key), KeyEntry{}).first;
  KeyEntry& entry = it->second;
  if (version > entry.latest_version) {
    // Sequence number unknown: record the version but leave latest_seq = 0 so
    // the watermark path stays conservative for this key.
    entry.latest_version = version;
    entry.latest_seq = 0;
  }
  entry.visible[ri] = std::max(entry.visible[ri], version);
}

bool StoreVisibility::IsVisible(Region region, std::string_view key, uint64_t version) const {
  const size_t ri = RegionIndex(region);
  if (!tracked_[ri]) return false;
  uint64_t latest_version = 0;
  uint64_t latest_seq = 0;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.keys.find(key);
    if (it == shard.keys.end()) return false;
    const KeyEntry& entry = it->second;
    if (entry.visible[ri] >= version) return true;
    latest_version = entry.latest_version;
    latest_seq = entry.latest_seq;
  }
  // Old-write coverage: if the key's newest write has applied at `region`
  // (seq ≤ watermark), then so has every older write of the key — per-key
  // applies are ordered — and `version` ≤ latest_version is one of those.
  // The watermark is read after the entry, so a hit here is never stale.
  return latest_seq != 0 && latest_version >= version &&
         latest_seq <= watermarks_[ri].load(std::memory_order_acquire);
}

bool StoreVisibility::IsVisibleEverywhere(std::string_view key, uint64_t version) const {
  uint64_t latest_version = 0;
  uint64_t latest_seq = 0;
  std::array<uint64_t, kNumRegions> visible{};
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.keys.find(key);
    if (it == shard.keys.end()) return false;
    const KeyEntry& entry = it->second;
    latest_version = entry.latest_version;
    latest_seq = entry.latest_seq;
    visible = entry.visible;
  }
  bool any_tracked = false;
  for (size_t ri = 0; ri < kNumRegions; ++ri) {
    if (!tracked_[ri]) continue;
    any_tracked = true;
    if (visible[ri] >= version) continue;
    if (latest_seq != 0 && latest_version >= version &&
        latest_seq <= watermarks_[ri].load(std::memory_order_acquire)) {
      continue;
    }
    return false;
  }
  return any_tracked;
}

uint64_t StoreVisibility::KnownHlc(std::string_view key, uint64_t version) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.keys.find(key);
  if (it == shard.keys.end()) return 0;
  const KeyEntry& entry = it->second;
  // The newest stamped write supersedes `version` (per-key versions are
  // monotone): once that write is under the frontier, so is the dependency.
  return entry.latest_version >= version ? entry.latest_hlc : 0;
}

std::shared_ptr<StoreVisibility::FrontierWaiter> StoreVisibility::AwaitFrontier(
    Region region, uint64_t cut, std::function<void(Status)>&& cb) {
  const size_t ri = RegionIndex(region);
  SeqTracker& tracker = trackers_[ri];
  std::lock_guard<std::mutex> lock(tracker.mu);
  // Checked under the tracker lock NoteApply advances under, so a concurrent
  // advance either satisfies the condition here or finds the waiter
  // registered — no lost wakeup. A racing NoteIssued can only raise
  // `issued_seq`, and the write it announces is stamped after every cut
  // computed before it, so reading the older value stays sound.
  if (frontiers_[ri].load(std::memory_order_acquire) >= cut ||
      watermarks_[ri].load(std::memory_order_acquire) >=
          issued_seq_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  auto waiter = std::make_shared<FrontierWaiter>();
  waiter->cut = cut;
  waiter->cb = std::move(cb);
  auto& list = tracker.frontier_waiters;
  // Lazily drop abandoned waiters (expired deadlines) so a frontier that
  // never advances cannot accumulate zombies unboundedly.
  list.erase(std::remove_if(list.begin(), list.end(),
                            [](const std::shared_ptr<FrontierWaiter>& w) {
                              return w->fired.load(std::memory_order_acquire);
                            }),
             list.end());
  list.push_back(waiter);
  return waiter;
}

size_t StoreVisibility::FrontierWaiterCount(Region region) const {
  SeqTracker& tracker = trackers_[RegionIndex(region)];
  std::lock_guard<std::mutex> lock(tracker.mu);
  size_t live = 0;
  for (const auto& waiter : tracker.frontier_waiters) {
    if (!waiter->fired.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

uint64_t StoreVisibility::MinWatermark() const {
  uint64_t min = UINT64_MAX;
  bool any = false;
  for (size_t ri = 0; ri < kNumRegions; ++ri) {
    if (!tracked_[ri]) continue;
    any = true;
    min = std::min(min, watermarks_[ri].load(std::memory_order_acquire));
  }
  return any ? min : 0;
}

size_t StoreVisibility::KeyCount() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.keys.size();
  }
  return total;
}

VisibilityCache& VisibilityCache::Default() {
  static VisibilityCache* cache = new VisibilityCache();
  return *cache;
}

std::shared_ptr<StoreVisibility> VisibilityCache::Register(const std::string& name,
                                                           const std::vector<Region>& regions) {
  auto state = std::make_shared<StoreVisibility>(name, regions);
  const int group = RegionGroupOf(state->tracked_mask());
  // A re-registration with a different footprint moves buckets; evict the
  // name everywhere else first so a stale same-named entry can never shadow
  // the fresh one from another bucket (the cold-start guarantee).
  for (int g = 0; g < kNumRegionGroups; ++g) {
    if (g == group) continue;
    Bucket& bucket = buckets_[static_cast<size_t>(g)];
    std::lock_guard<std::mutex> lock(bucket.mu);
    bucket.stores.erase(name);
  }
  Bucket& bucket = buckets_[static_cast<size_t>(group)];
  std::lock_guard<std::mutex> lock(bucket.mu);
  bucket.stores[name] = state;
  return state;
}

void VisibilityCache::Unregister(const std::shared_ptr<StoreVisibility>& state) {
  if (!state) return;
  Bucket& bucket = buckets_[static_cast<size_t>(RegionGroupOf(state->tracked_mask()))];
  std::lock_guard<std::mutex> lock(bucket.mu);
  auto it = bucket.stores.find(state->name());
  if (it != bucket.stores.end() && it->second == state) bucket.stores.erase(it);
}

std::shared_ptr<StoreVisibility> VisibilityCache::Find(std::string_view name) const {
  for (const Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mu);
    auto it = bucket.stores.find(name);
    if (it != bucket.stores.end()) return it->second;
  }
  return nullptr;
}

void VisibilityCache::Clear() {
  for (Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mu);
    bucket.stores.clear();
  }
}

size_t VisibilityCache::Size() const {
  size_t total = 0;
  for (const Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mu);
    total += bucket.stores.size();
  }
  return total;
}

}  // namespace antipode
