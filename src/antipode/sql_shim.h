// Shim for the MySQL-like SqlStore. `InstrumentTable` performs the one-time
// schema change (§6.4): a lineage column plus a secondary index on it —
// the index is what makes MySQL's Table 3 overhead stand out (~14 KB/row).

#ifndef SRC_ANTIPODE_SQL_SHIM_H_
#define SRC_ANTIPODE_SQL_SHIM_H_

#include <string>

#include "src/antipode/lineage_api.h"
#include "src/antipode/watermark_shim.h"
#include "src/store/sql_store.h"

namespace antipode {

class SqlShim : public WatermarkShim {
 public:
  explicit SqlShim(SqlStore* store) : WatermarkShim(store), sql_(store) {}

  // Adds the lineage column (+ index) to `table`. Call once per table.
  Status InstrumentTable(const std::string& table, bool with_index = true);

  struct ReadResult {
    Row row;  // lineage column stripped
    Lineage lineage;
  };

  // ℒ' ← insert(table, ⟨row, ℒ⟩).
  Result<Lineage> Insert(Region region, const std::string& table, Row row, Lineage lineage);

  // NotFound when no row with `pk` is visible at `region`; InvalidArgument
  // when the stored bytes do not decode as a row.
  Result<ReadResult> SelectByPk(Region region, const std::string& table, const Value& pk) const;

  Status InsertCtx(Region region, const std::string& table, Row row);
  Result<Row> SelectByPkCtx(Region region, const std::string& table, const Value& pk) const;

 private:
  SqlStore* sql_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_SQL_SHIM_H_
