#include "src/antipode/lineage_api.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "src/context/merge.h"
#include "src/context/request_context.h"

namespace antipode {
namespace {

std::atomic<uint64_t> g_next_lineage_id{1};
std::atomic<bool> g_prune_on_install{false};
std::atomic<bool> g_native_slot{true};

std::string UnionMerge(const std::string& existing, const std::string& incoming) {
  auto ours = Lineage::Deserialize(existing);
  auto theirs = Lineage::Deserialize(incoming);
  if (!ours.ok()) {
    return incoming;
  }
  if (!theirs.ok()) {
    return existing;
  }
  ours->Transfer(*theirs);
  if (ours->id() == 0) {
    ours->set_id(theirs->id());
  }
  return ours->Serialize();
}

// Native-slot flavor of UnionMerge: folds the incoming wire into the live
// object without re-serializing the result (the slot is marked dirty and
// flushed at the next hop). Clones first when the pointer is shared — other
// context copies alias the object.
void NativeUnionMerge(std::shared_ptr<void>& object, const std::string& incoming) {
  auto theirs = Lineage::Deserialize(incoming);
  if (!theirs.ok()) {
    return;  // keep ours, like UnionMerge on a corrupt incoming blob
  }
  auto* mine = static_cast<Lineage*>(object.get());
  if (object.use_count() > 1) {
    object = std::make_shared<Lineage>(*mine);
    mine = static_cast<Lineage*>(object.get());
  }
  mine->Transfer(*theirs);
  if (mine->id() == 0) {
    mine->set_id(theirs->id());
  }
}

// Serialize thunk for the native slot (called by FlushNativeSlot at hop
// boundaries). Prune-on-install applies here too: the flush is exactly the
// "re-encoded into baggage" point the option documents.
void SerializeLineageSlot(const void* object, std::string& out) {
  const auto* lineage = static_cast<const Lineage*>(object);
  if (LineageApi::prune_on_install()) {
    Lineage pruned = *lineage;
    pruned.PruneVisibleEverywhere();
    pruned.SerializeTo(out);
  } else {
    lineage->SerializeTo(out);
  }
}

// The context's native lineage, populating the slot from the baggage entry
// on first access (one deserialize per hop instead of one per read/mutate).
// nullptr when no lineage is installed at all.
const Lineage* NativeCurrent(RequestContext* context) {
  RequestContext::NativeSlot& slot = context->native_slot();
  if (slot.object != nullptr && slot.key == std::string_view(kLineageBaggageKey)) {
    return static_cast<const Lineage*>(slot.object.get());
  }
  const std::string* blob = context->baggage().Find(kLineageBaggageKey);
  if (blob == nullptr) {
    return nullptr;
  }
  auto lineage = Lineage::Deserialize(*blob);
  if (!lineage.ok()) {
    return nullptr;
  }
  slot.key = kLineageBaggageKey;
  slot.serialize = &SerializeLineageSlot;
  slot.object = std::make_shared<Lineage>(std::move(*lineage));
  slot.dirty = false;
  return static_cast<const Lineage*>(slot.object.get());
}

// Uniquely-owned native lineage for in-place mutation (copy-on-write when
// the object is shared with other context copies). nullptr when no lineage
// is installed.
Lineage* MutableNative(RequestContext* context) {
  if (NativeCurrent(context) == nullptr) {
    return nullptr;
  }
  RequestContext::NativeSlot& slot = context->native_slot();
  if (slot.object.use_count() > 1) {
    slot.object = std::make_shared<Lineage>(*static_cast<const Lineage*>(slot.object.get()));
  }
  return static_cast<Lineage*>(slot.object.get());
}

// Post-mutation bookkeeping shared by the native mutators.
void CommitNative(RequestContext* context, Lineage* lineage) {
  if (g_prune_on_install.load(std::memory_order_relaxed)) {
    lineage->PruneVisibleEverywhere();
  }
  context->native_slot().dirty = true;
}

}  // namespace

void LineageApi::EnsureMergerRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    BaggageMergerRegistry::Instance().Register(kLineageBaggageKey, UnionMerge,
                                               NativeUnionMerge);
  });
}

Lineage LineageApi::Root() {
  EnsureMergerRegistered();
  Lineage lineage(g_next_lineage_id.fetch_add(1, std::memory_order_relaxed));
  Install(lineage);
  return lineage;
}

void LineageApi::Stop() {
  RequestContext* context = RequestContext::Current();
  if (context != nullptr) {
    context->ClearNativeSlot();
    context->baggage().Erase(kLineageBaggageKey);
  }
}

std::optional<Lineage> LineageApi::Current() {
  EnsureMergerRegistered();
  RequestContext* context = RequestContext::Current();
  if (context == nullptr) {
    return std::nullopt;
  }
  if (g_native_slot.load(std::memory_order_relaxed)) {
    const Lineage* lineage = NativeCurrent(context);
    if (lineage == nullptr) {
      return std::nullopt;
    }
    return *lineage;
  }
  // Legacy path: the baggage string is authoritative. Flush first in case a
  // native mutation predates a mid-run toggle.
  context->FlushNativeSlot();
  const std::string* blob = context->baggage().Find(kLineageBaggageKey);
  if (blob == nullptr) {
    return std::nullopt;
  }
  auto lineage = Lineage::Deserialize(*blob);
  if (!lineage.ok()) {
    return std::nullopt;
  }
  return std::move(*lineage);
}

bool LineageApi::SetPruneOnInstall(bool enabled) {
  return g_prune_on_install.exchange(enabled, std::memory_order_relaxed);
}

bool LineageApi::prune_on_install() {
  return g_prune_on_install.load(std::memory_order_relaxed);
}

bool LineageApi::SetNativeSlot(bool enabled) {
  return g_native_slot.exchange(enabled, std::memory_order_relaxed);
}

bool LineageApi::native_slot_enabled() {
  return g_native_slot.load(std::memory_order_relaxed);
}

void LineageApi::Install(const Lineage& lineage) {
  EnsureMergerRegistered();
  RequestContext* context = RequestContext::Current();
  if (context == nullptr) {
    return;
  }
  if (g_native_slot.load(std::memory_order_relaxed)) {
    RequestContext::NativeSlot& slot = context->native_slot();
    slot.key = kLineageBaggageKey;
    slot.serialize = &SerializeLineageSlot;
    slot.object = std::make_shared<Lineage>(lineage);
    CommitNative(context, static_cast<Lineage*>(slot.object.get()));
    return;
  }
  context->ClearNativeSlot();  // the string entry becomes authoritative
  // Serialize into a reused per-thread scratch, then copy-assign into the
  // baggage entry: on the steady-state Append→Install cycle both buffers have
  // warm capacity, so installing a lineage allocates nothing.
  thread_local std::string scratch;
  scratch.clear();
  if (g_prune_on_install.load(std::memory_order_relaxed)) {
    Lineage pruned = lineage;
    pruned.PruneVisibleEverywhere();
    pruned.SerializeTo(scratch);
  } else {
    lineage.SerializeTo(scratch);
  }
  context->baggage().Assign(kLineageBaggageKey, scratch);
}

void LineageApi::Append(const WriteId& dep) {
  EnsureMergerRegistered();
  RequestContext* context = RequestContext::Current();
  if (context == nullptr) {
    return;
  }
  if (g_native_slot.load(std::memory_order_relaxed)) {
    Lineage* lineage = MutableNative(context);
    if (lineage == nullptr) {
      return;
    }
    lineage->Append(dep);
    CommitNative(context, lineage);
    return;
  }
  auto lineage = Current();
  if (!lineage.has_value()) {
    return;
  }
  lineage->Append(dep);
  Install(*lineage);
}

void LineageApi::Remove(const WriteId& dep) {
  EnsureMergerRegistered();
  RequestContext* context = RequestContext::Current();
  if (context == nullptr) {
    return;
  }
  if (g_native_slot.load(std::memory_order_relaxed)) {
    Lineage* lineage = MutableNative(context);
    if (lineage == nullptr) {
      return;
    }
    lineage->Remove(dep);
    CommitNative(context, lineage);
    return;
  }
  auto lineage = Current();
  if (!lineage.has_value()) {
    return;
  }
  lineage->Remove(dep);
  Install(*lineage);
}

void LineageApi::Transfer(const Lineage& from) {
  EnsureMergerRegistered();
  RequestContext* context = RequestContext::Current();
  if (context == nullptr) {
    return;
  }
  if (g_native_slot.load(std::memory_order_relaxed)) {
    Lineage* lineage = MutableNative(context);
    if (lineage == nullptr) {
      // Transferring into a context with no lineage installs a copy, so the
      // dependencies are not silently dropped.
      Install(from);
      return;
    }
    lineage->Transfer(from);
    CommitNative(context, lineage);
    return;
  }
  auto lineage = Current();
  if (!lineage.has_value()) {
    Install(from);
    return;
  }
  lineage->Transfer(from);
  Install(*lineage);
}

}  // namespace antipode
