#include "src/antipode/lineage_api.h"

#include <atomic>
#include <mutex>

#include "src/context/merge.h"
#include "src/context/request_context.h"

namespace antipode {
namespace {

std::atomic<uint64_t> g_next_lineage_id{1};
std::atomic<bool> g_prune_on_install{false};

std::string UnionMerge(const std::string& existing, const std::string& incoming) {
  auto ours = Lineage::Deserialize(existing);
  auto theirs = Lineage::Deserialize(incoming);
  if (!ours.ok()) {
    return incoming;
  }
  if (!theirs.ok()) {
    return existing;
  }
  ours->Transfer(*theirs);
  if (ours->id() == 0) {
    ours->set_id(theirs->id());
  }
  return ours->Serialize();
}

}  // namespace

void LineageApi::EnsureMergerRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    BaggageMergerRegistry::Instance().Register(kLineageBaggageKey, UnionMerge);
  });
}

Lineage LineageApi::Root() {
  EnsureMergerRegistered();
  Lineage lineage(g_next_lineage_id.fetch_add(1, std::memory_order_relaxed));
  Install(lineage);
  return lineage;
}

void LineageApi::Stop() {
  RequestContext* context = RequestContext::Current();
  if (context != nullptr) {
    context->baggage().Erase(kLineageBaggageKey);
  }
}

std::optional<Lineage> LineageApi::Current() {
  EnsureMergerRegistered();
  RequestContext* context = RequestContext::Current();
  if (context == nullptr) {
    return std::nullopt;
  }
  auto blob = context->baggage().Get(kLineageBaggageKey);
  if (!blob.has_value()) {
    return std::nullopt;
  }
  auto lineage = Lineage::Deserialize(*blob);
  if (!lineage.ok()) {
    return std::nullopt;
  }
  return std::move(*lineage);
}

bool LineageApi::SetPruneOnInstall(bool enabled) {
  return g_prune_on_install.exchange(enabled, std::memory_order_relaxed);
}

bool LineageApi::prune_on_install() {
  return g_prune_on_install.load(std::memory_order_relaxed);
}

void LineageApi::Install(const Lineage& lineage) {
  EnsureMergerRegistered();
  RequestContext* context = RequestContext::Current();
  if (context == nullptr) {
    return;
  }
  // Serialize into a reused per-thread scratch, then copy-assign into the
  // baggage entry: on the steady-state Append→Install cycle both buffers have
  // warm capacity, so installing a lineage allocates nothing.
  thread_local std::string scratch;
  scratch.clear();
  if (g_prune_on_install.load(std::memory_order_relaxed)) {
    Lineage pruned = lineage;
    pruned.PruneVisibleEverywhere();
    pruned.SerializeTo(scratch);
  } else {
    lineage.SerializeTo(scratch);
  }
  context->baggage().Assign(kLineageBaggageKey, scratch);
}

void LineageApi::Append(const WriteId& dep) {
  auto lineage = Current();
  if (!lineage.has_value()) {
    return;
  }
  lineage->Append(dep);
  Install(*lineage);
}

void LineageApi::Remove(const WriteId& dep) {
  auto lineage = Current();
  if (!lineage.has_value()) {
    return;
  }
  lineage->Remove(dep);
  Install(*lineage);
}

void LineageApi::Transfer(const Lineage& from) {
  auto lineage = Current();
  if (!lineage.has_value()) {
    // Transferring into a context with no lineage installs a copy, so the
    // dependencies are not silently dropped.
    Install(from);
    return;
  }
  lineage->Transfer(from);
  Install(*lineage);
}

}  // namespace antipode
