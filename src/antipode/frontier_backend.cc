#include "src/antipode/frontier_backend.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "src/antipode/enforcement_internal.h"
#include "src/common/hlc.h"
#include "src/common/property.h"
#include "src/common/sim.h"
#include "src/obs/metrics.h"

namespace antipode {
namespace {

using enforcement_internal::AllEnforced;
using enforcement_internal::CacheCounters;
using enforcement_internal::CacheInstruments;
using enforcement_internal::CountBarrier;
using enforcement_internal::CountScopedSkips;
using enforcement_internal::MemoizedOk;
using enforcement_internal::PrimaryRegion;
using enforcement_internal::WaitGather;

using VisibilityHandle = std::shared_ptr<StoreVisibility>;

// frontier.lag_ms{region=...}: how far (in model ms of physical HLC time) the
// barrier's cut sits ahead of the region's stabilization frontier at launch —
// the extra wait the strategy signs up for relative to already-stable state.
// Sampled once per launched frontier wait; cold frontiers (no stamped apply
// yet, F = 0) are skipped rather than charged the whole process uptime.
void RecordFrontierLag(Region region, uint64_t cut, uint64_t frontier) {
  if (frontier == 0) {
    return;
  }
  static std::atomic<HistogramMetric*> per_region[kNumRegions] = {};
  HistogramMetric* lag = per_region[RegionIndex(region)].load(std::memory_order_acquire);
  if (lag == nullptr) {
    lag = MetricsRegistry::Default().GetHistogram(
        "frontier.lag_ms", {{"region", std::string(RegionName(region))}});
    per_region[RegionIndex(region)].store(lag, std::memory_order_release);
  }
  const uint64_t cut_us = HlcClock::PhysicalMicros(cut);
  const uint64_t frontier_us = HlcClock::PhysicalMicros(frontier);
  const uint64_t lag_us = cut_us > frontier_us ? cut_us - frontier_us : 0;
  lag->Record(TimeScale::ToModelMillis(Duration(lag_us)));
}

}  // namespace

Status StableFrontierBackend::Launch(const Lineage& lineage, const std::vector<Region>& regions,
                                     TimePoint deadline, const BarrierOptions& options,
                                     std::function<void(Status)> done, bool* memoizable) {
  if (memoizable != nullptr) {
    *memoizable = true;
  }
  if (options.use_cache && AllEnforced(lineage, regions)) {
    if (PropertyRegistry::Instance().deep_checks()) {
      // Same soundness cross-check as the lineage backend's memo fast path:
      // every in-scope dependency the memo covers must still probe visible.
      for (Region region : regions) {
        for (const auto& dep : lineage.deps()) {
          if (options.use_scope && (dep.scope & RegionBit(region)) == 0) {
            continue;
          }
          Shim* shim = options.registry->Lookup(dep.store);
          ANTIPODE_ALWAYS("barrier.memo_sound",
                          shim == nullptr || shim->IsVisible(region, dep));
        }
      }
    }
    if (memoizable != nullptr) {
      *memoizable = false;  // already memoized; nothing new proved
    }
    done(MemoizedOk(lineage, regions.size(), PrimaryRegion(regions)));
    return Status::Ok();
  }

  // Resolve each store's contiguous dependency run once, classifying every
  // dependency as cut-covered (the store has a frontier and the cache knows
  // the stamp of a superseding write) or fallback (per-dependency wait). The
  // unscoped cut is the max stamp across every cut-covered dependency of
  // every store — one number, however many dependencies the lineage carries.
  // Under use_scope each ⟨store, region⟩ wait instead gets the max stamp over
  // only the in-scope dependencies that missed the cache there, so a
  // US-bound barrier never waits for a region's frontier to pass stamps that
  // only matter elsewhere. Stamps ride alongside the deps for that.
  struct StoreRun {
    Shim* shim = nullptr;
    VisibilityHandle vis;
    std::vector<std::pair<const WriteId*, uint64_t>> frontier_deps;
    std::vector<const WriteId*> fallback_deps;
  };
  std::vector<StoreRun> runs;
  uint64_t cut = 0;
  {
    Shim* shim = nullptr;
    const std::string* current_store = nullptr;
    for (const auto& dep : lineage.deps()) {
      if (current_store == nullptr || dep.store != *current_store) {
        current_store = &dep.store;
        shim = options.registry->Lookup(dep.store);
        if (shim == nullptr && !options.ignore_unknown_stores) {
          return Status::FailedPrecondition("no shim registered for store: " + dep.store);
        }
        if (shim == nullptr) {
          if (memoizable != nullptr) {
            *memoizable = false;  // skipped dependency: outcome proves nothing about it
          }
          continue;
        }
        runs.push_back(StoreRun{shim, shim->visibility(), {}, {}});
      }
      if (shim == nullptr) {
        continue;
      }
      StoreRun& run = runs.back();
      const bool frontier_capable = run.vis != nullptr && run.shim->SupportsFrontier();
      const uint64_t hlc = frontier_capable ? run.vis->KnownHlc(dep.key, dep.version) : 0;
      if (hlc != 0) {
        cut = std::max(cut, hlc);
        run.frontier_deps.push_back({&dep, hlc});
      } else {
        run.fallback_deps.push_back(&dep);
      }
    }
  }

  const Region primary = PrimaryRegion(regions);
  const TimePoint start = GlobalClock().Now();

  // Per region: cache-filter both classes. Fallback misses batch into one
  // WaitManyAsync per ⟨shim, region⟩ exactly like the lineage backend; any
  // cut-covered miss arms one frontier wait for that ⟨store, region⟩ on the
  // global cut. A region whose dependencies all hit the cache arms nothing.
  struct FallbackGroup {
    Shim* shim = nullptr;
    VisibilityHandle vis;
    Region region = Region::kLocal;
    std::vector<WriteId> ids;
  };
  struct FrontierWait {
    Shim* shim = nullptr;
    VisibilityHandle vis;
    Region region = Region::kLocal;
    uint64_t cut = 0;
  };
  std::vector<FallbackGroup> fallback_groups;
  std::vector<FrontierWait> frontier_waits;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t scoped_skips = 0;
  for (Region region : regions) {
    for (StoreRun& run : runs) {
      FallbackGroup* group = nullptr;
      for (const WriteId* dep : run.fallback_deps) {
        // Out-of-scope dependency: vacuously met at this region, no wait and
        // no cache probe (same rule as the lineage backend).
        if (options.use_scope && (dep->scope & RegionBit(region)) == 0) {
          ++scoped_skips;
          continue;
        }
        if (options.use_cache && run.vis != nullptr &&
            run.vis->IsVisible(region, dep->key, dep->version)) {
          ++hits;
          continue;
        }
        if (options.use_cache) {
          ++misses;
        }
        if (group == nullptr) {
          fallback_groups.push_back(FallbackGroup{run.shim, run.vis, region, {}});
          group = &fallback_groups.back();
          group->ids.reserve(run.fallback_deps.size());
          if (memoizable != nullptr && !run.shim->wait_implies_visibility()) {
            *memoizable = false;  // this wait succeeds via the authority, not the replica
          }
        }
        ANTIPODE_ALWAYS("barrier.scope_respected",
                        !options.use_scope || (dep->scope & RegionBit(region)) != 0);
        group->ids.push_back(*dep);
      }
      // Scoped cut for this ⟨store, region⟩: max stamp over the in-scope
      // dependencies that actually missed the cache here. Unscoped barriers
      // keep the one global cut — the strategy's classic O(1) shape.
      uint64_t region_cut = 0;
      for (const auto& [dep, hlc] : run.frontier_deps) {
        if (options.use_scope && (dep->scope & RegionBit(region)) == 0) {
          ++scoped_skips;
          continue;
        }
        if (options.use_cache && run.vis->IsVisible(region, dep->key, dep->version)) {
          ++hits;
          continue;
        }
        if (options.use_cache) {
          ++misses;
        }
        region_cut = std::max(region_cut, hlc);
      }
      if (region_cut != 0) {
        // A scoped frontier wait is only armed when some in-scope dependency
        // missed the cache at this region; the scoped cut folds in-scope
        // stamps only, so no out-of-scope wait can ride it.
        frontier_waits.push_back(
            FrontierWait{run.shim, run.vis, region, options.use_scope ? region_cut : cut});
      }
    }
  }
  CountScopedSkips(scoped_skips);
  if (options.use_cache && (hits != 0 || misses != 0)) {
    const CacheInstruments& counters = CacheCounters();
    if (hits != 0) counters.hit->Increment(hits);
    if (misses != 0) counters.miss->Increment(misses);
  }

  auto finish = [primary, start, deadline, done = std::move(done)](Status status) {
    // Exact in virtual time (see the lineage backend's twin assertion); not
    // asserted on real threads where late dispatch is timing, not logic.
    if (SimScheduler::Active() != nullptr) {
      ANTIPODE_ALWAYS("barrier.deadline_honored",
                      deadline == TimePoint::max() || GlobalClock().Now() <= deadline);
    }
    ANTIPODE_SOMETIMES("barrier.deadline_exceeded",
                       status.code() == StatusCode::kDeadlineExceeded);
    CountBarrier(primary, status,
                 TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
                     GlobalClock().Now() - start)));
    done(status);
  };

  const size_t total_waits = fallback_groups.size() + frontier_waits.size();
  if (total_waits == 0) {
    if (options.use_cache) {
      CacheCounters().zero_wait->Increment();
    }
    finish(Status::Ok());
    return Status::Ok();
  }

  auto gather = std::make_shared<WaitGather>(total_waits, std::move(finish));
  for (const FrontierWait& wait : frontier_waits) {
    RecordFrontierLag(wait.region, wait.cut, wait.vis->FrontierHlc(wait.region));
    // Frontier success needs no per-key cache feedback: the apply watermark
    // it rode already makes IsVisible's old-write rule cover the deps.
    wait.shim->WaitFrontierAsync(wait.region, wait.cut, deadline,
                                 [gather](Status status) { gather->Complete(status); });
  }
  for (FallbackGroup& group : fallback_groups) {
    const bool feed_cache = group.vis != nullptr && group.shim->wait_implies_visibility();
    const Region region = group.region;
    auto ids = std::make_shared<std::vector<WriteId>>(std::move(group.ids));
    group.shim->WaitManyAsync(region, *ids, deadline,
                              [gather, region, feed_cache, vis = group.vis, ids](Status status) {
                                if (status.ok() && feed_cache) {
                                  for (const WriteId& id : *ids) {
                                    vis->NoteVisible(region, id.key, id.version);
                                  }
                                }
                                gather->Complete(status);
                              });
  }
  return Status::Ok();
}

EnforcementBackend& FrontierBackend() {
  static auto* backend = new StableFrontierBackend();
  return *backend;
}

}  // namespace antipode
