// The context-bound Lineage API of Table 2. The current lineage lives in the
// request-context baggage (key "antipode-lineage"), so it piggybacks on the
// same propagation channel as distributed-tracing metadata (paper §6.2) and
// automatically crosses RPC and message-queue hops. A union merger is
// registered so lineage updates made inside callees flow back to callers in
// RPC responses.
//
// All functions operate on the RequestContext installed on the calling
// thread; they are no-ops (returning empty lineages) when no context exists.

#ifndef SRC_ANTIPODE_LINEAGE_API_H_
#define SRC_ANTIPODE_LINEAGE_API_H_

#include <optional>

#include "src/antipode/lineage.h"

namespace antipode {

// Baggage key under which the serialized lineage travels.
inline constexpr char kLineageBaggageKey[] = "antipode-lineage";

class LineageApi {
 public:
  // ℒ ← root(): starts a fresh, empty lineage in the current context,
  // replacing any existing one. Returns the new lineage.
  static Lineage Root();

  // stop(ℒ): closes the current lineage, dropping its dependency set from
  // the context. Subsequent operations start from nothing unless `Transfer`
  // re-establishes continuity.
  static void Stop();

  // The lineage currently carried by this thread's context (nullopt when no
  // context or no lineage is installed).
  static std::optional<Lineage> Current();

  // Writes `lineage` into the current context (overwriting).
  static void Install(const Lineage& lineage);

  // append(ℒ, dep) / remove(ℒ, dep) on the current lineage.
  static void Append(const WriteId& dep);
  static void Remove(const WriteId& dep);

  // transfer(ℒa, ℒb): folds `from`'s dependencies into the current lineage,
  // explicitly carrying causality across lineage boundaries (§5.1).
  static void Transfer(const Lineage& from);

  // When enabled, every point where the lineage is (re-)established — a
  // mutation through this API, and the flush that re-encodes it into baggage
  // at a hop — first runs Lineage::PruneVisibleEverywhere against the
  // process-wide visibility cache, so baggage sheds dependencies that can no
  // longer block any barrier. Off by default — pruning is an explicit
  // deployment choice; tests and checkers inspect full lineages. Returns the
  // previous setting.
  static bool SetPruneOnInstall(bool enabled);
  static bool prune_on_install();

  // When enabled (the default), the current lineage lives as a native object
  // in the request context's native slot (RequestContext::NativeSlot):
  // Append/Remove/Transfer mutate it in place and the serialized baggage
  // entry is refreshed only at hop boundaries, instead of paying a full
  // deserialize→mutate→re-serialize cycle per mutation — the dominant cost
  // at 20–60 dependencies per request (DESIGN.md §14). Disabling falls back
  // to the legacy re-serialize-per-mutation path; the trace-mesh bench
  // toggles this to measure the delta. Returns the previous setting. Only
  // safe to toggle between requests (no context mid-flight on any thread).
  static bool SetNativeSlot(bool enabled);
  static bool native_slot_enabled();

  // Ensures the baggage union-merger for the lineage key is registered.
  // Called internally by every API entry point; exposed for tests.
  static void EnsureMergerRegistered();
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_LINEAGE_API_H_
