#include "src/antipode/session.h"

#include "src/antipode/lineage_api.h"

namespace antipode {

void Session::Absorb(const Lineage& lineage) {
  std::lock_guard<std::mutex> lock(mu_);
  lineage_.Transfer(lineage);
}

void Session::AbsorbCtx() {
  auto lineage = LineageApi::Current();
  if (lineage.has_value()) {
    Absorb(*lineage);
  }
}

void Session::Attach() const {
  LineageApi::Transfer(Snapshot());
}

Status Session::GuardRead(Region region, const BarrierOptions& options) const {
  return Barrier(Snapshot(), region, options);
}

bool Session::IsReadConsistent(Region region, ShimRegistry* registry) const {
  return BarrierDryRun(Snapshot(), region, registry).consistent;
}

Lineage Session::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lineage_;
}

size_t Session::NumDeps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lineage_.Size();
}

void Session::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lineage_ = Lineage();
}

}  // namespace antipode
