#include "src/antipode/sql_shim.h"

#include "src/antipode/framing.h"

namespace antipode {

Status SqlShim::InstrumentTable(const std::string& table, bool with_index) {
  Status status = sql_->AddColumn(table, kLineageField);
  if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
    return status;
  }
  if (with_index) {
    return sql_->CreateIndex(table, kLineageField);
  }
  return Status::Ok();
}

Result<Lineage> SqlShim::Insert(Region region, const std::string& table, Row row,
                                Lineage lineage) {
  auto pk_column = sql_->PrimaryKeyColumn(table);
  if (!pk_column.ok()) {
    return pk_column.status();
  }
  auto pk = row.Get(*pk_column);
  if (!pk.has_value()) {
    return Status::InvalidArgument("row missing primary key: " + *pk_column);
  }
  row.Set(kLineageField, Value(lineage.Serialize()));
  auto version = sql_->Insert(region, table, row);
  if (!version.ok()) {
    return version.status();
  }
  lineage.Append(MakeWriteId(SqlStore::RowKey(table, *pk), *version));
  return lineage;
}

Result<SqlShim::ReadResult> SqlShim::SelectByPk(Region region, const std::string& table,
                                                const Value& pk) const {
  const std::string key = SqlStore::RowKey(table, pk);
  auto entry = sql_->Get(region, key);
  if (!entry.has_value() || entry->bytes.empty()) {
    return Status::NotFound("sql read miss: " + key);
  }
  auto row = Row::Deserialize(entry->bytes);
  if (!row.ok()) {
    return row.status();
  }
  ReadResult out;
  auto lineage_field = row->Get(kLineageField);
  if (lineage_field.has_value() && lineage_field->is_string()) {
    auto lineage = Lineage::Deserialize(lineage_field->as_string());
    if (lineage.ok()) {
      out.lineage = std::move(*lineage);
    }
  }
  row->Erase(kLineageField);
  out.lineage.Append(MakeWriteId(key, entry->version));
  out.row = std::move(*row);
  return out;
}

Status SqlShim::InsertCtx(Region region, const std::string& table, Row row) {
  Lineage lineage = LineageApi::Current().value_or(Lineage());
  auto updated = Insert(region, table, std::move(row), std::move(lineage));
  if (!updated.ok()) {
    return updated.status();
  }
  LineageApi::Install(*updated);
  return Status::Ok();
}

Result<Row> SqlShim::SelectByPkCtx(Region region, const std::string& table,
                                   const Value& pk) const {
  auto result = SelectByPk(region, table, pk);
  if (!result.ok()) {
    return result.status();
  }
  LineageApi::Transfer(result->lineage);
  return std::move(result->row);
}

}  // namespace antipode
