// Passive consistency checker (paper §5.2 / §6.3): instead of enforcing
// barriers, developers sprinkle `Check` calls at candidate barrier sites
// during testing. Each check is a dry run — it records which dependencies
// would have blocked, without blocking. The aggregated report points at the
// sites (and the datastores) where real barriers are needed.

#ifndef SRC_ANTIPODE_CHECKER_H_
#define SRC_ANTIPODE_CHECKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/antipode/barrier.h"
#include "src/antipode/lineage.h"

namespace antipode {

class ConsistencyChecker {
 public:
  explicit ConsistencyChecker(ShimRegistry* registry = &ShimRegistry::Default())
      : registry_(registry) {}

  // Dry-runs enforcement of `lineage` at `region`, attributing the outcome
  // to the developer-chosen site label. Returns whether the site was
  // consistent this time.
  bool Check(const std::string& site, const Lineage& lineage, Region region);

  // Convenience: checks the current request context's lineage.
  bool CheckCtx(const std::string& site, Region region);

  struct SiteReport {
    uint64_t checks = 0;
    uint64_t inconsistent = 0;
    // How often each datastore had an unmet dependency at this site.
    std::map<std::string, uint64_t> unmet_by_store;
    // Dependencies on stores with no registered shim (not yet integrated).
    uint64_t unresolved = 0;

    double InconsistencyRate() const {
      return checks == 0 ? 0.0 : static_cast<double>(inconsistent) / static_cast<double>(checks);
    }
  };

  // Snapshot of all sites seen so far.
  std::map<std::string, SiteReport> Report() const;

  // Human-readable report, one line per site, sorted by inconsistency rate:
  // sites with non-zero rates are the places a real barrier belongs.
  std::string Summary() const;

  void Reset();

 private:
  ShimRegistry* registry_;
  mutable std::mutex mu_;
  std::map<std::string, SiteReport> sites_;
};

}  // namespace antipode

#endif  // SRC_ANTIPODE_CHECKER_H_
