#include "src/net/network.h"

#include <mutex>

#include "src/common/clock.h"
#include "src/obs/metrics.h"

namespace antipode {
namespace {

constexpr double kMillisPerMib = 10.0;

// One instrument set per (from, to) pair, resolved exactly once under a
// per-link once-flag: after warm-up the per-message path is two relaxed
// counter increments — no registry lock, no region-name std::string
// constructions, and no duplicated lookups from racing initializers.
struct LinkMetrics {
  std::once_flag once;
  Counter* messages = nullptr;
  Counter* bytes = nullptr;
};

void CountMessage(Region from, Region to, size_t payload_bytes) {
  static LinkMetrics links[kNumRegions][kNumRegions];
  LinkMetrics& link = links[RegionIndex(from)][RegionIndex(to)];
  std::call_once(link.once, [&link, from, to] {
    MetricsRegistry& registry = MetricsRegistry::Default();
    const std::string from_name(RegionName(from));
    const std::string to_name(RegionName(to));
    link.bytes = registry.GetCounter("net.bytes", {{"from", from_name}, {"to", to_name}});
    link.messages = registry.GetCounter("net.messages", {{"from", from_name}, {"to", to_name}});
  });
  link.messages->Increment();
  link.bytes->Increment(payload_bytes);
}

// A dropped message is counted but its handler never runs — fire-and-forget
// senders (casts) simply lose it, which is the point of the fault.
void CountDrop(Region from, Region to) {
  MetricsRegistry::Default()
      .GetCounter("net.dropped", {{"from", std::string(RegionName(from))},
                                  {"to", std::string(RegionName(to))}})
      ->Increment();
}

}  // namespace

double SimulatedNetwork::PayloadMillis(size_t payload_bytes) {
  return kMillisPerMib * static_cast<double>(payload_bytes) / (1024.0 * 1024.0);
}

LinkFault SimulatedNetwork::LinkFaultFor(Region from, Region to) {
  return faults_ == nullptr ? LinkFault{} : faults_->OnDeliver(from, to);
}

void SimulatedNetwork::Deliver(Region from, Region to, size_t payload_bytes,
                               std::function<void()> handler) {
  CountMessage(from, to, payload_bytes);
  const LinkFault fault = LinkFaultFor(from, to);
  if (fault.drop) {
    CountDrop(from, to);
    return;
  }
  const double millis = (topology_->SampleOneWayMillis(from, to) + PayloadMillis(payload_bytes)) *
                            fault.delay_factor +
                        fault.delay_add_model_ms;
  timers_->ScheduleAfter(TimeScale::FromModelMillis(millis), std::move(handler));
}

void SimulatedNetwork::Deliver(Region from, Region to, size_t payload_bytes,
                               TimerService::AffinityToken affinity,
                               std::function<void()> handler) {
  CountMessage(from, to, payload_bytes);
  const LinkFault fault = LinkFaultFor(from, to);
  if (fault.drop) {
    CountDrop(from, to);
    return;
  }
  const double millis = (topology_->SampleOneWayMillis(from, to) + PayloadMillis(payload_bytes)) *
                            fault.delay_factor +
                        fault.delay_add_model_ms;
  timers_->ScheduleAfter(TimeScale::FromModelMillis(millis), affinity, std::move(handler));
}

void SimulatedNetwork::SleepRtt(Region from, Region to, size_t request_bytes,
                                size_t response_bytes) {
  const double millis = topology_->SampleOneWayMillis(from, to) +
                        topology_->SampleOneWayMillis(to, from) +
                        PayloadMillis(request_bytes) + PayloadMillis(response_bytes);
  GlobalClock().SleepFor(TimeScale::FromModelMillis(millis));
}

void SimulatedNetwork::SleepOneWay(Region from, Region to, size_t payload_bytes) {
  CountMessage(from, to, payload_bytes);
  const double millis = topology_->SampleOneWayMillis(from, to) + PayloadMillis(payload_bytes);
  GlobalClock().SleepFor(TimeScale::FromModelMillis(millis));
}

SimulatedNetwork& SimulatedNetwork::Default() {
  static auto* network = new SimulatedNetwork();
  return *network;
}

}  // namespace antipode
