#include "src/net/network.h"

#include "src/common/clock.h"

namespace antipode {
namespace {

constexpr double kMillisPerMib = 10.0;

}  // namespace

double SimulatedNetwork::PayloadMillis(size_t payload_bytes) {
  return kMillisPerMib * static_cast<double>(payload_bytes) / (1024.0 * 1024.0);
}

void SimulatedNetwork::Deliver(Region from, Region to, size_t payload_bytes,
                               std::function<void()> handler) {
  const double millis = topology_->SampleOneWayMillis(from, to) + PayloadMillis(payload_bytes);
  timers_->ScheduleAfter(TimeScale::FromModelMillis(millis), std::move(handler));
}

void SimulatedNetwork::SleepRtt(Region from, Region to, size_t request_bytes,
                                size_t response_bytes) {
  const double millis = topology_->SampleOneWayMillis(from, to) +
                        topology_->SampleOneWayMillis(to, from) +
                        PayloadMillis(request_bytes) + PayloadMillis(response_bytes);
  SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(millis));
}

void SimulatedNetwork::SleepOneWay(Region from, Region to, size_t payload_bytes) {
  const double millis = topology_->SampleOneWayMillis(from, to) + PayloadMillis(payload_bytes);
  SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(millis));
}

SimulatedNetwork& SimulatedNetwork::Default() {
  static auto* network = new SimulatedNetwork();
  return *network;
}

}  // namespace antipode
