// Geographic regions for the simulated deployment. The paper's experiments
// span US, EU (Frankfurt), and SG (Singapore); we model those three plus a
// local-only pseudo-region for single-datacenter benchmarks (TrainTicket).

#ifndef SRC_NET_REGION_H_
#define SRC_NET_REGION_H_

#include <cstdint>
#include <string_view>

namespace antipode {

enum class Region : uint8_t {
  kUs = 0,
  kEu = 1,
  kSg = 2,
  kLocal = 3,  // same-datacenter deployments
};

inline constexpr int kNumRegions = 4;

std::string_view RegionName(Region region);
inline int RegionIndex(Region region) { return static_cast<int>(region); }

}  // namespace antipode

#endif  // SRC_NET_REGION_H_
