// Geographic regions for the simulated deployment. The paper's experiments
// span US, EU (Frankfurt), and SG (Singapore); we model those three plus a
// local-only pseudo-region for single-datacenter benchmarks (TrainTicket).

#ifndef SRC_NET_REGION_H_
#define SRC_NET_REGION_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace antipode {

enum class Region : uint8_t {
  kUs = 0,
  kEu = 1,
  kSg = 2,
  kLocal = 3,  // same-datacenter deployments
};

inline constexpr int kNumRegions = 4;

std::string_view RegionName(Region region);
inline int RegionIndex(Region region) { return static_cast<int>(region); }

// A set of regions as a bitmask over RegionIndex. Small enough to travel in
// one wire varint byte; used as the per-dependency locality scope in lineage
// (DESIGN.md §13) and as the enforcement-memo representation.
using RegionMask = uint8_t;

inline constexpr RegionMask kAllRegionsMask = (RegionMask{1} << kNumRegions) - 1;

inline constexpr RegionMask RegionBit(Region region) {
  return static_cast<RegionMask>(RegionMask{1} << static_cast<int>(region));
}

inline RegionMask RegionMaskOf(const std::vector<Region>& regions) {
  RegionMask mask = 0;
  for (Region region : regions) {
    mask = static_cast<RegionMask>(mask | RegionBit(region));
  }
  return mask;
}

// Region-groups partition process-wide enforcement state by locality: the
// visibility registry's buckets and the HLC clocks are per-group, so cache
// installs and frontier advancement in one group never contend with readers
// in another. A deployment's group is its home — the lowest-index region of
// its replica footprint; deployments with no declared replicas land in the
// local group.
inline constexpr int kNumRegionGroups = kNumRegions;

inline int RegionGroupOf(RegionMask footprint) {
  for (int r = 0; r < kNumRegions; ++r) {
    if ((footprint & (RegionMask{1} << r)) != 0) {
      return r;
    }
  }
  return RegionIndex(Region::kLocal);
}

}  // namespace antipode

#endif  // SRC_NET_REGION_H_
