#include "src/net/region.h"

namespace antipode {

std::string_view RegionName(Region region) {
  switch (region) {
    case Region::kUs:
      return "US";
    case Region::kEu:
      return "EU";
    case Region::kSg:
      return "SG";
    case Region::kLocal:
      return "LOCAL";
  }
  return "UNKNOWN";
}

}  // namespace antipode
