// Latency models for network links and replication pipelines. All values are
// in *model milliseconds* (see src/common/clock.h for the time-scaling rule).

#ifndef SRC_NET_LATENCY_MODEL_H_
#define SRC_NET_LATENCY_MODEL_H_

#include <memory>
#include <mutex>

#include "src/common/clock.h"
#include "src/common/random.h"

namespace antipode {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  // Samples one delay in model milliseconds. Thread-safe.
  virtual double SampleMillis() = 0;

  // Scaled wall-clock duration for one sample.
  Duration Sample() { return TimeScale::FromModelMillis(SampleMillis()); }
};

// Always the same delay.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(double millis) : millis_(millis) {}
  double SampleMillis() override { return millis_; }

 private:
  double millis_;
};

// Uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(double lo_millis, double hi_millis, uint64_t seed = 1);
  double SampleMillis() override;

 private:
  std::mutex mu_;
  Rng rng_;
  double lo_;
  double hi_;
};

// Lognormal with a given median and sigma — the shape WAN latencies and
// replication lags actually exhibit (long right tail).
class LognormalLatency final : public LatencyModel {
 public:
  LognormalLatency(double median_millis, double sigma, uint64_t seed = 1);
  double SampleMillis() override;

 private:
  std::mutex mu_;
  Rng rng_;
  double median_;
  double sigma_;
};

}  // namespace antipode

#endif  // SRC_NET_LATENCY_MODEL_H_
