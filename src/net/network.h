// SimulatedNetwork: asynchronous message delivery between regions with
// sampled WAN latency. Built on the shared TimerService so thousands of
// in-flight messages cost one dispatcher thread.
//
// Two delivery styles:
//  * `Deliver`   — fire-and-forget: run `handler` after one one-way delay.
//  * `SleepRtt`  — synchronous call helper: blocks the caller for a full
//                  round trip (used by the RPC layer for blocking calls).

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <functional>

#include "src/common/timer_service.h"
#include "src/fault/fault_injector.h"
#include "src/net/topology.h"

namespace antipode {

class SimulatedNetwork {
 public:
  explicit SimulatedNetwork(RegionTopology* topology = &RegionTopology::Default(),
                            TimerService* timers = &TimerService::Shared(),
                            FaultInjector* faults = &FaultInjector::Default())
      : topology_(topology), timers_(timers), faults_(faults) {}

  // Schedules `handler` to run after a sampled one-way delay from->to.
  // `payload_bytes` adds serialization/bandwidth cost for large messages
  // (modelled at 10 ms per MiB, ~0.8 Gbit/s effective WAN throughput).
  void Deliver(Region from, Region to, size_t payload_bytes, std::function<void()> handler);

  // Like above, but handlers sharing `affinity` run serially in deadline
  // order on the timer engine (FIFO at equal deadlines) — the knob callers
  // use to keep a logical flow (e.g. casts to one service) ordered while
  // unrelated deliveries fire in parallel.
  void Deliver(Region from, Region to, size_t payload_bytes,
               TimerService::AffinityToken affinity, std::function<void()> handler);

  // Blocks the calling thread for one sampled round trip (plus payload cost
  // in each direction).
  void SleepRtt(Region from, Region to, size_t request_bytes, size_t response_bytes);

  // Blocks for a single one-way delay.
  void SleepOneWay(Region from, Region to, size_t payload_bytes);

  RegionTopology* topology() { return topology_; }

  static SimulatedNetwork& Default();

  // Model milliseconds added per payload byte (bandwidth term).
  static double PayloadMillis(size_t payload_bytes);

 private:
  // The injected link fault for a message on from->to (drop / delay), or the
  // no-fault default when no injector is armed.
  LinkFault LinkFaultFor(Region from, Region to);

  RegionTopology* topology_;
  TimerService* timers_;
  FaultInjector* faults_;
};

}  // namespace antipode

#endif  // SRC_NET_NETWORK_H_
