#include "src/net/topology.h"

namespace antipode {
namespace {

constexpr double kIntraRegionMillis = 0.25;
constexpr double kLocalMillis = 0.05;

double DefaultMedian(Region a, Region b) {
  if (a == b) {
    return a == Region::kLocal ? kLocalMillis : kIntraRegionMillis;
  }
  if (a == Region::kLocal || b == Region::kLocal) {
    return kIntraRegionMillis;  // LOCAL is co-located with whichever region contacts it
  }
  auto pair = [&](Region x, Region y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  if (pair(Region::kUs, Region::kEu)) {
    return 45.0;
  }
  if (pair(Region::kUs, Region::kSg)) {
    return 90.0;
  }
  if (pair(Region::kEu, Region::kSg)) {
    return 80.0;
  }
  return 45.0;
}

}  // namespace

RegionTopology::RegionTopology(double jitter_sigma, uint64_t seed) {
  for (int i = 0; i < kNumRegions; ++i) {
    for (int j = 0; j < kNumRegions; ++j) {
      const double median = DefaultMedian(static_cast<Region>(i), static_cast<Region>(j));
      medians_[static_cast<size_t>(i)][static_cast<size_t>(j)] = median;
      links_[static_cast<size_t>(i)][static_cast<size_t>(j)] = std::make_unique<LognormalLatency>(
          median, jitter_sigma, seed + static_cast<uint64_t>(i * kNumRegions + j));
    }
  }
}

double RegionTopology::SampleOneWayMillis(Region from, Region to) {
  return links_[static_cast<size_t>(RegionIndex(from))][static_cast<size_t>(RegionIndex(to))]
      ->SampleMillis();
}

double RegionTopology::MedianOneWayMillis(Region from, Region to) const {
  return medians_[static_cast<size_t>(RegionIndex(from))][static_cast<size_t>(RegionIndex(to))];
}

RegionTopology& RegionTopology::Default() {
  static auto* topology = new RegionTopology();
  return *topology;
}

}  // namespace antipode
