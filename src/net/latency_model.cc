#include "src/net/latency_model.h"

namespace antipode {

UniformLatency::UniformLatency(double lo_millis, double hi_millis, uint64_t seed)
    : rng_(seed), lo_(lo_millis), hi_(hi_millis) {}

double UniformLatency::SampleMillis() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextUniform(lo_, hi_);
}

LognormalLatency::LognormalLatency(double median_millis, double sigma, uint64_t seed)
    : rng_(seed), median_(median_millis), sigma_(sigma) {}

double LognormalLatency::SampleMillis() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextLognormal(median_, sigma_);
}

}  // namespace antipode
