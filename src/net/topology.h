// Inter-region latency matrix. One-way delays in model milliseconds, drawn
// from lognormal distributions whose medians approximate public round-trip
// measurements between the paper's datacenters (us-central, eu-frankfurt,
// ap-singapore), halved to get one-way delay:
//
//   US–EU: ~90 ms RTT  -> 45 ms one-way
//   US–SG: ~180 ms RTT -> 90 ms one-way
//   EU–SG: ~160 ms RTT -> 80 ms one-way
//   intra-region:        0.25 ms one-way
//   LOCAL:               0.05 ms (same rack)

#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <array>
#include <memory>

#include "src/net/latency_model.h"
#include "src/net/region.h"

namespace antipode {

class RegionTopology {
 public:
  // Builds the default WAN model described above. `jitter_sigma` controls the
  // lognormal spread of every link.
  explicit RegionTopology(double jitter_sigma = 0.1, uint64_t seed = 7);

  // Samples a one-way delay between two regions (model milliseconds).
  double SampleOneWayMillis(Region from, Region to);
  Duration SampleOneWay(Region from, Region to) {
    return TimeScale::FromModelMillis(SampleOneWayMillis(from, to));
  }

  // Median one-way latency for a link, without jitter.
  double MedianOneWayMillis(Region from, Region to) const;

  // A process-wide default topology shared by substrates that are not handed
  // an explicit one.
  static RegionTopology& Default();

 private:
  std::array<std::array<std::unique_ptr<LatencyModel>, kNumRegions>, kNumRegions> links_;
  std::array<std::array<double, kNumRegions>, kNumRegions> medians_{};
};

}  // namespace antipode

#endif  // SRC_NET_TOPOLOGY_H_
