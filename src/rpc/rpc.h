// In-process RPC framework with automatic request-context propagation — the
// substrate role gRPC + OpenTelemetry play in the paper's benchmarks.
//
// Services register named methods and run their handlers on a per-service
// thread pool pinned to a region. A blocking `RpcClient::Call`:
//   1. serializes the caller's RequestContext into the request,
//   2. sleeps one sampled one-way WAN delay toward the callee region,
//   3. runs the handler under a ScopedContext built from the request,
//   4. sleeps the return one-way delay,
//   5. folds the handler's final baggage back into the caller's context
//      (using registered mergers — this is how updated lineages flow back in
//      RPC responses, paper Fig. 4 step ③).

#ifndef SRC_RPC_RPC_H_
#define SRC_RPC_RPC_H_

#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/context/merge.h"
#include "src/context/request_context.h"
#include "src/fault/fault_injector.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"

namespace antipode {

// A handler receives the request payload and returns a response payload.
// The request's context is installed thread-locally for the handler's
// duration, so Lineage API calls inside it see the caller's lineage.
using RpcHandler = std::function<Result<std::string>(const std::string& payload)>;

// Exponential backoff with full jitter for retried calls. Backoff before
// attempt k (k ≥ 2) is `initial * multiplier^(k-2)` model milliseconds,
// scaled by a uniform draw from [1-jitter, 1+jitter]. The draw comes from a
// generator seeded with `seed ^ call_id`, so a given call's backoff schedule
// is reproducible.
struct RpcRetryPolicy {
  int max_attempts = 1;  // 1 = no retries
  double initial_backoff_model_ms = 5.0;
  double backoff_multiplier = 2.0;
  double jitter = 0.5;
  uint64_t seed = 1;
};

// Per-call knobs for RpcClient::Call. `timeout` bounds one attempt;
// `deadline` bounds the whole call (all attempts and backoffs). Both use the
// repo-wide Duration::max() = "no timeout" sentinel. Only kUnavailable and
// kDeadlineExceeded outcomes are retried, and only when `idempotent` is true;
// kNotFound (unknown service/method) always surfaces immediately — retries
// must never mask a miswired call.
struct RpcCallOptions {
  Duration timeout = Duration::max();
  Duration deadline = Duration::max();
  RpcRetryPolicy retry;
  bool idempotent = true;
};

// A handler's result plus the serialized context it produced — what the
// server ships back, and what the dedup cache stores so a retried idempotent
// call observes the original execution's outcome (including its lineage
// baggage) instead of running the handler twice.
struct RpcServerOutcome {
  Result<std::string> result{Status::Internal("handler never ran")};
  std::string context_blob;
};

class RpcService {
 public:
  RpcService(std::string name, Region region, size_t num_threads);

  void RegisterMethod(std::string method, RpcHandler handler);

  const std::string& name() const { return name_; }
  Region region() const { return region_; }
  ThreadPool& executor() { return executor_; }

  // Looks up a handler; nullptr when the method is unknown.
  const RpcHandler* FindMethod(const std::string& method) const;

  // Retry de-duplication: a retried idempotent call re-presents its call id;
  // if the original attempt's handler already ran (e.g. only the response was
  // lost), the cached outcome is returned without re-running the handler.
  // FIFO-bounded — old entries are evicted once the cache holds
  // kDedupCacheCapacity outcomes.
  bool TryGetCachedOutcome(uint64_t call_id, RpcServerOutcome* out);
  void CacheOutcome(uint64_t call_id, RpcServerOutcome out);

  static constexpr size_t kDedupCacheCapacity = 1024;

 private:
  std::string name_;
  Region region_;
  ThreadPool executor_;
  mutable std::mutex mu_;
  std::map<std::string, RpcHandler> handlers_;
  std::unordered_map<uint64_t, RpcServerOutcome> dedup_cache_;  // guarded by mu_
  std::deque<uint64_t> dedup_order_;                            // guarded by mu_
};

class ServiceRegistry {
 public:
  explicit ServiceRegistry(SimulatedNetwork* network = &SimulatedNetwork::Default())
      : network_(network) {}

  // Creates and owns a service. Returns a stable pointer.
  RpcService* RegisterService(std::string name, Region region, size_t num_threads = 4);

  RpcService* Lookup(const std::string& name) const;
  SimulatedNetwork* network() { return network_; }

  // Drains every service's executor. Call before tearing down stores.
  void ShutdownAll();

 private:
  SimulatedNetwork* network_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<RpcService>> services_;
};

// A pre-resolved call target: service, handler, and metric instruments
// looked up once and reused across calls. Every string-addressed Call pays
// two registry map probes plus four label-map constructions for its metric
// instruments; on deep-graph requests issuing dozens of calls each, routes
// turn that into pointer reads. A route must outlive every call made with it
// (including calls whose response was dropped and whose handler is still
// draining), and assumes — like the cached RpcHandler pointer the string
// path already hands out — that methods are registered before traffic flows.
struct RpcRoute {
  RpcService* service = nullptr;
  const RpcHandler* handler = nullptr;
  std::string method;
  Counter* calls = nullptr;
  Counter* retries = nullptr;
  Counter* errors = nullptr;
  Counter* deadline_exceeded = nullptr;
  Counter* dedup_hits = nullptr;
  HistogramMetric* latency = nullptr;

  explicit operator bool() const { return handler != nullptr; }
};

class RpcClient {
 public:
  RpcClient(ServiceRegistry* registry, Region caller_region,
            FaultInjector* faults = &FaultInjector::Default())
      : registry_(registry), caller_region_(caller_region), faults_(faults) {}

  // Blocking unary call with context propagation both ways, default options
  // (no deadline, no retry).
  Result<std::string> Call(const std::string& service, const std::string& method,
                           const std::string& payload);

  // Blocking unary call with per-attempt timeout, overall deadline, and
  // seeded exponential-backoff retry of kUnavailable / kDeadlineExceeded
  // outcomes (idempotent calls only). A retried call carries the same call id
  // so the service's dedup cache prevents double handler execution when only
  // the response was lost.
  Result<std::string> Call(const std::string& service, const std::string& method,
                           const std::string& payload, const RpcCallOptions& options);

  // Resolves a route once for repeated calls (kNotFound on unknown
  // service/method). Routes are client-independent: any client (any caller
  // region) may call through a route, concurrently.
  Result<RpcRoute> Resolve(const std::string& service, const std::string& method) const;

  // Same call semantics as the string overloads, minus the per-call lookups.
  Result<std::string> Call(const RpcRoute& route, const std::string& payload);
  Result<std::string> Call(const RpcRoute& route, const std::string& payload,
                           const RpcCallOptions& options);

  // Fire-and-forget: delivers the invocation after one one-way delay and does
  // not propagate context back.
  Status Cast(const std::string& service, const std::string& method, const std::string& payload);

  Region caller_region() const { return caller_region_; }

 private:
  // One attempt of a retryable call; `attempt_deadline` bounds the wait for
  // the handler's response.
  Result<std::string> CallOnce(const RpcRoute& route, const std::string& payload,
                               uint64_t call_id, bool dedup, TimePoint attempt_deadline);

  ServiceRegistry* registry_;
  Region caller_region_;
  FaultInjector* faults_;
};

}  // namespace antipode

#endif  // SRC_RPC_RPC_H_
