// In-process RPC framework with automatic request-context propagation — the
// substrate role gRPC + OpenTelemetry play in the paper's benchmarks.
//
// Services register named methods and run their handlers on a per-service
// thread pool pinned to a region. A blocking `RpcClient::Call`:
//   1. serializes the caller's RequestContext into the request,
//   2. sleeps one sampled one-way WAN delay toward the callee region,
//   3. runs the handler under a ScopedContext built from the request,
//   4. sleeps the return one-way delay,
//   5. folds the handler's final baggage back into the caller's context
//      (using registered mergers — this is how updated lineages flow back in
//      RPC responses, paper Fig. 4 step ③).

#ifndef SRC_RPC_RPC_H_
#define SRC_RPC_RPC_H_

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/context/merge.h"
#include "src/context/request_context.h"
#include "src/net/network.h"

namespace antipode {

// A handler receives the request payload and returns a response payload.
// The request's context is installed thread-locally for the handler's
// duration, so Lineage API calls inside it see the caller's lineage.
using RpcHandler = std::function<Result<std::string>(const std::string& payload)>;

class RpcService {
 public:
  RpcService(std::string name, Region region, size_t num_threads);

  void RegisterMethod(std::string method, RpcHandler handler);

  const std::string& name() const { return name_; }
  Region region() const { return region_; }
  ThreadPool& executor() { return executor_; }

  // Looks up a handler; nullptr when the method is unknown.
  const RpcHandler* FindMethod(const std::string& method) const;

 private:
  std::string name_;
  Region region_;
  ThreadPool executor_;
  mutable std::mutex mu_;
  std::map<std::string, RpcHandler> handlers_;
};

class ServiceRegistry {
 public:
  explicit ServiceRegistry(SimulatedNetwork* network = &SimulatedNetwork::Default())
      : network_(network) {}

  // Creates and owns a service. Returns a stable pointer.
  RpcService* RegisterService(std::string name, Region region, size_t num_threads = 4);

  RpcService* Lookup(const std::string& name) const;
  SimulatedNetwork* network() { return network_; }

  // Drains every service's executor. Call before tearing down stores.
  void ShutdownAll();

 private:
  SimulatedNetwork* network_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<RpcService>> services_;
};

class RpcClient {
 public:
  RpcClient(ServiceRegistry* registry, Region caller_region)
      : registry_(registry), caller_region_(caller_region) {}

  // Blocking unary call with context propagation both ways.
  Result<std::string> Call(const std::string& service, const std::string& method,
                           const std::string& payload);

  // Fire-and-forget: delivers the invocation after one one-way delay and does
  // not propagate context back.
  Status Cast(const std::string& service, const std::string& method, const std::string& payload);

  Region caller_region() const { return caller_region_; }

 private:
  ServiceRegistry* registry_;
  Region caller_region_;
};

}  // namespace antipode

#endif  // SRC_RPC_RPC_H_
