#include "src/rpc/rpc.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <random>

#include "src/common/property.h"
#include "src/common/sim.h"
#include "src/obs/trace.h"

namespace antipode {

RpcService::RpcService(std::string name, Region region, size_t num_threads)
    : name_(std::move(name)), region_(region), executor_(num_threads, name_) {}

void RpcService::RegisterMethod(std::string method, RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[std::move(method)] = std::move(handler);
}

const RpcHandler* RpcService::FindMethod(const std::string& method) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handlers_.find(method);
  return it == handlers_.end() ? nullptr : &it->second;
}

RpcService* ServiceRegistry::RegisterService(std::string name, Region region,
                                             size_t num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  auto service = std::make_unique<RpcService>(name, region, num_threads);
  RpcService* raw = service.get();
  services_[std::move(name)] = std::move(service);
  return raw;
}

RpcService* ServiceRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second.get();
}

void ServiceRegistry::ShutdownAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, service] : services_) {
    service->executor().Shutdown();
  }
}

bool RpcService::TryGetCachedOutcome(uint64_t call_id, RpcServerOutcome* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dedup_cache_.find(call_id);
  if (it == dedup_cache_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

void RpcService::CacheOutcome(uint64_t call_id, RpcServerOutcome out) {
  // Only completed executions may enter the dedup cache: replaying a cached
  // transient error to a retry would defeat the retry.
  ANTIPODE_ALWAYS("rpc.dedup_cache_only_ok", out.result.ok());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = dedup_cache_.emplace(call_id, std::move(out));
  if (!inserted) {
    return;  // a concurrent retry's execution already cached this call
  }
  dedup_order_.push_back(call_id);
  while (dedup_order_.size() > kDedupCacheCapacity) {
    dedup_cache_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
}

namespace {

// Call ids are process-unique so retried attempts of one logical call — and
// only those — share an id in a service's dedup cache.
std::atomic<uint64_t> g_next_call_id{1};

// Runs `handler` under a ScopedContext built from the request, wrapped in a
// server-side span whose parent rides in the request's baggage. The server
// span installs itself into the scoped context before the handler runs, so
// store writes and nested calls inside the handler become its children.
RpcServerOutcome RunHandler(const RpcHandler& handler, const std::string& payload,
                            const std::string& context_blob, const std::string& service,
                            const std::string& method, Region region) {
  RpcServerOutcome out;
  if (context_blob.empty()) {
    out.result = handler(payload);
    out.context_blob = RequestContext::SerializeCurrent();
    return out;
  }
  ScopedContext scoped(RequestContext::Deserialize(context_blob));
  {
    Span span = Span::Start("rpc/server", {.category = "rpc", .region = region});
    if (span.recording()) {
      span.Annotate("service", service);
      span.Annotate("method", method);
    }
    out.result = handler(payload);
  }
  out.context_blob = scoped.context().Serialize();
  return out;
}

}  // namespace

Result<RpcRoute> RpcClient::Resolve(const std::string& service, const std::string& method) const {
  RpcService* target = registry_->Lookup(service);
  if (target == nullptr) {
    return Status::NotFound("no such service: " + service);
  }
  const RpcHandler* handler = target->FindMethod(method);
  if (handler == nullptr) {
    return Status::NotFound("no such method: " + service + "/" + method);
  }
  RpcRoute route;
  route.service = target;
  route.handler = handler;
  route.method = method;
  MetricsRegistry& metrics = MetricsRegistry::Default();
  route.calls = metrics.GetCounter("rpc.calls", {{"service", service}});
  route.retries = metrics.GetCounter("rpc.retries", {{"service", service}});
  route.errors = metrics.GetCounter("rpc.errors", {{"service", service}});
  route.deadline_exceeded = metrics.GetCounter("rpc.deadline_exceeded", {{"service", service}});
  route.dedup_hits = metrics.GetCounter("rpc.dedup_hits", {{"service", service}});
  route.latency = metrics.GetHistogram("rpc.latency_model_ms", {{"service", service}});
  return route;
}

Result<std::string> RpcClient::Call(const std::string& service, const std::string& method,
                                    const std::string& payload) {
  return Call(service, method, payload, RpcCallOptions{});
}

Result<std::string> RpcClient::Call(const std::string& service, const std::string& method,
                                    const std::string& payload, const RpcCallOptions& options) {
  auto route = Resolve(service, method);
  if (!route.ok()) {
    return route.status();
  }
  return Call(route.value(), payload, options);
}

Result<std::string> RpcClient::Call(const RpcRoute& route, const std::string& payload) {
  return Call(route, payload, RpcCallOptions{});
}

Result<std::string> RpcClient::CallOnce(const RpcRoute& route, const std::string& payload,
                                        uint64_t call_id, bool dedup, TimePoint attempt_deadline) {
  RpcService* const target = route.service;
  const std::string& service = target->name();
  // Serialized after the client span is installed (by Call), so the callee
  // sees it as its parent.
  const std::string context_blob = RequestContext::SerializeCurrent();
  const size_t request_bytes = payload.size() + context_blob.size();
  const Region target_region = target->region();

  const RpcFault fault = faults_ == nullptr ? RpcFault{} : faults_->OnRpc(service);
  // A lost response with no deadline would hang the caller forever; the model
  // refuses that, so response loss only fires against deadline-bounded calls.
  const bool drop_response = fault.drop_response && attempt_deadline != TimePoint::max();

  // Outbound one-way delay, paid by the (blocking) caller.
  registry_->network()->SleepOneWay(caller_region_, target_region, request_bytes);
  if (GlobalClock().Now() >= attempt_deadline) {
    return Status::DeadlineExceeded("rpc deadline exceeded: " + service + "/" + route.method);
  }

  if (fault.fail_handler) {
    // The request reaches a broken server: the handler never runs (so nothing
    // is cached) and the caller sees a retryable transport-level failure.
    return Status::Unavailable("injected rpc failure: " + service + "/" + route.method);
  }

  const RpcHandler* const handler = route.handler;
  Counter* const dedup_hits = route.dedup_hits;
  RpcServerOutcome out;
  if (attempt_deadline == TimePoint::max()) {
    // No deadline: the caller provably blocks until the handler's outcome is
    // set, so the promise lives on this stack and the task borrows the
    // request strings by reference — the dispatch itself allocates only the
    // queued std::function.
    std::promise<RpcServerOutcome> outcome;
    auto future = outcome.get_future();
    const bool submitted = target->executor().Submit(
        [&outcome, &payload, &context_blob, &method = route.method, handler, target, call_id,
         dedup, dedup_hits] {
          RpcServerOutcome result;
          if (dedup && target->TryGetCachedOutcome(call_id, &result)) {
            ANTIPODE_REACHABLE("rpc.dedup_hit");
            dedup_hits->Increment();
          } else {
            result = RunHandler(*handler, payload, context_blob, target->name(), method,
                                target->region());
            // Only completed executions are cached: a transient handler error
            // must be re-attempted, not replayed, by a retry.
            if (dedup && result.result.ok()) {
              target->CacheOutcome(call_id, result);
            }
          }
          outcome.set_value(std::move(result));
        });
    if (!submitted) {
      return Status::Unavailable("service shut down: " + service);
    }
    if (SimScheduler* sim = SimScheduler::Active()) {
      // Cooperative wait: pump the simulation until the handler event sets
      // the promise. A quiescent heap with no outcome means the handler can
      // never run (executor torn down mid-episode) — surface it instead of
      // blocking a future that will never be fulfilled.
      const bool ready = sim->RunUntil(
          [&future] {
            return future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
          },
          TimePoint::max());
      if (!ready) {
        return Status::Unavailable("rpc response never arrived (simulation quiescent): " +
                                   service);
      }
    } else {
      future.wait();
    }
    out = future.get();
  } else {
    // Deadline-bounded: the caller may abandon the wait while the handler is
    // still running (or its response was dropped), so the task owns copies of
    // everything it touches and the promise is heap-shared.
    auto outcome = std::make_shared<std::promise<RpcServerOutcome>>();
    auto future = outcome->get_future();
    const bool submitted = target->executor().Submit(
        [outcome, payload, context_blob, method = route.method, handler, target, call_id, dedup,
         drop_response, dedup_hits] {
          RpcServerOutcome result;
          if (dedup && target->TryGetCachedOutcome(call_id, &result)) {
            ANTIPODE_REACHABLE("rpc.dedup_hit");
            dedup_hits->Increment();
          } else {
            result = RunHandler(*handler, payload, context_blob, target->name(), method,
                                target->region());
            if (dedup && result.result.ok()) {
              target->CacheOutcome(call_id, result);
            }
          }
          // A dropped response still executed (and cached) — the promise is
          // simply never fulfilled, and the caller's deadline fires.
          if (!drop_response) {
            outcome->set_value(std::move(result));
          }
        });
    if (!submitted) {
      return Status::Unavailable("service shut down: " + service);
    }
    bool ready;
    if (SimScheduler* sim = SimScheduler::Active()) {
      // Virtual-time deadline wait: pump events until the promise resolves or
      // the deadline passes (including the dropped-response case, where the
      // promise is never fulfilled and the deadline is the only exit).
      ready = sim->RunUntil(
          [&future] {
            return future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
          },
          attempt_deadline);
    } else {
      ready = future.wait_until(attempt_deadline) == std::future_status::ready;
    }
    if (!ready) {
      return Status::DeadlineExceeded("rpc deadline exceeded: " + service + "/" + route.method);
    }
    out = future.get();
  }

  const size_t response_bytes =
      (out.result.ok() ? out.result.value().size() : 0) + out.context_blob.size();
  registry_->network()->SleepOneWay(target_region, caller_region_, response_bytes);
  if (fault.delay_add_model_ms > 0.0) {
    GlobalClock().SleepFor(TimeScale::FromModelMillis(fault.delay_add_model_ms));
  }
  if (GlobalClock().Now() >= attempt_deadline) {
    return Status::DeadlineExceeded("rpc deadline exceeded: " + service + "/" + route.method);
  }

  // Fold the handler's final baggage back into the caller's context so that
  // lineage updates made inside the callee become visible here.
  RequestContext* current = RequestContext::Current();
  if (current != nullptr && !out.context_blob.empty()) {
    const RequestContext remote = RequestContext::Deserialize(out.context_blob);
    BaggageMergerRegistry::Instance().MergeInto(*current, remote.baggage());
  }
  return out.result;
}

namespace {

bool RetryableCode(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kDeadlineExceeded;
}

}  // namespace

Result<std::string> RpcClient::Call(const RpcRoute& route, const std::string& payload,
                                    const RpcCallOptions& options) {
  if (route.handler == nullptr) {
    return Status::NotFound("call through unresolved rpc route");
  }
  const TimePoint call_start = GlobalClock().Now();
  const TimePoint call_deadline = DeadlineAfter(options.deadline);
  const int max_attempts = std::max(1, options.retry.max_attempts);
  const bool may_retry = options.idempotent && max_attempts > 1;
  // In simulation, call ids come from the episode's scheduler: the process
  // counter would leak state across episodes (ids seed the backoff RNG, so a
  // drifting counter would desynchronize replays).
  SimScheduler* const sim = SimScheduler::Active();
  const uint64_t call_id =
      sim != nullptr ? sim->NextCallId() : g_next_call_id.fetch_add(1, std::memory_order_relaxed);
  std::mt19937_64 backoff_rng(options.retry.seed ^ call_id);

  Span span = Span::Start("rpc/call", {.category = "rpc", .region = caller_region_});
  if (span.recording()) {
    span.Annotate("service", route.service->name());
    span.Annotate("method", route.method);
  }

  route.calls->Increment();

  Result<std::string> result = Status::Internal("rpc never attempted");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      ANTIPODE_REACHABLE("rpc.retry_attempted");
      route.retries->Increment();
      const double base = options.retry.initial_backoff_model_ms *
                          std::pow(options.retry.backoff_multiplier, attempt - 2);
      std::uniform_real_distribution<double> jitter(1.0 - options.retry.jitter,
                                                    1.0 + options.retry.jitter);
      const Duration backoff = TimeScale::FromModelMillis(base * jitter(backoff_rng));
      GlobalClock().SleepFor(std::min(backoff, RemainingBudget(call_deadline)));
    }
    if (RemainingBudget(call_deadline) == Duration::zero()) {
      result = Status::DeadlineExceeded("rpc deadline exceeded: " + route.service->name() + "/" +
                                        route.method);
      break;
    }
    TimePoint attempt_deadline = call_deadline;
    if (options.timeout != Duration::max()) {
      attempt_deadline = std::min(attempt_deadline, DeadlineAfter(options.timeout));
    }
    result = CallOnce(route, payload, call_id, may_retry, attempt_deadline);
    if (result.ok() || !may_retry || !RetryableCode(result.status().code())) {
      break;
    }
  }

  // The handler's span context must not leak back as the caller's current
  // span (unregistered mergers copy baggage keys wholesale).
  if (span.recording()) {
    SetCurrentSpanContext(span.context());
  }
  if (!result.ok()) {
    route.errors->Increment();
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      route.deadline_exceeded->Increment();
    }
  }
  route.latency->Record(TimeScale::ToModelMillis(
      std::chrono::duration_cast<Duration>(GlobalClock().Now() - call_start)));
  return result;
}

Status RpcClient::Cast(const std::string& service, const std::string& method,
                       const std::string& payload) {
  RpcService* target = registry_->Lookup(service);
  if (target == nullptr) {
    return Status::NotFound("no such service: " + service);
  }
  const RpcHandler* handler = target->FindMethod(method);
  if (handler == nullptr) {
    return Status::NotFound("no such method: " + service + "/" + method);
  }
  const std::string context_blob = RequestContext::SerializeCurrent();
  const Region target_region = target->region();
  MetricsRegistry::Default().GetCounter("rpc.casts", {{"service", service}})->Increment();
  // Casts from this caller to one service share an affinity token, so their
  // delivery (and hence executor submission) order is preserved even though
  // the timer engine runs unrelated callbacks concurrently.
  const TimerService::AffinityToken affinity =
      std::hash<std::string>{}(service) ^ (static_cast<uint64_t>(RegionIndex(caller_region_)) << 32);
  registry_->network()->Deliver(
      caller_region_, target->region(), payload.size() + context_blob.size(), affinity,
      [target, handler, payload, context_blob, service, method, target_region] {
        target->executor().Submit([handler, payload, context_blob, service, method,
                                   target_region] {
          RunHandler(*handler, payload, context_blob, service, method, target_region);
        });
      });
  return Status::Ok();
}

}  // namespace antipode
