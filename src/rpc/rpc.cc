#include "src/rpc/rpc.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace antipode {

RpcService::RpcService(std::string name, Region region, size_t num_threads)
    : name_(std::move(name)), region_(region), executor_(num_threads, name_) {}

void RpcService::RegisterMethod(std::string method, RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[std::move(method)] = std::move(handler);
}

const RpcHandler* RpcService::FindMethod(const std::string& method) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handlers_.find(method);
  return it == handlers_.end() ? nullptr : &it->second;
}

RpcService* ServiceRegistry::RegisterService(std::string name, Region region,
                                             size_t num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  auto service = std::make_unique<RpcService>(name, region, num_threads);
  RpcService* raw = service.get();
  services_[std::move(name)] = std::move(service);
  return raw;
}

RpcService* ServiceRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second.get();
}

void ServiceRegistry::ShutdownAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, service] : services_) {
    service->executor().Shutdown();
  }
}

namespace {

struct HandlerOutcome {
  Result<std::string> result{Status::Internal("handler never ran")};
  std::string context_blob;
};

}  // namespace

namespace {

// Runs `handler` under a ScopedContext built from the request, wrapped in a
// server-side span whose parent rides in the request's baggage. The server
// span installs itself into the scoped context before the handler runs, so
// store writes and nested calls inside the handler become its children.
HandlerOutcome RunHandler(const RpcHandler& handler, const std::string& payload,
                          const std::string& context_blob, const std::string& service,
                          const std::string& method, Region region) {
  HandlerOutcome out;
  if (context_blob.empty()) {
    out.result = handler(payload);
    out.context_blob = RequestContext::SerializeCurrent();
    return out;
  }
  ScopedContext scoped(RequestContext::Deserialize(context_blob));
  {
    Span span = Span::Start("rpc/server", {.category = "rpc", .region = region});
    if (span.recording()) {
      span.Annotate("service", service);
      span.Annotate("method", method);
    }
    out.result = handler(payload);
  }
  out.context_blob = scoped.context().Serialize();
  return out;
}

}  // namespace

Result<std::string> RpcClient::Call(const std::string& service, const std::string& method,
                                    const std::string& payload) {
  RpcService* target = registry_->Lookup(service);
  if (target == nullptr) {
    return Status::NotFound("no such service: " + service);
  }
  const RpcHandler* handler = target->FindMethod(method);
  if (handler == nullptr) {
    return Status::NotFound("no such method: " + service + "/" + method);
  }

  const TimePoint call_start = SystemClock::Instance().Now();
  Span span = Span::Start("rpc/call", {.category = "rpc", .region = caller_region_});
  if (span.recording()) {
    span.Annotate("service", service);
    span.Annotate("method", method);
  }

  // Serialized after the client span is installed, so the callee sees it as
  // its parent.
  const std::string context_blob = RequestContext::SerializeCurrent();
  const size_t request_bytes = payload.size() + context_blob.size();

  // Outbound one-way delay, paid by the (blocking) caller.
  registry_->network()->SleepOneWay(caller_region_, target->region(), request_bytes);

  auto outcome = std::make_shared<std::promise<HandlerOutcome>>();
  auto future = outcome->get_future();
  const Region target_region = target->region();
  const bool submitted =
      target->executor().Submit([handler, payload, context_blob, outcome, service, method,
                                 target_region] {
        outcome->set_value(
            RunHandler(*handler, payload, context_blob, service, method, target_region));
      });
  if (!submitted) {
    return Status::Unavailable("service shut down: " + service);
  }

  HandlerOutcome out = future.get();

  const size_t response_bytes =
      (out.result.ok() ? out.result.value().size() : 0) + out.context_blob.size();
  registry_->network()->SleepOneWay(target->region(), caller_region_, response_bytes);

  // Fold the handler's final baggage back into the caller's context so that
  // lineage updates made inside the callee become visible here.
  RequestContext* current = RequestContext::Current();
  if (current != nullptr && !out.context_blob.empty()) {
    const RequestContext remote = RequestContext::Deserialize(out.context_blob);
    BaggageMergerRegistry::Instance().MergeInto(*current, remote.baggage());
    // The handler's span context must not leak back as the caller's current
    // span (unregistered mergers copy baggage keys wholesale).
    if (span.recording()) {
      SetCurrentSpanContext(span.context());
    }
  }

  MetricsRegistry& metrics = MetricsRegistry::Default();
  metrics.GetCounter("rpc.calls", {{"service", service}})->Increment();
  if (!out.result.ok()) {
    metrics.GetCounter("rpc.errors", {{"service", service}})->Increment();
  }
  metrics.GetHistogram("rpc.latency_model_ms", {{"service", service}})
      ->Record(TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
          SystemClock::Instance().Now() - call_start)));
  return out.result;
}

Status RpcClient::Cast(const std::string& service, const std::string& method,
                       const std::string& payload) {
  RpcService* target = registry_->Lookup(service);
  if (target == nullptr) {
    return Status::NotFound("no such service: " + service);
  }
  const RpcHandler* handler = target->FindMethod(method);
  if (handler == nullptr) {
    return Status::NotFound("no such method: " + service + "/" + method);
  }
  const std::string context_blob = RequestContext::SerializeCurrent();
  const Region target_region = target->region();
  MetricsRegistry::Default().GetCounter("rpc.casts", {{"service", service}})->Increment();
  // Casts from this caller to one service share an affinity token, so their
  // delivery (and hence executor submission) order is preserved even though
  // the timer engine runs unrelated callbacks concurrently.
  const TimerService::AffinityToken affinity =
      std::hash<std::string>{}(service) ^ (static_cast<uint64_t>(RegionIndex(caller_region_)) << 32);
  registry_->network()->Deliver(
      caller_region_, target->region(), payload.size() + context_blob.size(), affinity,
      [target, handler, payload, context_blob, service, method, target_region] {
        target->executor().Submit([handler, payload, context_blob, service, method,
                                   target_region] {
          RunHandler(*handler, payload, context_blob, service, method, target_region);
        });
      });
  return Status::Ok();
}

}  // namespace antipode
