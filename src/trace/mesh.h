// Trace mesh: materializes sampled CallGraphGenerator request graphs as a
// live topology — hundreds of stateless RPC services layered by call depth,
// stateful calls bound to real replicated stores behind Antipode shims — so
// the paper's core claim (bolt-on XCY enforcement stays cheap on real
// microservice shapes) can be stressed on graphs with ≥20 stateful calls and
// depth ≥5, which the five hand-written apps (2–6 stateful calls) never
// reach. The Palette/Ditto move: sample representative traces, run them.
//
// Two halves, split so determinism is testable without spinning up threads:
//   * BuildMeshTopology — pure function of MeshOptions. Samples graphs,
//     admits the deep ones, and rewrites every node to a mesh-local target:
//     a stateless node at depth d becomes live service ⟨layer d, slot
//     service mod width⟩ (layer-monotone edges keep the live call graph a
//     DAG, so blocking RPC chains can never deadlock on per-service pools);
//     a stateful node becomes a binding ⟨stateful id mod width⟩ → shared
//     store ⟨id mod num_stores⟩ with its own key namespace.
//   * LiveMesh — materializes a topology: one RpcService per mesh service
//     (handlers execute a plan subtree), one ReplicatedStore + shim per
//     store index, pre-resolved RpcRoutes for every edge.
//
// Ordering contract (DESIGN.md §14): a handler executes its node's children
// strictly in plan order, stateful writes inline and stateless children as
// blocking RPC calls that return before the next sibling starts. Execution
// order therefore equals node-index order, and the lineage accumulates the
// plan's stateful calls depth-first exactly as the generator emitted them —
// `MeshPlan::last_stateful` is the final write of the request, the
// tightest-raced target for the terminal guarded read.

#ifndef SRC_TRACE_MESH_H_
#define SRC_TRACE_MESH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/antipode/antipode.h"
#include "src/rpc/rpc.h"
#include "src/store/kv_store.h"
#include "src/trace/call_graph.h"

namespace antipode {

struct MeshOptions {
  // Generator knobs (seed drives both sampling and remapping, so one seed
  // fully determines the topology).
  TraceGenOptions gen;

  // Plan admission window: the deep-graph regime the mesh exists to stress.
  // Graphs outside it are discarded (they remain counted in graphs_sampled).
  uint32_t min_stateful_calls = 20;
  uint32_t max_stateful_calls = 60;
  uint32_t min_depth = 5;
  // Reject pathologically wide graphs: one request's cost is proportional to
  // total calls, and the tail of the calibrated distribution reaches the
  // generator's 4000-call cap.
  uint32_t max_plan_calls = 400;

  // Sampling stops once both targets are met (or the sample cap is hit):
  // at least `num_plans` admitted plans AND at least `min_live_services`
  // distinct live services (stateless services + stateful bindings).
  uint32_t num_plans = 48;
  uint32_t min_live_services = 200;
  uint32_t max_plans = 192;            // hard cap while chasing live services
  uint64_t max_sampled_graphs = 200000;

  // Live-identity widths. A stateless node at depth d maps to slot
  // `service % stateless_layer_width` of layer d; a stateful node maps to
  // binding `service % stateful_width`.
  uint32_t stateless_layer_width = 24;
  uint32_t stateful_width = 64;
  uint32_t num_stores = 12;
};

// Identity of one live stateless service: ⟨depth layer, slot⟩.
struct MeshServiceKey {
  uint32_t layer = 0;
  uint32_t slot = 0;

  bool operator==(const MeshServiceKey&) const = default;
  bool operator<(const MeshServiceKey& other) const {
    return layer != other.layer ? layer < other.layer : slot < other.slot;
  }
};

// One live stateful binding: a key namespace (`service`, the remapped
// stateful id) on a shared store.
struct MeshBinding {
  uint32_t service = 0;  // remapped id; also the key-namespace tag
  uint32_t store = 0;    // index into the mesh's shared store set

  bool operator==(const MeshBinding&) const = default;
};

// One call of an admitted plan, rewritten to mesh-local targets. `target`
// indexes MeshTopology::services (stateless) or ::bindings (stateful).
struct MeshCall {
  bool stateful = false;
  uint32_t target = 0;
  uint32_t depth = 0;
  std::vector<uint32_t> children;  // indices into MeshPlan::calls, plan order

  bool operator==(const MeshCall&) const = default;
};

// A whole admitted request plan. calls[0] is the stateless root; a call
// always precedes its children (the generator's layout, preserved by the
// rewrite), so node-index order is execution order.
struct MeshPlan {
  std::vector<MeshCall> calls;
  uint32_t stateful_calls = 0;
  uint32_t max_depth = 0;
  // Index of the execution-order-last stateful call: the terminal guarded
  // read targets this write.
  uint32_t last_stateful = 0;

  bool operator==(const MeshPlan&) const = default;
};

// Graph-shape statistics over the admitted plan set (reported in the bench
// JSON so the acceptance regime — ≥20 stateful calls, depth ≥5 — is visible
// in the artifact).
struct MeshStats {
  uint64_t graphs_sampled = 0;
  uint32_t min_stateful_calls = 0;
  uint32_t max_stateful_calls = 0;
  double mean_stateful_calls = 0.0;
  uint32_t min_depth = 0;
  uint32_t max_depth = 0;
  double mean_depth = 0.0;
  double mean_total_calls = 0.0;
};

struct MeshTopology {
  MeshOptions options;
  // Distinct live identities in first-appearance order (deterministic).
  std::vector<MeshServiceKey> services;
  std::vector<MeshBinding> bindings;
  std::vector<MeshPlan> plans;
  MeshStats stats;

  size_t live_services() const { return services.size() + bindings.size(); }

  static std::string ServiceName(const MeshServiceKey& key);
  static std::string StoreName(uint32_t store, const std::string& tag);
};

// Samples and rewrites plans until the admission targets are met. Pure:
// identical options (seed included) yield an identical topology.
MeshTopology BuildMeshTopology(const MeshOptions& options);

struct LiveMeshOptions {
  bool antipode = true;
  bool use_cache = true;
  bool use_scope = true;
  EnforcementBackendKind backend = EnforcementBackendKind::kLineage;
  // Where services run and writes land / where the terminal read executes.
  Region home = Region::kEu;
  Region read_region = Region::kUs;
  // Regions every store replicates across (home and read_region must be in).
  std::vector<Region> store_regions = {Region::kEu, Region::kUs};
  // Regions the terminal barrier enforces at. A singleton set uses the
  // region-local Barrier; larger sets use BarrierGlobal — include regions
  // outside store_regions to exercise locality scoping (scoped barriers skip
  // those ⟨store, region⟩ pairs, unscoped ones arm vacuous waits).
  std::vector<Region> barrier_regions = {Region::kUs};
  size_t threads_per_service = 2;
  // Uniquifies store names so consecutive LiveMesh instances start cold.
  std::string tag;
};

// A materialized topology: live services + stores, ready to execute plans.
// Construction registers everything and pre-resolves one RpcRoute per
// service; destruction shuts the executors down (all in-flight requests must
// have completed first — the bench drains before teardown).
class LiveMesh {
 public:
  LiveMesh(const MeshTopology* topology, LiveMeshOptions options);
  ~LiveMesh();

  LiveMesh(const LiveMesh&) = delete;
  LiveMesh& operator=(const LiveMesh&) = delete;

  struct WriterResult {
    Status status = Status::Ok();
    uint32_t plan = 0;
    // The lineage the request carried back to the writer after every RPC
    // response merged (empty on the no-antipode baseline).
    Lineage lineage;
  };

  // Runs plan `request_index % plans` write-side under the current request
  // context: one RPC into the root service, which executes the whole tree.
  // On Antipode meshes the caller context must be live (a fresh ScopedContext
  // per request); LineageApi::Root() is called internally.
  WriterResult RunWriterSide(uint64_t request_index);

  // Terminal read of the plan's last write at `read_region`, guarded by the
  // configured barrier on Antipode meshes. Returns true when the value was
  // found — false is an XCY violation.
  bool RunReaderSide(const WriterResult& writer, uint64_t request_index);

  void DrainReplication();

  const MeshTopology& topology() const { return *topology_; }
  const LiveMeshOptions& options() const { return options_; }

 private:
  Result<std::string> HandleCall(const std::string& payload);
  Status ExecuteChildren(uint32_t plan_index, uint32_t node_index, uint64_t request_index);
  std::string KeyFor(const MeshBinding& binding, uint32_t node_index,
                     uint64_t request_index) const;

  const MeshTopology* topology_;
  LiveMeshOptions options_;
  ServiceRegistry registry_;
  std::vector<std::unique_ptr<KvStore>> stores_;
  std::vector<std::unique_ptr<KvShim>> shims_;
  ShimRegistry shim_registry_;
  BarrierOptions barrier_options_;
  std::unique_ptr<RpcClient> client_;
  std::vector<RpcRoute> routes_;  // one per topology service, same order
};

}  // namespace antipode

#endif  // SRC_TRACE_MESH_H_
