#include "src/trace/call_graph.h"

#include "src/antipode/lineage.h"

namespace antipode {

CallGraphGenerator::CallGraphGenerator(TraceGenOptions options)
    : options_(options),
      rng_(options.seed),
      stateless_rng_(options.seed ^ 0x5337A7E55ULL),
      fanout_dist_(options.max_fanout, options.fanout_theta),
      service_dist_(options.request_service_range, options.service_popularity_theta) {}

void CallGraphGenerator::Expand(uint32_t depth, uint32_t node, CallGraph* graph) {
  CallGraphStats* stats = &graph->stats;
  stats->max_depth = std::max(stats->max_depth, depth);
  if (depth >= options_.max_depth || stats->total_calls >= options_.max_calls_per_request) {
    return;
  }
  // Deeper nodes branch less; this keeps graphs finite and matches the
  // decreasing width of real request trees.
  const double depth_damping =
      1.0 - static_cast<double>(depth) / static_cast<double>(options_.max_depth);
  auto fanout = static_cast<uint32_t>(
      std::max<double>(1.0, std::ceil(static_cast<double>(fanout_dist_.Next(rng_) + 1) *
                                      depth_damping)));
  if (depth == 0) {
    fanout = std::max(fanout, options_.min_root_fanout);
  }
  for (uint32_t i = 0; i < fanout; ++i) {
    if (stats->total_calls >= options_.max_calls_per_request) {
      return;
    }
    stats->total_calls++;
    if (rng_.NextBernoulli(options_.stateful_child_probability)) {
      stats->stateful_calls++;
      const auto service = static_cast<uint32_t>(
          (request_base_ + service_dist_.Next(rng_)) % options_.num_stateful_services);
      stats->unique_stateful_services.insert(service);
      stats->stateful_service_sequence.push_back(service);
      stats->max_depth = std::max(stats->max_depth, depth + 1);
      const auto child = static_cast<uint32_t>(graph->nodes.size());
      graph->nodes.push_back(CallNode{service, /*stateful=*/true, depth + 1, {}});
      graph->nodes[node].children.push_back(child);
    } else {
      // Stateless child identity comes from the secondary stream: the primary
      // stream must replay draw-for-draw whether or not a caller keeps the
      // tree, and the calibrated statistics never depended on stateless ids.
      const auto service = static_cast<uint32_t>(
          stateless_rng_.NextBelow(std::max<uint32_t>(1, options_.num_stateless_services)));
      const auto child = static_cast<uint32_t>(graph->nodes.size());
      graph->nodes.push_back(CallNode{service, /*stateful=*/false, depth + 1, {}});
      graph->nodes[node].children.push_back(child);
      Expand(depth + 1, child, graph);
    }
  }
}

CallGraph CallGraphGenerator::NextGraph() {
  CallGraph graph;
  request_base_ = rng_.NextBelow(options_.num_stateful_services);
  graph.nodes.push_back(CallNode{static_cast<uint32_t>(stateless_rng_.NextBelow(
                                     std::max<uint32_t>(1, options_.num_stateless_services))),
                                 /*stateful=*/false, 0, {}});
  Expand(0, 0, &graph);
  return graph;
}

CallGraphStats CallGraphGenerator::Next() { return NextGraph().stats; }

TraceAnalysis AnalyzeTrace(CallGraphGenerator& generator, uint32_t num_requests) {
  TraceAnalysis analysis;
  Rng key_rng(generator.options().seed ^ 0xABCDEF);
  for (uint32_t i = 0; i < num_requests; ++i) {
    CallGraphStats stats = generator.Next();
    analysis.stateful_calls_per_request.Record(stats.stateful_calls);
    analysis.unique_stateful_per_request.Record(
        static_cast<double>(stats.unique_stateful_services.size()));
    analysis.depth_per_request.Record(stats.max_depth);

    // Worst case: every stateful call contributes one write identifier.
    // Identifiers are shaped like the real thing: the *store* component is
    // the backing datastore (an application has a handful, shared by many
    // services), the key is drawn from the called service's hot working set
    // (requests hammer linchpin objects, §5.1), and the lineage's per-key
    // compaction collapses repeated writes to the same object.
    Lineage lineage(i + 1);
    for (uint32_t service : stats.stateful_service_sequence) {
      WriteId id;
      id.store = "store" + std::to_string(service % 12);
      id.key = "s" + std::to_string(service) + "/k" + std::to_string(key_rng.NextBelow(2));
      id.version = 1 + key_rng.NextBelow(1 << 20);
      lineage.Append(std::move(id));
    }
    analysis.lineage_bytes_per_request.Record(static_cast<double>(lineage.WireSize()));
  }
  return analysis;
}

}  // namespace antipode
