#include "src/trace/mesh.h"

#include <algorithm>
#include <map>

#include "src/common/serialization.h"

namespace antipode {
namespace {

constexpr char kMeshMethod[] = "run";
constexpr char kMeshBody[] = "mesh-value";

// Call payload: ⟨plan, node, request⟩ varints. The node is the subtree root
// the callee executes the children of.
std::string EncodeCall(uint32_t plan, uint32_t node, uint64_t request) {
  Serializer s;
  s.WriteVarint(plan);
  s.WriteVarint(node);
  s.WriteVarint(request);
  return s.Release();
}

bool DecodeCall(const std::string& payload, uint32_t* plan, uint32_t* node, uint64_t* request) {
  Deserializer d(payload);
  auto p = d.ReadVarint();
  auto n = d.ReadVarint();
  auto r = d.ReadVarint();
  if (!p.ok() || !n.ok() || !r.ok()) {
    return false;
  }
  *plan = static_cast<uint32_t>(*p);
  *node = static_cast<uint32_t>(*n);
  *request = *r;
  return true;
}

}  // namespace

std::string MeshTopology::ServiceName(const MeshServiceKey& key) {
  return "mesh-l" + std::to_string(key.layer) + "-s" + std::to_string(key.slot);
}

std::string MeshTopology::StoreName(uint32_t store, const std::string& tag) {
  // Deliberately short: the name is copied into every WriteId a mesh write
  // creates, and keeping it inside std::string's SSO buffer (15 chars on
  // libstdc++) even with a store index and a bench phase tag appended keeps
  // lineage copies/deserializes allocation-free per dependency. A longer
  // prefix once crossed the SSO line for two-digit tags and skewed the
  // bench's allocs/request comparison across phases.
  std::string name = "mesh-s" + std::to_string(store);
  if (!tag.empty()) {
    name += "-" + tag;
  }
  return name;
}

MeshTopology BuildMeshTopology(const MeshOptions& options) {
  MeshTopology topology;
  topology.options = options;
  CallGraphGenerator generator(options.gen);

  std::map<MeshServiceKey, uint32_t> service_index;
  std::map<uint32_t, uint32_t> binding_index;
  uint64_t sampled = 0;
  uint64_t stateful_sum = 0;
  uint64_t depth_sum = 0;
  uint64_t calls_sum = 0;

  const auto want_more = [&] {
    if (topology.plans.size() < options.num_plans) {
      return true;
    }
    return topology.live_services() < options.min_live_services &&
           topology.plans.size() < options.max_plans;
  };

  while (want_more() && sampled < options.max_sampled_graphs) {
    CallGraph graph = generator.NextGraph();
    ++sampled;
    const CallGraphStats& stats = graph.stats;
    if (stats.stateful_calls < options.min_stateful_calls ||
        stats.stateful_calls > options.max_stateful_calls ||
        stats.max_depth < options.min_depth || stats.total_calls > options.max_plan_calls) {
      continue;
    }

    MeshPlan plan;
    plan.calls.reserve(graph.nodes.size());
    plan.stateful_calls = stats.stateful_calls;
    plan.max_depth = stats.max_depth;
    for (uint32_t i = 0; i < graph.nodes.size(); ++i) {
      const CallNode& node = graph.nodes[i];
      MeshCall call;
      call.stateful = node.stateful;
      call.depth = node.depth;
      call.children = node.children;
      if (node.stateful) {
        const uint32_t remapped = node.service % std::max<uint32_t>(1, options.stateful_width);
        auto [it, inserted] = binding_index.emplace(
            remapped, static_cast<uint32_t>(topology.bindings.size()));
        if (inserted) {
          topology.bindings.push_back(
              MeshBinding{remapped, remapped % std::max<uint32_t>(1, options.num_stores)});
        }
        call.target = it->second;
        plan.last_stateful = i;
      } else {
        const MeshServiceKey key{node.depth,
                                 node.service %
                                     std::max<uint32_t>(1, options.stateless_layer_width)};
        auto [it, inserted] =
            service_index.emplace(key, static_cast<uint32_t>(topology.services.size()));
        if (inserted) {
          topology.services.push_back(key);
        }
        call.target = it->second;
      }
      plan.calls.push_back(std::move(call));
    }
    stateful_sum += stats.stateful_calls;
    depth_sum += stats.max_depth;
    calls_sum += stats.total_calls;
    topology.plans.push_back(std::move(plan));
  }

  MeshStats& out = topology.stats;
  out.graphs_sampled = sampled;
  if (!topology.plans.empty()) {
    const double n = static_cast<double>(topology.plans.size());
    out.min_stateful_calls = topology.plans.front().stateful_calls;
    out.max_stateful_calls = 0;
    out.min_depth = topology.plans.front().max_depth;
    out.max_depth = 0;
    for (const MeshPlan& plan : topology.plans) {
      out.min_stateful_calls = std::min(out.min_stateful_calls, plan.stateful_calls);
      out.max_stateful_calls = std::max(out.max_stateful_calls, plan.stateful_calls);
      out.min_depth = std::min(out.min_depth, plan.max_depth);
      out.max_depth = std::max(out.max_depth, plan.max_depth);
    }
    out.mean_stateful_calls = static_cast<double>(stateful_sum) / n;
    out.mean_depth = static_cast<double>(depth_sum) / n;
    out.mean_total_calls = static_cast<double>(calls_sum) / n;
  }
  return topology;
}

LiveMesh::LiveMesh(const MeshTopology* topology, LiveMeshOptions options)
    : topology_(topology), options_(std::move(options)) {
  // Shared stores + shims first: handlers write through them.
  stores_.reserve(topology_->options.num_stores);
  shims_.reserve(topology_->options.num_stores);
  for (uint32_t i = 0; i < topology_->options.num_stores; ++i) {
    auto store_options =
        KvStore::DefaultOptions(MeshTopology::StoreName(i, options_.tag), options_.store_regions);
    // Pinned profile, like the load sweep: a real-time straggler mode would
    // alias with saturation at every rate.
    store_options.replication.slow_mode_probability = 0.0;
    stores_.push_back(std::make_unique<KvStore>(std::move(store_options)));
    shims_.push_back(std::make_unique<KvShim>(stores_.back().get()));
    shim_registry_.Register(shims_.back().get());
  }
  barrier_options_ = BarrierOptions{.registry = &shim_registry_,
                                    .use_cache = options_.use_cache,
                                    .use_scope = options_.use_scope,
                                    .backend = options_.backend};

  for (const MeshServiceKey& key : topology_->services) {
    RpcService* service = registry_.RegisterService(MeshTopology::ServiceName(key),
                                                    options_.home, options_.threads_per_service);
    service->RegisterMethod(kMeshMethod,
                            [this](const std::string& payload) { return HandleCall(payload); });
  }
  client_ = std::make_unique<RpcClient>(&registry_, options_.home);
  routes_.reserve(topology_->services.size());
  for (const MeshServiceKey& key : topology_->services) {
    auto route = client_->Resolve(MeshTopology::ServiceName(key), kMeshMethod);
    routes_.push_back(route.ok() ? std::move(route.value()) : RpcRoute{});
  }
}

LiveMesh::~LiveMesh() { registry_.ShutdownAll(); }

std::string LiveMesh::KeyFor(const MeshBinding& binding, uint32_t node_index,
                             uint64_t request_index) const {
  return "s" + std::to_string(binding.service) + "/r" + std::to_string(request_index) + "n" +
         std::to_string(node_index);
}

Status LiveMesh::ExecuteChildren(uint32_t plan_index, uint32_t node_index,
                                 uint64_t request_index) {
  const MeshPlan& plan = topology_->plans[plan_index];
  for (uint32_t child : plan.calls[node_index].children) {
    const MeshCall& call = plan.calls[child];
    if (call.stateful) {
      const MeshBinding& binding = topology_->bindings[call.target];
      const std::string key = KeyFor(binding, child, request_index);
      if (options_.antipode) {
        Status status = shims_[binding.store]->WriteCtx(options_.home, key, kMeshBody);
        if (!status.ok()) {
          return status;
        }
      } else {
        stores_[binding.store]->Set(options_.home, key, kMeshBody);
      }
    } else {
      auto result =
          client_->Call(routes_[call.target], EncodeCall(plan_index, child, request_index));
      if (!result.ok()) {
        return result.status();
      }
    }
  }
  return Status::Ok();
}

Result<std::string> LiveMesh::HandleCall(const std::string& payload) {
  uint32_t plan = 0;
  uint32_t node = 0;
  uint64_t request = 0;
  if (!DecodeCall(payload, &plan, &node, &request) ||
      plan >= topology_->plans.size() || node >= topology_->plans[plan].calls.size()) {
    return Status::InvalidArgument("malformed mesh call payload");
  }
  Status status = ExecuteChildren(plan, node, request);
  if (!status.ok()) {
    return status;
  }
  return std::string();
}

LiveMesh::WriterResult LiveMesh::RunWriterSide(uint64_t request_index) {
  WriterResult result;
  if (topology_->plans.empty()) {
    result.status = Status::FailedPrecondition("mesh topology has no plans");
    return result;
  }
  result.plan = static_cast<uint32_t>(request_index % topology_->plans.size());
  if (options_.antipode) {
    LineageApi::Root();
  }
  const MeshPlan& plan = topology_->plans[result.plan];
  auto call = client_->Call(routes_[plan.calls[0].target],
                            EncodeCall(result.plan, 0, request_index));
  if (!call.ok()) {
    result.status = call.status();
  }
  if (options_.antipode) {
    auto lineage = LineageApi::Current();
    if (lineage.has_value()) {
      result.lineage = std::move(*lineage);
    }
  }
  return result;
}

bool LiveMesh::RunReaderSide(const WriterResult& writer, uint64_t request_index) {
  const MeshPlan& plan = topology_->plans[writer.plan];
  const MeshCall& last = plan.calls[plan.last_stateful];
  const MeshBinding& binding = topology_->bindings[last.target];
  const std::string key = KeyFor(binding, plan.last_stateful, request_index);
  if (!options_.antipode) {
    return stores_[binding.store]->GetValue(options_.read_region, key).has_value();
  }
  if (options_.barrier_regions.size() == 1) {
    Barrier(writer.lineage, options_.barrier_regions.front(), barrier_options_);
  } else {
    BarrierGlobal(writer.lineage, options_.barrier_regions, barrier_options_);
  }
  return shims_[binding.store]->Read(options_.read_region, key).ok();
}

void LiveMesh::DrainReplication() {
  for (auto& store : stores_) {
    store->DrainReplication();
  }
}

}  // namespace antipode
