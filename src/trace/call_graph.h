// Synthetic Alibaba-style request call graphs, calibrated to the statistics
// published with the 2021 cluster trace (paper §2.1, Fig. 1):
//   * >80% of services are stateful (databases, caches, queues);
//   * >20% of requests make ≥20 calls to stateful services;
//   * >50% of requests touch ≥5 unique stateful services, 10% touch >20;
//   * average call depth >4;
//   * >10% of stateless services fan out to ≥5 children.
// The generator produces whole graphs; the analyzer computes the Fig. 1 CDFs
// and the §7.4 worst-case lineage metadata sizes.

#ifndef SRC_TRACE_CALL_GRAPH_H_
#define SRC_TRACE_CALL_GRAPH_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/random.h"

namespace antipode {

struct CallGraphStats {
  uint32_t total_calls = 0;
  uint32_t stateful_calls = 0;
  std::set<uint32_t> unique_stateful_services;
  // Service id of every stateful call, in call order (drives the
  // metadata-size analysis).
  std::vector<uint32_t> stateful_service_sequence;
  uint32_t max_depth = 0;
};

struct TraceGenOptions {
  uint32_t num_stateful_services = 14000;  // ~80% of Alibaba's >17k services
  uint32_t num_stateless_services = 3500;
  double stateful_child_probability = 0.68;
  // Fan-out of a stateless node: Zipf-distributed in [1, max_fanout]. The
  // branching process must stay (sub)critical: expected stateless children
  // per node = E[fanout] * (1 - stateful_child_probability) * depth damping.
  uint32_t max_fanout = 16;
  double fanout_theta = 1.42;
  // Entry-point services always fan out to several sub-systems.
  uint32_t min_root_fanout = 3;
  uint32_t max_depth = 14;
  // Safety cap on one request's total calls (Uber reports a 275k max; we cap
  // far lower to keep generation cheap without affecting the CDF body).
  uint32_t max_calls_per_request = 4000;
  // Which stateful service a call targets: each request draws from its own
  // Zipf-skewed working set of `request_service_range` services (requests
  // reuse hot services heavily, which is what bounds *unique* services per
  // request well below *calls* per request).
  uint32_t request_service_range = 56;
  double service_popularity_theta = 1.15;
  uint64_t seed = 1234;
};

class CallGraphGenerator {
 public:
  explicit CallGraphGenerator(TraceGenOptions options);

  // Generates one request's call graph and returns its summary statistics.
  CallGraphStats Next();

  const TraceGenOptions& options() const { return options_; }

 private:
  void Expand(uint32_t depth, CallGraphStats* stats);

  TraceGenOptions options_;
  Rng rng_;
  ZipfDistribution fanout_dist_;
  ZipfDistribution service_dist_;
  uint64_t request_base_ = 0;
};

struct TraceAnalysis {
  Histogram stateful_calls_per_request;
  Histogram unique_stateful_per_request;
  Histogram depth_per_request;
  // Worst-case lineage wire size assuming every stateful call contributes a
  // write identifier to the dependency chain (§7.4).
  Histogram lineage_bytes_per_request;
};

// Runs the generator for `num_requests` and aggregates the Fig. 1 CDFs plus
// the metadata-size distribution.
TraceAnalysis AnalyzeTrace(CallGraphGenerator& generator, uint32_t num_requests);

}  // namespace antipode

#endif  // SRC_TRACE_CALL_GRAPH_H_
