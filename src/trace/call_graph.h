// Synthetic Alibaba-style request call graphs, calibrated to the statistics
// published with the 2021 cluster trace (paper §2.1, Fig. 1):
//   * >80% of services are stateful (databases, caches, queues);
//   * >20% of requests make ≥20 calls to stateful services;
//   * >50% of requests touch ≥5 unique stateful services, 10% touch >20;
//   * average call depth >4;
//   * >10% of stateless services fan out to ≥5 children.
// The generator produces whole graphs; the analyzer computes the Fig. 1 CDFs
// and the §7.4 worst-case lineage metadata sizes.

#ifndef SRC_TRACE_CALL_GRAPH_H_
#define SRC_TRACE_CALL_GRAPH_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/random.h"

namespace antipode {

struct CallGraphStats {
  uint32_t total_calls = 0;
  uint32_t stateful_calls = 0;
  std::set<uint32_t> unique_stateful_services;
  // Service id of every stateful call, in call order (drives the
  // metadata-size analysis).
  std::vector<uint32_t> stateful_service_sequence;
  uint32_t max_depth = 0;
};

// One node of a materialized request tree. The root (index 0) is the
// stateless entry-point service; stateful nodes are leaves by construction
// (a datastore call never fans out further).
struct CallNode {
  uint32_t service = 0;  // stateful or stateless service id, per `stateful`
  bool stateful = false;
  uint32_t depth = 0;  // root = 0
  std::vector<uint32_t> children;  // indices into CallGraph::nodes, call order
};

// A whole request tree plus the summary statistics the analyzer consumes.
// `nodes` is laid out so a node always precedes its children, which lets the
// mesh executor walk a plan with a simple index cursor.
struct CallGraph {
  std::vector<CallNode> nodes;
  CallGraphStats stats;
};

struct TraceGenOptions {
  uint32_t num_stateful_services = 14000;  // ~80% of Alibaba's >17k services
  uint32_t num_stateless_services = 3500;
  double stateful_child_probability = 0.68;
  // Fan-out of a stateless node: Zipf-distributed in [1, max_fanout]. The
  // branching process must stay (sub)critical: expected stateless children
  // per node = E[fanout] * (1 - stateful_child_probability) * depth damping.
  uint32_t max_fanout = 16;
  double fanout_theta = 1.42;
  // Entry-point services always fan out to several sub-systems.
  uint32_t min_root_fanout = 3;
  uint32_t max_depth = 14;
  // Safety cap on one request's total calls (Uber reports a 275k max; we cap
  // far lower to keep generation cheap without affecting the CDF body).
  uint32_t max_calls_per_request = 4000;
  // Which stateful service a call targets: each request draws from its own
  // Zipf-skewed working set of `request_service_range` services (requests
  // reuse hot services heavily, which is what bounds *unique* services per
  // request well below *calls* per request).
  uint32_t request_service_range = 56;
  double service_popularity_theta = 1.15;
  uint64_t seed = 1234;
};

class CallGraphGenerator {
 public:
  explicit CallGraphGenerator(TraceGenOptions options);

  // Generates one request's call graph and returns its summary statistics.
  CallGraphStats Next();

  // Generates one request's call graph and returns the whole tree (the mesh
  // materializes these as live request plans). Consumes the same draws from
  // the primary stream as Next() — interleaving the two keeps the sequence
  // deterministic — while stateless service ids come from a second stream so
  // the calibrated statistics are bit-identical to the stats-only path.
  CallGraph NextGraph();

  const TraceGenOptions& options() const { return options_; }

 private:
  void Expand(uint32_t depth, uint32_t node, CallGraph* graph);

  TraceGenOptions options_;
  Rng rng_;
  // Secondary stream for stateless service identities: Next()/NextGraph()
  // must share the primary stream draw-for-draw, and the stats path never
  // needed stateless ids, so they cannot come from rng_.
  Rng stateless_rng_;
  ZipfDistribution fanout_dist_;
  ZipfDistribution service_dist_;
  uint64_t request_base_ = 0;
};

struct TraceAnalysis {
  Histogram stateful_calls_per_request;
  Histogram unique_stateful_per_request;
  Histogram depth_per_request;
  // Worst-case lineage wire size assuming every stateful call contributes a
  // write identifier to the dependency chain (§7.4).
  Histogram lineage_bytes_per_request;
};

// Runs the generator for `num_requests` and aggregates the Fig. 1 CDFs plus
// the metadata-size distribution.
TraceAnalysis AnalyzeTrace(CallGraphGenerator& generator, uint32_t num_requests);

}  // namespace antipode

#endif  // SRC_TRACE_CALL_GRAPH_H_
