// Baggage: a small string->string map that travels with a request across
// service boundaries — the same role OpenTelemetry baggage plays in the paper
// (§6.4). Antipode piggybacks its serialized lineage on one baggage entry.

#ifndef SRC_CONTEXT_BAGGAGE_H_
#define SRC_CONTEXT_BAGGAGE_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace antipode {

class Baggage {
 public:
  void Set(std::string key, std::string value) { entries_[std::move(key)] = std::move(value); }

  // Copy-assign into an existing entry (or insert one). Unlike Set, the
  // mapped string's capacity is reused when the key is already present —
  // the lineage entry is rewritten on every Append, so this keeps the
  // steady-state install path allocation-free.
  void Assign(std::string_view key, std::string_view value) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(std::string(key), std::string(value));
      return;
    }
    it->second.assign(value.data(), value.size());
  }

  std::optional<std::string> Get(std::string_view key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  void Erase(std::string_view key) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entries_.erase(it);
    }
  }

  bool Empty() const { return entries_.empty(); }
  size_t Size() const { return entries_.size(); }

  const std::map<std::string, std::string, std::less<>>& entries() const { return entries_; }

  // Total bytes this baggage adds to a message (keys + values + framing).
  size_t WireSize() const;

  std::string Serialize() const;
  static Baggage Deserialize(std::string_view data);

 private:
  // Transparent comparator: string_view lookups (Get/Assign/Erase) probe
  // without materializing a key.
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace antipode

#endif  // SRC_CONTEXT_BAGGAGE_H_
