// Baggage: a small string->string map that travels with a request across
// service boundaries — the same role OpenTelemetry baggage plays in the paper
// (§6.4). Antipode piggybacks its serialized lineage on one baggage entry.

#ifndef SRC_CONTEXT_BAGGAGE_H_
#define SRC_CONTEXT_BAGGAGE_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace antipode {

class Baggage {
 public:
  void Set(std::string key, std::string value) { entries_[std::move(key)] = std::move(value); }

  std::optional<std::string> Get(std::string_view key) const {
    auto it = entries_.find(std::string(key));
    if (it == entries_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  void Erase(std::string_view key) { entries_.erase(std::string(key)); }

  bool Empty() const { return entries_.empty(); }
  size_t Size() const { return entries_.size(); }

  const std::map<std::string, std::string>& entries() const { return entries_; }

  // Total bytes this baggage adds to a message (keys + values + framing).
  size_t WireSize() const;

  std::string Serialize() const;
  static Baggage Deserialize(std::string_view data);

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace antipode

#endif  // SRC_CONTEXT_BAGGAGE_H_
