// Baggage: a small string->string map that travels with a request across
// service boundaries — the same role OpenTelemetry baggage plays in the paper
// (§6.4). Antipode piggybacks its serialized lineage on one baggage entry.
//
// Representation: a flat vector of ⟨key, value⟩ pairs kept sorted by key.
// Real baggage holds a handful of entries (lineage, span context, a few app
// keys), so a contiguous vector beats the old node-based std::map on every
// per-hop operation — copy (one buffer instead of a tree of nodes), lookup
// (binary search over a cache-resident array), and serialize (linear scan).

#ifndef SRC_CONTEXT_BAGGAGE_H_
#define SRC_CONTEXT_BAGGAGE_H_

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace antipode {

class Baggage {
 public:
  using Entry = std::pair<std::string, std::string>;
  using EntryList = std::vector<Entry>;

  // Overwrite-or-insert.
  void Set(std::string key, std::string value) {
    auto it = LowerBound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
      return;
    }
    entries_.insert(it, Entry(std::move(key), std::move(value)));
  }

  // Copy-assign into an existing entry (or insert one). Unlike Set, the
  // mapped string's capacity is reused when the key is already present —
  // the lineage entry is rewritten on every flush, so this keeps the
  // steady-state install path allocation-free.
  void Assign(std::string_view key, std::string_view value) {
    auto it = LowerBound(key);
    if (it != entries_.end() && it->first == key) {
      it->second.assign(value.data(), value.size());
      return;
    }
    entries_.insert(it, Entry(std::string(key), std::string(value)));
  }

  std::optional<std::string> Get(std::string_view key) const {
    const std::string* value = Find(key);
    if (value == nullptr) {
      return std::nullopt;
    }
    return *value;
  }

  // Copy-free lookup for hot paths; the pointer is invalidated by any
  // mutation of the baggage.
  const std::string* Find(std::string_view key) const {
    auto it = LowerBound(key);
    if (it != entries_.end() && it->first == key) {
      return &it->second;
    }
    return nullptr;
  }

  void Erase(std::string_view key) {
    auto it = LowerBound(key);
    if (it != entries_.end() && it->first == key) {
      entries_.erase(it);
    }
  }

  bool Empty() const { return entries_.empty(); }
  size_t Size() const { return entries_.size(); }

  // Sorted by key.
  const EntryList& entries() const { return entries_; }

  // Total bytes this baggage adds to a message (keys + values + framing).
  size_t WireSize() const;

  std::string Serialize() const;
  static Baggage Deserialize(std::string_view data);

 private:
  EntryList::iterator LowerBound(std::string_view key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& entry, std::string_view k) { return entry.first < k; });
  }
  EntryList::const_iterator LowerBound(std::string_view key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& entry, std::string_view k) { return entry.first < k; });
  }

  EntryList entries_;
};

}  // namespace antipode

#endif  // SRC_CONTEXT_BAGGAGE_H_
