#include "src/context/merge.h"

namespace antipode {

BaggageMergerRegistry& BaggageMergerRegistry::Instance() {
  static auto* registry = new BaggageMergerRegistry();
  return *registry;
}

void BaggageMergerRegistry::Register(std::string key, BaggageMerger merger,
                                     NativeBaggageMerger native) {
  std::lock_guard<std::mutex> lock(mu_);
  if (native != nullptr) {
    native_mergers_[key] = std::move(native);
  }
  mergers_[std::move(key)] = std::move(merger);
}

void BaggageMergerRegistry::MergeInto(RequestContext& target, const Baggage& incoming) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, value] : incoming.entries()) {
    RequestContext::NativeSlot& slot = target.native_slot();
    if (slot.object != nullptr && key == slot.key) {
      // The slot's object is the authoritative current value for this key
      // (the string entry may be stale when dirty).
      auto native_it = native_mergers_.find(key);
      if (native_it != native_mergers_.end()) {
        native_it->second(slot.object, value);
        slot.dirty = true;
        continue;
      }
      // No native merger: fall back to strings. Write the object back first
      // so `existing` is current, and drop the object afterwards — the
      // string result is now the authoritative value.
      target.FlushNativeSlot();
      auto existing = target.baggage().Get(key);
      auto merger_it = mergers_.find(key);
      if (existing.has_value() && merger_it != mergers_.end()) {
        target.baggage().Set(key, merger_it->second(*existing, value));
      } else {
        target.baggage().Set(key, value);
      }
      target.ClearNativeSlot();
      continue;
    }
    auto existing = target.baggage().Get(key);
    auto merger_it = mergers_.find(key);
    if (existing.has_value() && merger_it != mergers_.end()) {
      target.baggage().Set(key, merger_it->second(*existing, value));
    } else {
      target.baggage().Set(key, value);
    }
  }
}

}  // namespace antipode
