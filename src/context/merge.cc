#include "src/context/merge.h"

namespace antipode {

BaggageMergerRegistry& BaggageMergerRegistry::Instance() {
  static auto* registry = new BaggageMergerRegistry();
  return *registry;
}

void BaggageMergerRegistry::Register(std::string key, BaggageMerger merger) {
  std::lock_guard<std::mutex> lock(mu_);
  mergers_[std::move(key)] = std::move(merger);
}

void BaggageMergerRegistry::MergeInto(RequestContext& target, const Baggage& incoming) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, value] : incoming.entries()) {
    auto existing = target.baggage().Get(key);
    auto merger_it = mergers_.find(key);
    if (existing.has_value() && merger_it != mergers_.end()) {
      target.baggage().Set(key, merger_it->second(*existing, value));
    } else {
      target.baggage().Set(key, value);
    }
  }
}

}  // namespace antipode
