// Baggage merge policy. When an RPC response (or a read from a datastore)
// carries baggage back to the caller, each entry is folded into the caller's
// current context. The default policy is overwrite; subsystems can register a
// custom merger per key — Antipode registers a dependency-set union for its
// lineage entry so that lineages accumulate across the request tree (§6.2).

#ifndef SRC_CONTEXT_MERGE_H_
#define SRC_CONTEXT_MERGE_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "src/context/request_context.h"

namespace antipode {

// Combines the caller's existing value with an incoming one.
using BaggageMerger =
    std::function<std::string(const std::string& existing, const std::string& incoming)>;

class BaggageMergerRegistry {
 public:
  static BaggageMergerRegistry& Instance();

  void Register(std::string key, BaggageMerger merger);

  // Folds `incoming` into `target` entry by entry, applying registered
  // mergers where present and overwriting otherwise.
  void MergeInto(RequestContext& target, const Baggage& incoming) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, BaggageMerger> mergers_;
};

}  // namespace antipode

#endif  // SRC_CONTEXT_MERGE_H_
