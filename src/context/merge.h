// Baggage merge policy. When an RPC response (or a read from a datastore)
// carries baggage back to the caller, each entry is folded into the caller's
// current context. The default policy is overwrite; subsystems can register a
// custom merger per key — Antipode registers a dependency-set union for its
// lineage entry so that lineages accumulate across the request tree (§6.2).

#ifndef SRC_CONTEXT_MERGE_H_
#define SRC_CONTEXT_MERGE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/context/request_context.h"

namespace antipode {

// Combines the caller's existing value with an incoming one.
using BaggageMerger =
    std::function<std::string(const std::string& existing, const std::string& incoming)>;

// Folds an incoming serialized value directly into the native object a
// context's slot holds for the key (see RequestContext::NativeSlot), so the
// per-hop merge skips re-serializing the merged result. The merger owns the
// copy-on-write discipline: it must clone the object before mutating when the
// pointer is shared (use_count > 1) — other context copies alias it.
using NativeBaggageMerger =
    std::function<void(std::shared_ptr<void>& object, const std::string& incoming)>;

class BaggageMergerRegistry {
 public:
  static BaggageMergerRegistry& Instance();

  // `native` is optional: when registered and the target context's native
  // slot is live for `key`, MergeInto folds into the object and marks the
  // slot dirty instead of running the string merger.
  void Register(std::string key, BaggageMerger merger, NativeBaggageMerger native = nullptr);

  // Folds `incoming` into `target` entry by entry, applying registered
  // mergers where present and overwriting otherwise.
  void MergeInto(RequestContext& target, const Baggage& incoming) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, BaggageMerger> mergers_;
  std::map<std::string, NativeBaggageMerger> native_mergers_;
};

}  // namespace antipode

#endif  // SRC_CONTEXT_MERGE_H_
