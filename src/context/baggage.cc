#include "src/context/baggage.h"

#include "src/common/serialization.h"

namespace antipode {

size_t Baggage::WireSize() const {
  size_t total = 0;
  for (const auto& [key, value] : entries_) {
    total += key.size() + value.size() + 4;  // ~varint framing per entry
  }
  return total;
}

std::string Baggage::Serialize() const {
  Serializer s;
  s.WriteVarint(entries_.size());
  for (const auto& [key, value] : entries_) {
    s.WriteString(key);
    s.WriteString(value);
  }
  return s.Release();
}

Baggage Baggage::Deserialize(std::string_view data) {
  Baggage baggage;
  Deserializer d(data);
  auto count = d.ReadVarint();
  if (!count.ok()) {
    return baggage;
  }
  for (uint64_t i = 0; i < *count; ++i) {
    auto key = d.ReadString();
    auto value = d.ReadString();
    if (!key.ok() || !value.ok()) {
      break;
    }
    baggage.Set(std::move(*key), std::move(*value));
  }
  return baggage;
}

}  // namespace antipode
