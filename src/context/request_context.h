// Thread-local request context, the substrate Antipode's Lineage API rides on
// (paper §6.2 "typically, this is stored in a pre-existing (thread-local)
// request context"). The RPC layer and the queue/pub-sub consumers install a
// context before running a handler and serialize it into outgoing messages.

#ifndef SRC_CONTEXT_REQUEST_CONTEXT_H_
#define SRC_CONTEXT_REQUEST_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/context/baggage.h"

namespace antipode {

class RequestContext {
 public:
  RequestContext() = default;
  explicit RequestContext(uint64_t trace_id) : trace_id_(trace_id) {}

  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  Baggage& baggage() { return baggage_; }
  const Baggage& baggage() const { return baggage_; }

  // --- Native baggage slot ----------------------------------------------
  //
  // One baggage entry may be shadowed by a live, typed object (DESIGN.md
  // §14). Hot-path mutators — LineageApi::Append on a deep call graph runs
  // once per stateful call — then update the object in place instead of
  // paying a deserialize→mutate→re-serialize cycle against the string entry
  // on every call. The string entry is refreshed lazily: `dirty` means the
  // object is newer, and FlushNativeSlot re-encodes it at the points where
  // the string form actually matters (context serialization at a hop, or a
  // generic entry-wise baggage read).
  //
  // The object is held by shared_ptr and treated as copy-on-write: copying a
  // context copies one pointer, and a mutator must clone the object first
  // when it is shared (use_count > 1). The context layer stays ignorant of
  // the payload type — the owner supplies a serialize thunk.
  struct NativeSlot {
    std::string_view key;  // baggage key the object shadows (static storage)
    std::shared_ptr<void> object;
    void (*serialize)(const void* object, std::string& out) = nullptr;
    bool dirty = false;  // object newer than the baggage entry
  };

  NativeSlot& native_slot() { return native_slot_; }
  const NativeSlot& native_slot() const { return native_slot_; }

  // Writes a dirty native object back into its baggage entry; no-op
  // otherwise. Serialize() calls this, as must anything reading baggage
  // entries generically while a slot may be live (see MergeInto).
  void FlushNativeSlot();

  // Drops the native object, e.g. after an out-of-band write to its baggage
  // key made it stale. The baggage entry (if any) becomes authoritative.
  void ClearNativeSlot() { native_slot_ = NativeSlot{}; }

  // --- Thread-local accessors -------------------------------------------

  // The context currently installed on this thread, or nullptr.
  static RequestContext* Current();

  // Serializes the current context (trace id + baggage) for transport; empty
  // string when no context is installed.
  static std::string SerializeCurrent();

  // Non-const: flushes a dirty native slot into the baggage first.
  std::string Serialize();
  static RequestContext Deserialize(std::string_view data);

 private:
  friend class ScopedContext;

  uint64_t trace_id_ = 0;
  Baggage baggage_;
  NativeSlot native_slot_;
};

// RAII installation of a RequestContext on the current thread. Contexts nest;
// the destructor restores the previously installed one.
class ScopedContext {
 public:
  explicit ScopedContext(RequestContext context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

  RequestContext& context() { return context_; }

 private:
  RequestContext context_;
  RequestContext* previous_;
};

}  // namespace antipode

#endif  // SRC_CONTEXT_REQUEST_CONTEXT_H_
