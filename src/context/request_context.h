// Thread-local request context, the substrate Antipode's Lineage API rides on
// (paper §6.2 "typically, this is stored in a pre-existing (thread-local)
// request context"). The RPC layer and the queue/pub-sub consumers install a
// context before running a handler and serialize it into outgoing messages.

#ifndef SRC_CONTEXT_REQUEST_CONTEXT_H_
#define SRC_CONTEXT_REQUEST_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/context/baggage.h"

namespace antipode {

class RequestContext {
 public:
  RequestContext() = default;
  explicit RequestContext(uint64_t trace_id) : trace_id_(trace_id) {}

  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  Baggage& baggage() { return baggage_; }
  const Baggage& baggage() const { return baggage_; }

  // --- Thread-local accessors -------------------------------------------

  // The context currently installed on this thread, or nullptr.
  static RequestContext* Current();

  // Serializes the current context (trace id + baggage) for transport; empty
  // string when no context is installed.
  static std::string SerializeCurrent();

  std::string Serialize() const;
  static RequestContext Deserialize(std::string_view data);

 private:
  friend class ScopedContext;

  uint64_t trace_id_ = 0;
  Baggage baggage_;
};

// RAII installation of a RequestContext on the current thread. Contexts nest;
// the destructor restores the previously installed one.
class ScopedContext {
 public:
  explicit ScopedContext(RequestContext context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

  RequestContext& context() { return context_; }

 private:
  RequestContext context_;
  RequestContext* previous_;
};

}  // namespace antipode

#endif  // SRC_CONTEXT_REQUEST_CONTEXT_H_
