#include "src/context/request_context.h"

#include "src/common/serialization.h"

namespace antipode {
namespace {

thread_local RequestContext* tls_current = nullptr;

}  // namespace

RequestContext* RequestContext::Current() { return tls_current; }

std::string RequestContext::SerializeCurrent() {
  if (tls_current == nullptr) {
    return std::string();
  }
  return tls_current->Serialize();
}

void RequestContext::FlushNativeSlot() {
  if (!native_slot_.dirty || native_slot_.object == nullptr) {
    return;
  }
  // Serialize into a reused per-thread scratch, then copy-assign into the
  // baggage entry: on the steady-state flush cycle both buffers have warm
  // capacity, so the write-back allocates nothing.
  thread_local std::string scratch;
  scratch.clear();
  native_slot_.serialize(native_slot_.object.get(), scratch);
  baggage_.Assign(native_slot_.key, scratch);
  native_slot_.dirty = false;
}

std::string RequestContext::Serialize() {
  FlushNativeSlot();
  Serializer s;
  s.WriteUint64(trace_id_);
  s.WriteString(baggage_.Serialize());
  return s.Release();
}

RequestContext RequestContext::Deserialize(std::string_view data) {
  RequestContext context;
  Deserializer d(data);
  auto trace_id = d.ReadUint64();
  if (!trace_id.ok()) {
    return context;
  }
  context.trace_id_ = *trace_id;
  auto baggage_blob = d.ReadString();
  if (baggage_blob.ok()) {
    context.baggage_ = Baggage::Deserialize(*baggage_blob);
  }
  return context;
}

ScopedContext::ScopedContext(RequestContext context)
    : context_(std::move(context)), previous_(tls_current) {
  tls_current = &context_;
}

ScopedContext::~ScopedContext() { tls_current = previous_; }

}  // namespace antipode
