// Hybrid logical clock (Kulkarni et al.), the timestamp source of the
// stable-frontier enforcement backend (DESIGN.md §12).
//
// A stamp packs 48 bits of physical time (microseconds since process start)
// with a 16-bit logical counter that breaks ties when several stamps are
// drawn within one microsecond:
//
//     | 48-bit physical µs | 16-bit logical |
//
// `Tick` is strictly increasing across the whole process, so the stamps of
// one store are monotone in its write sequence numbers as long as seq and
// stamp are assigned atomically together (ReplicatedStore::Put does this
// under its stamp lock) — the property the stabilization frontier's
// soundness argument rests on: frontier(r) ≥ hlc(w) implies every write
// stamped at or before w has applied at r.
//
// One process-wide clock (`Default`) serves every store. That gives the
// frontier a global total order for free and makes the caught-up rule sound:
// any write stamped after a barrier computed its cut necessarily carries a
// stamp greater than that cut.

#ifndef SRC_COMMON_HLC_H_
#define SRC_COMMON_HLC_H_

#include <atomic>
#include <cstdint>

namespace antipode {

class HlcClock {
 public:
  // Draws a fresh stamp: max(last + 1, physical now). Strictly increasing,
  // never behind the physical clock, wait-free in the uncontended case.
  uint64_t Tick();

  // Merges a stamp received from elsewhere (a replicated entry's stamp) so
  // subsequent local stamps dominate it — the "hybrid" half of the clock.
  // In this single-process reproduction every store shares Default() and the
  // merge is a no-op in practice, but replication applies call it anyway so
  // the protocol reads like the multi-process original.
  void Observe(uint64_t remote);

  // The most recent stamp issued or observed.
  uint64_t Last() const { return last_.load(std::memory_order_acquire); }

  static HlcClock& Default();

  static constexpr int kLogicalBits = 16;
  static uint64_t PhysicalMicros(uint64_t stamp) { return stamp >> kLogicalBits; }
  static uint64_t Logical(uint64_t stamp) { return stamp & ((1u << kLogicalBits) - 1); }
  static uint64_t Pack(uint64_t physical_micros, uint64_t logical) {
    return (physical_micros << kLogicalBits) | (logical & ((1u << kLogicalBits) - 1));
  }

 private:
  // Physical microseconds since the process-wide epoch (first use).
  static uint64_t NowMicros();

  std::atomic<uint64_t> last_{0};
};

}  // namespace antipode

#endif  // SRC_COMMON_HLC_H_
