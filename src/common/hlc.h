// Hybrid logical clock (Kulkarni et al.), the timestamp source of the
// stable-frontier enforcement backend (DESIGN.md §12).
//
// A stamp packs 48 bits of physical time (microseconds since process start)
// with a 16-bit logical counter that breaks ties when several stamps are
// drawn within one microsecond:
//
//     | 48-bit physical µs | 16-bit logical |
//
// `Tick` is strictly increasing across the whole process, so the stamps of
// one store are monotone in its write sequence numbers as long as seq and
// stamp are assigned atomically together (ReplicatedStore::Put does this
// under its stamp lock) — the property the stabilization frontier's
// soundness argument rests on: frontier(r) ≥ hlc(w) implies every write
// stamped at or before w has applied at r.
//
// Clock sharing is per region-group, not process-wide: every store draws all
// of its stamps from exactly one clock (`ForGroup`, keyed by the store's home
// region-group), so stamps stay monotone in that store's sequence numbers —
// which is all the frontier's soundness needs, because a stabilization cut is
// always computed from the *same store's* dependency stamps and compared
// against that store's frontier, and the caught-up rule (watermark ≥ issued
// high-water mark) is clock-free. Partitioning the clocks removes the one
// compare-exchange cell every region's Put used to contend on; `Default()`
// remains for callers that predate the partition (and as the magnitude
// reference for metadata-size estimates — every clock shares the process
// epoch, so stamps across groups have comparable widths).

#ifndef SRC_COMMON_HLC_H_
#define SRC_COMMON_HLC_H_

#include <atomic>
#include <cassert>
#include <cstdint>

namespace antipode {

class HlcClock {
 public:
  // Draws a fresh stamp: max(last + 1, physical now). Strictly increasing,
  // never behind the physical clock, wait-free in the uncontended case.
  uint64_t Tick();

  // Merges a stamp received from elsewhere (a replicated entry's stamp) so
  // subsequent local stamps dominate it — the "hybrid" half of the clock.
  // In this single-process reproduction every store shares Default() and the
  // merge is a no-op in practice, but replication applies call it anyway so
  // the protocol reads like the multi-process original.
  void Observe(uint64_t remote);

  // The most recent stamp issued or observed.
  uint64_t Last() const { return last_.load(std::memory_order_acquire); }

  static HlcClock& Default();

  // The clock of one region-group (RegionGroupOf in src/net/region.h — this
  // layer only sees the index). Each store must draw every stamp it ever
  // issues from one clock; which one is a pure locality/contention choice.
  static constexpr int kMaxGroups = 8;
  static HlcClock& ForGroup(int group);

  static constexpr int kLogicalBits = 16;
  static uint64_t PhysicalMicros(uint64_t stamp) { return stamp >> kLogicalBits; }
  static uint64_t Logical(uint64_t stamp) { return stamp & ((1u << kLogicalBits) - 1); }
  static uint64_t Pack(uint64_t physical_micros, uint64_t logical) {
    return (physical_micros << kLogicalBits) | (logical & ((1u << kLogicalBits) - 1));
  }

 private:
  // Physical microseconds since the process-wide epoch (first use).
  static uint64_t NowMicros();

  std::atomic<uint64_t> last_{0};
};

}  // namespace antipode

#endif  // SRC_COMMON_HLC_H_
