// A shared timer wheel: schedules closures to run at a future time point on a
// dedicated dispatcher thread. The simulated network and every store's
// replication engine use this instead of spawning a thread per in-flight
// message, which keeps thousands of concurrent replication events cheap.
//
// Callbacks run on the dispatcher thread and must be short; anything heavy
// should bounce to a ThreadPool.

#ifndef SRC_COMMON_TIMER_SERVICE_H_
#define SRC_COMMON_TIMER_SERVICE_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/clock.h"

namespace antipode {

class TimerService {
 public:
  TimerService();
  ~TimerService();

  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  // A process-wide instance shared by the simulation substrate.
  static TimerService& Shared();

  // Runs `fn` once `delay` has elapsed (immediately when delay <= 0).
  void ScheduleAfter(Duration delay, std::function<void()> fn);
  void ScheduleAt(TimePoint when, std::function<void()> fn);

  // Stops the dispatcher; pending timers that are already due still fire,
  // future ones are dropped. Idempotent.
  void Shutdown();

  size_t PendingCount() const;

 private:
  struct Entry {
    TimePoint when;
    uint64_t sequence;  // FIFO tie-break for equal deadlines
    std::function<void()> fn;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  void DispatchLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> entries_;
  uint64_t next_sequence_ = 0;
  bool shutdown_ = false;
  std::thread dispatcher_;
};

}  // namespace antipode

#endif  // SRC_COMMON_TIMER_SERVICE_H_
