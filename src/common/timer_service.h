// A sharded multi-worker timer engine: schedules closures to run at a future
// time point. The simulated network and every store's replication engine use
// this instead of spawning a thread per in-flight message, which keeps
// thousands of concurrent replication events cheap.
//
// Architecture: N timer shards, each with its own min-heap, mutex, condition
// variable, and dispatcher thread, feed a pool of M workers. Dispatchers only
// pop due entries and route them; callbacks *execute* on the workers, so one
// slow callback stalls a single worker instead of the whole engine and due
// events on different shards fire in parallel.
//
// Affinity tokens: every schedule call carries a token (defaulting to a fresh
// round-robin value per call). A token maps to a fixed shard and a fixed
// worker, so all callbacks scheduled with the same token execute serially, in
// deadline order, FIFO for equal deadlines. The replication engine keys its
// shipments by (store, key, destination) to keep per-key apply order intact;
// callers that need no ordering just omit the token and get maximum spread.
// There is NO cross-token ordering guarantee, even within one shard.
//
// `num_workers == 0` selects the legacy inline mode: each shard's dispatcher
// runs its callbacks itself (one shard + zero workers reproduces the old
// single-thread engine exactly; benches use it as the scaling baseline).

#ifndef SRC_COMMON_TIMER_SERVICE_H_
#define SRC_COMMON_TIMER_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mpsc_queue.h"
#include "src/common/small_function.h"

namespace antipode {

class Counter;
class Gauge;
class HistogramMetric;
class SimScheduler;

struct TimerServiceOptions {
  // Timer shards: independent heaps + dispatcher threads. More shards reduce
  // contention on ScheduleAfter and let due events fire in parallel.
  size_t num_shards = 4;
  // Callback workers. 0 = run callbacks inline on each shard's dispatcher
  // (legacy single-thread behaviour when num_shards == 1).
  size_t num_workers = kDefaultWorkers;

  // Deterministic simulation mode: no shards, no workers, no threads — every
  // schedule becomes an event on the process's active SimScheduler (sim.h),
  // which must be installed (via ScopedSimMode) before construction. Virtual
  // time replaces the wall clock; the per-affinity ordering contract is
  // preserved by the scheduler's seeded tie-break (same token ⇒ FIFO).
  bool deterministic = false;

  // SIZE_MAX sentinel resolved at construction to min(8, max(2, cores)).
  static constexpr size_t kDefaultWorkers = SIZE_MAX;
};

class TimerService {
 public:
  using Options = TimerServiceOptions;
  // Routes same-token callbacks to the same shard and worker (serial, FIFO
  // for equal deadlines). kNoAffinity picks a fresh round-robin token.
  using AffinityToken = uint64_t;

  TimerService() : TimerService(Options{}) {}
  explicit TimerService(const Options& options);
  ~TimerService();

  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  // A process-wide instance shared by the simulation substrate.
  static TimerService& Shared();

  // Runs `fn` once `delay` has elapsed (immediately when delay <= 0).
  // Returns false — and drops `fn` without running it — after Shutdown;
  // callers doing completion accounting must roll back on false.
  //
  // TimerTask (a move-only 64-byte-inline callable) replaces std::function
  // here so steady-state schedules — including the store's replication
  // shipments — carry their captures without a heap allocation, and so
  // callbacks can own move-only resources (pooled entry handles).
  bool ScheduleAfter(Duration delay, TimerTask fn);
  bool ScheduleAfter(Duration delay, AffinityToken affinity, TimerTask fn);
  bool ScheduleAt(TimePoint when, TimerTask fn);
  bool ScheduleAt(TimePoint when, AffinityToken affinity, TimerTask fn);

  // Stops the engine; pending timers that are already due still fire (their
  // callbacks run to completion before Shutdown returns), future ones are
  // dropped. Idempotent and safe to race with ScheduleAfter.
  void Shutdown();

  // Entries still in the shard heaps plus callbacks queued on workers.
  size_t PendingCount() const;

  size_t num_shards() const { return shards_.size(); }
  size_t num_workers() const { return workers_.size(); }
  bool deterministic() const { return sim_ != nullptr; }

 private:
  struct Entry {
    TimePoint when;
    uint64_t sequence;  // FIFO tie-break for equal deadlines (per shard)
    AffinityToken affinity;
    TimerTask fn;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::priority_queue<Entry, std::vector<Entry>, EntryLater> entries;
    uint64_t next_sequence = 0;
    std::thread dispatcher;
    // Per-shard instruments (shared across TimerService instances with the
    // same shard index; registry pointers are stable, increments additive).
    Gauge* queue_depth = nullptr;
    HistogramMetric* dispatch_lag = nullptr;
  };
  struct Worker {
    // Lock-free dispatcher→worker handoff: each shard dispatcher is a
    // producer, the worker thread is the sole consumer. Replaced the
    // mutex+deque BlockingQueue, whose per-task lock/signal was the hottest
    // lock in the engine under load.
    MpscQueue<TimerTask> tasks;
    std::thread thread;
  };

  // Deterministic-mode state shared with every event posted to the sim
  // scheduler: events may still sit in the scheduler heap after this service
  // shuts down (or is destroyed), so the open/pending flags outlive it.
  struct SimState {
    std::atomic<bool> open{true};
    std::atomic<size_t> pending{0};
    Counter* callbacks_run = nullptr;
  };

  void DispatchLoop(Shard& shard);
  void WorkerLoop(Worker& worker);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Counter* callbacks_run_ = nullptr;
  SimScheduler* sim_ = nullptr;
  std::shared_ptr<SimState> sim_state_;

  std::atomic<AffinityToken> round_robin_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mu_;  // serializes the join phase of concurrent Shutdowns
};

}  // namespace antipode

#endif  // SRC_COMMON_TIMER_SERVICE_H_
