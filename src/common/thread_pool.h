// Fixed-size thread pool executing std::function tasks. Each simulated
// service owns one pool; the RPC layer dispatches handlers onto it.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/blocking_queue.h"

namespace antipode {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false after Shutdown.
  bool Submit(std::function<void()> task);

  // Stops accepting tasks, drains the queue, joins all workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  const std::string& name() const { return name_; }
  size_t PendingTasks() const { return tasks_.Size(); }

 private:
  void WorkerLoop();

  std::string name_;
  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace antipode

#endif  // SRC_COMMON_THREAD_POOL_H_
