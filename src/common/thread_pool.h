// Fixed-size thread pool executing std::function tasks. Each simulated
// service owns one pool; the RPC layer dispatches handlers onto it.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/blocking_queue.h"

namespace antipode {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false after Shutdown. Under an active
  // SimScheduler the task becomes a due-now simulation event instead (the
  // worker threads stay idle): each pool maps to one deterministic affinity
  // stream, so in simulation its tasks run serially in submit order — a
  // legal schedule of a parallel pool, chosen so replays are deterministic.
  bool Submit(std::function<void()> task);

  // Stops accepting tasks, drains the queue, joins all workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  const std::string& name() const { return name_; }
  size_t PendingTasks() const { return tasks_.Size(); }

 private:
  // Simulation-mode bookkeeping shared with posted events, which can outlive
  // the pool object itself (they sit in the scheduler heap).
  struct SimState {
    std::atomic<bool> open{true};
    std::atomic<size_t> pending{0};
  };

  void WorkerLoop();

  std::string name_;
  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::shared_ptr<SimState> sim_state_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace antipode

#endif  // SRC_COMMON_THREAD_POOL_H_
