// Lock-free multi-producer single-consumer queue (Vyukov-style intrusive
// linked list), used for the timer engine's dispatcher→worker handoff. The
// old handoff was a mutex + deque + condvar per item: every push took the
// lock and signalled, every pop took the lock — on a loaded engine the
// worker queue mutex was the hottest lock in the process. Here a push is one
// atomic exchange plus one store; a pop is pointer chasing on the consumer
// thread only. The condvar survives solely as the *parking* mechanism: a
// producer takes the park mutex only when the consumer has declared itself
// asleep, so the steady-state (busy worker) path never touches a lock.
//
// Nodes are intrusive (the `next` pointer lives in the node) and recycled
// through an internal ABA-safe bounded MPMC ring (Vyukov's array queue with
// per-slot sequence numbers); when the ring runs dry the queue falls back to
// plain new/delete, so bursts are correct, just not allocation-free.
//
// Ordering: pops observe values in push linearization order (the order of
// the tail exchanges), so a single producer's pushes — e.g. one timer shard
// dispatching a token's callbacks — dequeue FIFO.

#ifndef SRC_COMMON_MPSC_QUEUE_H_
#define SRC_COMMON_MPSC_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace antipode {

// ABA-safe bounded MPMC ring of free nodes (Dmitry Vyukov's bounded queue:
// each slot carries a sequence number that encodes whether it holds a value
// and for which lap, so a stalled thread can never corrupt a reused slot).
template <typename T>
class BoundedFreeList {
 public:
  explicit BoundedFreeList(size_t capacity_pow2 = 256) : mask_(capacity_pow2 - 1) {
    // Capacity must be a power of two; round up.
    size_t cap = 1;
    while (cap < capacity_pow2) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(T value) {
    Slot* slot;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const size_t seq = slot->sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> TryPop() {
    Slot* slot;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const size_t seq = slot->sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    T value = std::move(slot->value);
    slot->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return value;
  }

 private:
  struct Slot {
    std::atomic<size_t> sequence;
    T value;
  };

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t free_list_capacity = 256) : free_nodes_(free_list_capacity) {
    stub_ = new Node();
    head_ = stub_;
    tail_.store(stub_, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // Drain values still queued, then the chain of retired-but-linked nodes.
    while (TryPop().has_value()) {
    }
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
    while (auto spare = free_nodes_.TryPop()) {
      delete *spare;
    }
  }

  // Lock-free (one XCHG + one store); safe from any number of threads.
  // Returns false — and drops `value` — once the queue is closed.
  bool Push(T value) {
    if (closed_.load(std::memory_order_acquire)) {
      return false;
    }
    Node* node = AcquireNode();
    node->value = std::move(value);
    node->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    // Counted only after the node is linked: a consumer that observes
    // size > 0 but an unlinked head is behind at most the one in-flight
    // exchange-to-link window, keeping PopWait's spin rare. seq_cst pairs
    // with the consumer's parked_ store / size load — this is a Dekker
    // store-load handshake, and weaker orders could let both sides read
    // stale and strand a value with a sleeping consumer.
    size_.fetch_add(1, std::memory_order_seq_cst);
    WakeConsumer();
    return true;
  }

  // Single-consumer. Returns nullopt when empty (or when a producer is
  // mid-push; callers treat both as "nothing ready").
  std::optional<T> TryPop() {
    Node* head = head_;
    Node* next = head->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      return std::nullopt;
    }
    // The value travels in `next`; the old head is retired and recycled as
    // the next push's node (classic Vyukov value-shift).
    std::optional<T> value(std::move(next->value));
    next->value = T();
    head_ = next;
    size_.fetch_sub(1, std::memory_order_release);
    ReleaseNode(head);
    return value;
  }

  // Blocks until a value is available; returns nullopt once closed AND
  // drained. Single-consumer.
  std::optional<T> PopWait() {
    for (;;) {
      if (auto value = TryPop()) {
        return value;
      }
      // Non-empty but unpoppable = a producer between its tail exchange and
      // the next-pointer store; spin, it is a few instructions away.
      if (size_.load(std::memory_order_acquire) > 0) {
        std::this_thread::yield();
        continue;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // Closed: one final sweep in case a push landed before the close.
        if (auto value = TryPop()) {
          return value;
        }
        return std::nullopt;
      }
      std::unique_lock<std::mutex> lock(park_mu_);
      // parked_ must be re-declared on EVERY pass before re-checking the
      // predicate, not just once before a predicated wait. A producer's wake
      // claim (the exchange in WakeConsumer) can be stale: claimed against a
      // *previous* park cycle, delivered after this consumer already drained
      // those pushes and went back to sleep. A predicated cv.wait would
      // re-sleep with parked_ still false (cleared by the stale claimer), and
      // every later push would then skip the wake — stranding queued values
      // behind a consumer nobody thinks is asleep.
      for (;;) {
        parked_.store(true, std::memory_order_seq_cst);
        // seq_cst Dekker handshake, per iteration: either this load sees the
        // producer's size increment, or the producer's exchange sees parked_
        // == true and wakes us.
        if (size_.load(std::memory_order_seq_cst) > 0 ||
            closed_.load(std::memory_order_acquire)) {
          break;
        }
        park_cv_.wait(lock);
      }
      parked_.store(false, std::memory_order_release);
    }
  }

  // Stops future pushes and wakes the consumer; queued values still drain.
  void Close() {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }

  bool Closed() const { return closed_.load(std::memory_order_acquire); }

  size_t Size() const {
    const int64_t n = size_.load(std::memory_order_acquire);
    return n > 0 ? static_cast<size_t>(n) : 0;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* AcquireNode() {
    if (auto node = free_nodes_.TryPop()) {
      return *node;
    }
    return new Node();
  }

  void ReleaseNode(Node* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    if (!free_nodes_.TryPush(node)) {
      delete node;
    }
  }

  void WakeConsumer() {
    // Steady state: consumer busy, `parked_` false, no lock taken. The lock
    // closes the race where the consumer checked size just before our
    // fetch_add and is now committing to sleep.
    // exchange, not load: the producer that sees `parked_` claims the wake
    // by clearing it, so a burst of pushes to a not-yet-rescheduled consumer
    // pays one futex wake, not one per push. Clearing is safe because the
    // claim happens after size was incremented — the consumer's predicate is
    // already true, it just has not run yet.
    if (!parked_.exchange(false, std::memory_order_seq_cst)) {
      return;
    }
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }

  BoundedFreeList<Node*> free_nodes_;
  Node* stub_;                     // initial dummy; ownership rotates via retirement
  Node* head_;                     // consumer-only
  alignas(64) std::atomic<Node*> tail_;
  alignas(64) std::atomic<int64_t> size_{0};
  std::atomic<bool> closed_{false};

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  // Written under park_mu_; read lock-free by producers in WakeConsumer. The
  // producer's size increment happens-before its parked_ read, and the
  // consumer re-declares parked_ and re-checks size on every wait-loop pass
  // (see PopWait), so neither a missed-true read nor a stale wake claim can
  // strand a value with a sleeping consumer.
  std::atomic<bool> parked_{false};
};

}  // namespace antipode

#endif  // SRC_COMMON_MPSC_QUEUE_H_
