// A bounded multi-producer multi-consumer blocking queue, used by thread
// pools, message brokers, and the open-loop load generators.

#ifndef SRC_COMMON_BLOCKING_QUEUE_H_
#define SRC_COMMON_BLOCKING_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "src/common/clock.h"

namespace antipode {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return PopLocked();
  }

  // Waits up to `timeout`; returns nullopt on timeout or when closed+drained.
  std::optional<T> PopWithTimeout(Duration timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); });
    return PopLocked();
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Wakes all waiters; subsequent pushes fail, pops drain remaining items.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  std::optional<T> PopLocked() {
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace antipode

#endif  // SRC_COMMON_BLOCKING_QUEUE_H_
