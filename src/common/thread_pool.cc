#include "src/common/thread_pool.h"

#include "src/common/sim.h"

namespace antipode {

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)), sim_state_(std::make_shared<SimState>()) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return false;
  }
  if (SimScheduler* sim = SimScheduler::Active()) {
    auto state = sim_state_;
    state->pending.fetch_add(1, std::memory_order_relaxed);
    sim->Post(sim->Now(), sim->ExecutorAffinity(this),
              [state, fn = std::move(task)]() mutable {
                state->pending.fetch_sub(1, std::memory_order_relaxed);
                if (!state->open.load(std::memory_order_acquire)) {
                  return;
                }
                fn();
              });
    return true;
  }
  return tasks_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    return;
  }
  if (SimScheduler* sim = SimScheduler::Active()) {
    // Mirror the threaded drain: tasks submitted before Shutdown still run
    // before it returns. Submitted tasks are due-now events, so pumping until
    // this pool's pending count hits zero drains exactly what was accepted.
    auto state = sim_state_;
    sim->RunUntil([state] { return state->pending.load(std::memory_order_relaxed) == 0; },
                  TimePoint::max());
    state->open.store(false, std::memory_order_release);
  }
  tasks_.Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    auto task = tasks_.Pop();
    if (!task.has_value()) {
      return;  // closed and drained
    }
    (*task)();
  }
}

}  // namespace antipode
