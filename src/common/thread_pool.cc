#include "src/common/thread_pool.h"

namespace antipode {

ThreadPool::ThreadPool(size_t num_threads, std::string name) : name_(std::move(name)) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return false;
  }
  return tasks_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    return;
  }
  tasks_.Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    auto task = tasks_.Pop();
    if (!task.has_value()) {
      return;  // closed and drained
    }
    (*task)();
  }
}

}  // namespace antipode
