#include "src/common/timer_service.h"

#include <utility>

namespace antipode {

TimerService::TimerService() : dispatcher_([this] { DispatchLoop(); }) {}

TimerService::~TimerService() { Shutdown(); }

TimerService& TimerService::Shared() {
  static auto* service = new TimerService();  // intentionally leaked; lives for the process
  return *service;
}

void TimerService::ScheduleAfter(Duration delay, std::function<void()> fn) {
  ScheduleAt(SystemClock::Instance().Now() + delay, std::move(fn));
}

void TimerService::ScheduleAt(TimePoint when, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    entries_.push(Entry{when, next_sequence_++, std::move(fn)});
  }
  cv_.notify_one();
}

void TimerService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
}

size_t TimerService::PendingCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void TimerService::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (entries_.empty()) {
      if (shutdown_) {
        return;
      }
      cv_.wait(lock, [&] { return shutdown_ || !entries_.empty(); });
      continue;
    }
    const TimePoint next = entries_.top().when;
    const TimePoint now = SystemClock::Instance().Now();
    if (next > now) {
      if (shutdown_) {
        return;  // drop timers that are not yet due
      }
      cv_.wait_until(lock, next);
      continue;
    }
    // Move the callback out so it can run unlocked.
    auto fn = std::move(const_cast<Entry&>(entries_.top()).fn);
    entries_.pop();
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace antipode
