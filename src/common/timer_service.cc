#include "src/common/timer_service.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/common/sim.h"
#include "src/obs/metrics.h"

namespace antipode {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested != TimerServiceOptions::kDefaultWorkers) {
    return requested;
  }
  const size_t cores = std::thread::hardware_concurrency();
  return std::clamp<size_t>(cores, 2, 8);
}

}  // namespace

TimerService::TimerService(const Options& options) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  callbacks_run_ = registry.GetCounter("timer.callbacks_run");
  if (options.deterministic) {
    sim_ = SimScheduler::Active();
    if (sim_ == nullptr) {
      std::fprintf(stderr,
                   "TimerService: deterministic mode requires an active SimScheduler "
                   "(construct inside a ScopedSimMode)\n");
      std::abort();
    }
    sim_state_ = std::make_shared<SimState>();
    sim_state_->callbacks_run = callbacks_run_;
    return;
  }
  const size_t num_shards = std::max<size_t>(1, options.num_shards);
  const size_t num_workers = ResolveWorkers(options.num_workers);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    const std::string label = std::to_string(i);
    shard->queue_depth = registry.GetGauge("timer.queue_depth", {{"shard", label}});
    shard->dispatch_lag = registry.GetHistogram("timer.dispatch_lag_ms", {{"shard", label}});
    shards_.push_back(std::move(shard));
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after every shard/worker slot exists: a dispatcher may
  // route to any worker queue the moment it runs.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(*w); });
  }
  for (auto& shard : shards_) {
    shard->dispatcher = std::thread([this, s = shard.get()] { DispatchLoop(*s); });
  }
}

TimerService::~TimerService() { Shutdown(); }

TimerService& TimerService::Shared() {
  static auto* service = new TimerService();  // intentionally leaked; lives for the process
  return *service;
}

bool TimerService::ScheduleAfter(Duration delay, TimerTask fn) {
  return ScheduleAt(GlobalClock().Now() + delay, std::move(fn));
}

bool TimerService::ScheduleAfter(Duration delay, AffinityToken affinity, TimerTask fn) {
  return ScheduleAt(GlobalClock().Now() + delay, affinity, std::move(fn));
}

bool TimerService::ScheduleAt(TimePoint when, TimerTask fn) {
  return ScheduleAt(when, round_robin_.fetch_add(1, std::memory_order_relaxed), std::move(fn));
}

bool TimerService::ScheduleAt(TimePoint when, AffinityToken affinity, TimerTask fn) {
  if (sim_ != nullptr) {
    if (shutdown_.load(std::memory_order_acquire)) {
      return false;
    }
    // The wrapper (not the scheduler) enforces the shutdown contract: events
    // posted before Shutdown but due after it find open == false and drop
    // their callback without running it.
    auto state = sim_state_;
    state->pending.fetch_add(1, std::memory_order_relaxed);
    sim_->Post(when, affinity, [state, task = std::move(fn)]() mutable {
      state->pending.fetch_sub(1, std::memory_order_relaxed);
      if (!state->open.load(std::memory_order_acquire)) {
        return;
      }
      task();
      state->callbacks_run->Increment();
    });
    return true;
  }
  Shard& shard = *shards_[affinity % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shutdown_.load(std::memory_order_relaxed)) {
      return false;
    }
    shard.entries.push(Entry{when, shard.next_sequence++, affinity, std::move(fn)});
    shard.queue_depth->Add(1);
  }
  shard.cv.notify_one();
  return true;
}

void TimerService::Shutdown() {
  if (sim_ != nullptr) {
    const bool was_shut = shutdown_.exchange(true, std::memory_order_acq_rel);
    if (was_shut) {
      return;
    }
    // Mirror the threaded contract: timers already due still fire before
    // Shutdown returns; future ones are dropped by the wrapper's open flag.
    sim_->AdvanceTo(sim_->Now());
    sim_state_->open.store(false, std::memory_order_release);
    return;
  }
  shutdown_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    // Take-and-release the shard lock so a dispatcher is either not yet
    // waiting (and will see the flag) or inside the wait (and gets woken).
    { std::lock_guard<std::mutex> lock(shard->mu); }
    shard->cv.notify_all();
  }
  std::lock_guard<std::mutex> join_lock(shutdown_mu_);
  for (auto& shard : shards_) {
    if (shard->dispatcher.joinable()) {
      shard->dispatcher.join();
    }
  }
  // Dispatchers are quiesced: nothing pushes to worker queues anymore. Close
  // lets each worker drain what was already dispatched (due timers still
  // fire), then exit.
  for (auto& worker : workers_) {
    worker->tasks.Close();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

size_t TimerService::PendingCount() const {
  if (sim_ != nullptr) {
    return sim_state_->pending.load(std::memory_order_relaxed);
  }
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  for (const auto& worker : workers_) {
    total += worker->tasks.Size();
  }
  return total;
}

void TimerService::DispatchLoop(Shard& shard) {
  // Due entries are drained in batches: one lock hold pops everything whose
  // deadline has passed (up to kMaxBatch), then routing — the lock-free
  // worker pushes or the inline runs — happens unlocked. Under load this
  // turns a lock/unlock cycle per timer into one per batch; schedulers
  // blocked on shard.mu get the whole routing window to refill the heap.
  // Heap pop order preserves the per-token contract: deadline order, FIFO
  // within equal deadlines, and batch routing keeps that order per worker.
  constexpr size_t kMaxBatch = 128;
  std::vector<Entry> batch;
  batch.reserve(kMaxBatch);
  std::unique_lock<std::mutex> lock(shard.mu);
  while (true) {
    if (shard.entries.empty()) {
      if (shutdown_.load(std::memory_order_relaxed)) {
        return;
      }
      shard.cv.wait(lock, [&] {
        return shutdown_.load(std::memory_order_relaxed) || !shard.entries.empty();
      });
      continue;
    }
    const TimePoint next = shard.entries.top().when;
    const TimePoint now = SystemClock::Instance().Now();
    if (next > now) {
      if (shutdown_.load(std::memory_order_relaxed)) {
        // Drop timers that are not yet due.
        shard.queue_depth->Add(-static_cast<int64_t>(shard.entries.size()));
        return;
      }
      shard.cv.wait_until(lock, next);
      continue;
    }
    while (!shard.entries.empty() && batch.size() < kMaxBatch &&
           shard.entries.top().when <= now) {
      batch.push_back(std::move(const_cast<Entry&>(shard.entries.top())));
      shard.entries.pop();
    }
    shard.queue_depth->Add(-static_cast<int64_t>(batch.size()));
    lock.unlock();
    for (Entry& entry : batch) {
      shard.dispatch_lag->Record(
          ToMillis(std::chrono::duration_cast<Duration>(now - entry.when)));
      if (workers_.empty()) {
        entry.fn();
        callbacks_run_->Increment();
      } else {
        // Same affinity → same worker queue, so equal-deadline FIFO within a
        // token survives the handoff (this shard is the only producer of the
        // token's entries, and the worker executes its queue serially).
        workers_[entry.affinity % workers_.size()]->tasks.Push(std::move(entry.fn));
      }
    }
    batch.clear();
    lock.lock();
  }
}

void TimerService::WorkerLoop(Worker& worker) {
  while (auto task = worker.tasks.PopWait()) {
    (*task)();
    callbacks_run_->Increment();
  }
}

}  // namespace antipode
