// ALWAYS/SOMETIMES/REACHABLE property assertions, modeled on the Antithesis
// C++ SDK: a property is *registered* the first time its assertion site is
// reached, every evaluation is *observed* (pass/fail counters, never an
// abort), and a harness asks the registry for verdicts — per run and process
// lifetime — or prints a summary at exit.
//
//   * kAlways     — must hold on every evaluation; one false observation is a
//                   violation. ("a barrier never completes past its deadline")
//   * kSometimes  — must hold on at least one evaluation per swept run set;
//                   never reaching it means the harness failed to exercise the
//                   behaviour. ("a retry was attempted", "a backlog replayed")
//   * kReachable  — kSometimes with the condition fixed true: the site itself
//                   must execute.
//
// The registry is process-wide and thread-safe; assertion sites cache their
// Property* in a function-local static so the steady-state cost is two
// relaxed atomic increments. Deterministic-simulation sweeps call BeginRun()
// per episode to get per-seed verdicts, and set deep_checks() to enable
// expensive cross-validation (e.g. re-probing every dependency behind a
// memoized barrier fast path).

#ifndef SRC_COMMON_PROPERTY_H_
#define SRC_COMMON_PROPERTY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace antipode {

enum class PropertyKind : uint8_t { kAlways, kSometimes, kReachable };

std::string_view PropertyKindName(PropertyKind kind);

class Property {
 public:
  Property(PropertyKind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

  PropertyKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  // Records one evaluation. Never throws, never aborts: verdicts are read
  // back through the registry so a sweep can report every violation with its
  // seed instead of dying on the first.
  void Observe(bool ok) {
    if (ok) {
      run_pass_.fetch_add(1, std::memory_order_relaxed);
      total_pass_.fetch_add(1, std::memory_order_relaxed);
    } else {
      RecordFailure(nullptr);
    }
  }

  // Like Observe, but `detail` is only materialized on failure (assertion
  // sites pass a lambda building the message, which stays free on the pass
  // path).
  void Observe(bool ok, const std::function<std::string()>& detail) {
    if (ok) {
      run_pass_.fetch_add(1, std::memory_order_relaxed);
      total_pass_.fetch_add(1, std::memory_order_relaxed);
    } else {
      RecordFailure(&detail);
    }
  }

  uint64_t run_passes() const { return run_pass_.load(std::memory_order_relaxed); }
  uint64_t run_failures() const { return run_fail_.load(std::memory_order_relaxed); }
  uint64_t total_passes() const { return total_pass_.load(std::memory_order_relaxed); }
  uint64_t total_failures() const { return total_fail_.load(std::memory_order_relaxed); }

  // First failure detail captured this process (empty when none or when the
  // failing site provided no detail).
  std::string first_failure_detail() const;

  void ResetRun() {
    run_pass_.store(0, std::memory_order_relaxed);
    run_fail_.store(0, std::memory_order_relaxed);
  }

 private:
  void RecordFailure(const std::function<std::string()>* detail);

  const PropertyKind kind_;
  const std::string name_;
  std::atomic<uint64_t> run_pass_{0};
  std::atomic<uint64_t> run_fail_{0};
  std::atomic<uint64_t> total_pass_{0};
  std::atomic<uint64_t> total_fail_{0};
  mutable std::mutex detail_mu_;
  std::string first_failure_detail_;  // guarded by detail_mu_
};

class PropertyRegistry {
 public:
  static PropertyRegistry& Instance();

  // Idempotent by name: the first registration fixes the kind, later calls
  // (other sites sharing the property) return the same object.
  Property* Register(PropertyKind kind, std::string_view name);

  // Starts a new verdict window: per-run counters reset, registration and
  // lifetime totals persist. Returns the new run index (first run is 1).
  uint64_t BeginRun();
  uint64_t run_id() const { return run_id_.load(std::memory_order_relaxed); }

  // No ALWAYS property failed during the current run window.
  bool RunViolationFree() const;
  // ALWAYS failures across the whole process.
  uint64_t TotalAlwaysFailures() const;
  // SOMETIMES/REACHABLE properties never observed true this process.
  std::vector<std::string> UnreachedSometimes() const;

  struct PropertyState {
    std::string name;
    PropertyKind kind = PropertyKind::kAlways;
    uint64_t run_passes = 0;
    uint64_t run_failures = 0;
    uint64_t total_passes = 0;
    uint64_t total_failures = 0;
    std::string first_failure_detail;
  };
  // Sorted by name, so summaries and JSON reports are stable.
  std::vector<PropertyState> Snapshot() const;

  Property* Find(std::string_view name) const;

  // Expensive cross-validation gate (e.g. re-probing every dependency behind
  // a memoized barrier fast path). Off by default; sweeps turn it on.
  void set_deep_checks(bool enabled) { deep_checks_.store(enabled, std::memory_order_relaxed); }
  bool deep_checks() const { return deep_checks_.load(std::memory_order_relaxed); }

  // Prints the Antithesis-style table (name, kind, verdict, counts).
  void PrintSummary(std::ostream& os) const;
  // Arms an atexit hook printing PrintSummary to stderr (sweeps use it; unit
  // tests stay quiet unless they opt in).
  void EnableExitSummary();

 private:
  PropertyRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Property>, std::less<>> properties_;  // guarded by mu_
  std::atomic<uint64_t> run_id_{1};
  std::atomic<bool> deep_checks_{false};
  std::atomic<bool> exit_summary_armed_{false};
};

// Assertion-site macros. `name` must be a stable string literal: it is the
// property's identity across sites, runs, and reports.
#define ANTIPODE_PROPERTY_CAT2(a, b) a##b
#define ANTIPODE_PROPERTY_CAT(a, b) ANTIPODE_PROPERTY_CAT2(a, b)

#define ANTIPODE_PROPERTY_OBSERVE(kind, name, ...)                                      \
  do {                                                                                  \
    static ::antipode::Property* const ANTIPODE_PROPERTY_CAT(antipode_prop_, __LINE__) = \
        ::antipode::PropertyRegistry::Instance().Register((kind), (name));              \
    ANTIPODE_PROPERTY_CAT(antipode_prop_, __LINE__)->Observe(__VA_ARGS__);              \
  } while (0)

// The condition must hold here, every time.
#define ANTIPODE_ALWAYS(name, ...) \
  ANTIPODE_PROPERTY_OBSERVE(::antipode::PropertyKind::kAlways, name, __VA_ARGS__)

// The condition must hold here at least once across the sweep.
#define ANTIPODE_SOMETIMES(name, ...) \
  ANTIPODE_PROPERTY_OBSERVE(::antipode::PropertyKind::kSometimes, name, __VA_ARGS__)

// This site must execute at least once across the sweep.
#define ANTIPODE_REACHABLE(name) \
  ANTIPODE_PROPERTY_OBSERVE(::antipode::PropertyKind::kReachable, name, true)

}  // namespace antipode

#endif  // SRC_COMMON_PROPERTY_H_
