// SmallVector<T, N>: a contiguous sequence with N slots of inline storage,
// spilling to the heap only past N elements. Covers the subset of the
// std::vector API the hot paths use (push_back / insert / erase / reserve /
// iteration); not a drop-in replacement — no allocator parameter, no
// exception guarantees beyond basic, geometric growth on spill.
//
// Motivation (DESIGN.md §14): a lineage's dependency vector is the most
// copied object on the deep-graph hot path — every context copy, transfer,
// and deserialize touches it. Alibaba-calibrated requests mostly stay under a
// handful of *distinct* ⟨store, key⟩ pairs until deep in the tree, so inline
// slots turn the common copy into a memcpy-sized move with zero allocations.

#ifndef SRC_COMMON_SMALL_VECTOR_H_
#define SRC_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace antipode {

template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(const SmallVector& other) { AppendRange(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      AppendRange(other.begin(), other.end());
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { Destroy(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }

  const T* data() const { return data_; }
  T* data() { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  bool inline_storage() const { return data_ == InlineData(); }

  void clear() {
    std::destroy(begin(), end());
    size_ = 0;
  }

  void reserve(size_t wanted) {
    if (wanted > capacity_) {
      Grow(wanted);
    }
  }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Grow(size_ + 1);
    }
    ::new (static_cast<void*>(data_ + size_)) T(value);
    ++size_;
  }

  void push_back(T&& value) {
    if (size_ == capacity_) {
      Grow(size_ + 1);
    }
    ::new (static_cast<void*>(data_ + size_)) T(std::move(value));
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      Grow(size_ + 1);
    }
    T* slot = ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  // Inserts before `pos`; returns an iterator to the inserted element.
  // Invalidates iterators on growth, like std::vector.
  iterator insert(const_iterator pos, T value) {
    const size_t offset = static_cast<size_t>(pos - data_);
    assert(offset <= size_);
    if (size_ == capacity_) {
      Grow(size_ + 1);
    }
    if (offset == size_) {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(value));
    } else {
      // Shift the tail right by one: move-construct into the uninitialized
      // last slot, then move-assign the rest down the line.
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      std::move_backward(data_ + offset, data_ + size_ - 1, data_ + size_);
      data_[offset] = std::move(value);
    }
    ++size_;
    return data_ + offset;
  }

  template <typename InputIt>
  iterator insert(const_iterator pos, InputIt first, InputIt last) {
    size_t offset = static_cast<size_t>(pos - data_);
    for (InputIt it = first; it != last; ++it) {
      insert(data_ + offset, *it);
      ++offset;
    }
    return data_ + (offset - static_cast<size_t>(std::distance(first, last)));
  }

  iterator erase(const_iterator pos) { return erase(pos, pos + 1); }

  iterator erase(const_iterator first, const_iterator last) {
    const size_t lo = static_cast<size_t>(first - data_);
    const size_t hi = static_cast<size_t>(last - data_);
    assert(lo <= hi && hi <= size_);
    std::move(data_ + hi, data_ + size_, data_ + lo);
    std::destroy(data_ + size_ - (hi - lo), data_ + size_);
    size_ -= hi - lo;
    return data_ + lo;
  }

  bool operator==(const SmallVector& other) const {
    return size_ == other.size_ && std::equal(begin(), end(), other.begin());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_storage_); }

  void AppendRange(const T* first, const T* last) {
    reserve(size_ + static_cast<size_t>(last - first));
    for (const T* it = first; it != last; ++it) {
      ::new (static_cast<void*>(data_ + size_)) T(*it);
      ++size_;
    }
  }

  // Leaves `other` empty. Heap buffers are stolen; inline elements are moved
  // one by one (they live inside `other`'s footprint and cannot be stolen).
  void MoveFrom(SmallVector&& other) noexcept {
    if (!other.inline_storage()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
      return;
    }
    data_ = InlineData();
    size_ = other.size_;
    capacity_ = N;
    std::uninitialized_move(other.begin(), other.end(), data_);
    std::destroy(other.begin(), other.end());
    other.size_ = 0;
  }

  void Grow(size_t wanted) {
    const size_t grown = std::max(wanted, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(grown * sizeof(T), std::align_val_t(alignof(T))));
    std::uninitialized_move(begin(), end(), fresh);
    const size_t count = size_;
    Destroy();
    data_ = fresh;
    size_ = count;
    capacity_ = grown;
  }

  // Destroys elements and releases any heap buffer; leaves members stale —
  // callers reset them (MoveFrom) or never touch the object again (dtor).
  void Destroy() {
    std::destroy(begin(), end());
    if (!inline_storage()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace antipode

#endif  // SRC_COMMON_SMALL_VECTOR_H_
