// Deterministic, fast pseudo-random number generation and the distributions
// used by the workload generators (uniform, exponential, lognormal, Zipf).
//
// Everything here is seedable so experiments are reproducible run-to-run.

#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace antipode {

// xoshiro256** — fast, high-quality, and trivially seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  uint64_t NextUint64();

  // Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi].
  double NextUniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Lognormal parameterized by the *median* and sigma of the underlying
  // normal; convenient for latency models ("median 45 ms, sigma 0.2").
  double NextLognormal(double median, double sigma);

  // Standard normal via Box–Muller.
  double NextGaussian();

  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

// Zipf-distributed integers in [0, n). Uses the rejection-inversion sampler
// of Hörmann & Derflinger, O(1) per sample after O(1) setup.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace antipode

#endif  // SRC_COMMON_RANDOM_H_
