// Time utilities.
//
// All simulated latencies in this repository are expressed in *model
// milliseconds* — the latencies the modelled deployment would exhibit (e.g.
// ~90 ms US↔EU RTT, ~1000 ms MySQL replication). A process-wide `TimeScale`
// converts model time into wall-clock time so that experiments preserving
// every latency *ratio* can run in seconds. The scale is configured once at
// harness startup (default 1.0; benches typically use 0.02).

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace antipode {

using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::steady_clock::time_point;

// Process-wide scale applied to model time. Not thread-safe to mutate
// concurrently with use; set it once before starting any simulated component.
class TimeScale {
 public:
  static double Get();
  static void Set(double scale);

  // Converts model milliseconds into scaled wall-clock microseconds.
  static Duration FromModelMillis(double model_millis);

  // Converts scaled wall-clock microseconds back to model milliseconds, for
  // reporting measurements in the paper's units.
  static double ToModelMillis(Duration wall);

 private:
  static double scale_;
};

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
  virtual void SleepFor(Duration d) const = 0;
};

// The default wall-clock implementation backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  static SystemClock& Instance();

  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
  void SleepFor(Duration d) const override {
    if (d.count() > 0) {
      std::this_thread::sleep_for(d);
    }
  }
};

// The process-wide clock every component reads time through. Defaults to
// SystemClock; deterministic simulation (ScopedSimMode in sim.h) swaps in a
// virtual-time SimClock so no component touches the wall clock in sim mode.
// Passing nullptr restores the SystemClock default; returns the previous
// override (nullptr when the default was in effect).
Clock& GlobalClock();
Clock* SetGlobalClock(Clock* clock);

// Deadline arithmetic shared by every wait path. Duration::max() is the
// "no timeout" sentinel and maps to TimePoint::max(); computing the deadline
// once and passing it to every wait in a batch is what gives a barrier a
// single shared budget instead of per-dependency budgets.
inline TimePoint DeadlineAfter(Duration timeout) {
  return timeout == Duration::max() ? TimePoint::max() : GlobalClock().Now() + timeout;
}

inline Duration RemainingBudget(TimePoint deadline) {
  if (deadline == TimePoint::max()) {
    return Duration::max();
  }
  const TimePoint now = GlobalClock().Now();
  if (now >= deadline) {
    return Duration::zero();
  }
  return std::chrono::duration_cast<Duration>(deadline - now);
}

// How long a wait (a barrier, a lineage wait, a frontier stabilization) may
// take. `deadline` is preferred when the caller already computed one shared
// absolute bound; when both are set the earlier bound wins. Embedded by value
// in every wait-options struct (BarrierOptions, LineageWaitOptions) so the
// enforcement layer threads a single policy type through every backend.
struct WaitPolicy {
  // Relative budget; every wait in the covered set shares it.
  Duration timeout = Duration::max();
  // Absolute budget, computed once by the caller.
  TimePoint deadline = TimePoint::max();

  // The single absolute bound the covered waits share: the earlier of
  // `deadline` and now + `timeout`.
  TimePoint EffectiveDeadline() const {
    const TimePoint from_timeout = DeadlineAfter(timeout);
    return deadline < from_timeout ? deadline : from_timeout;
  }
};

inline int64_t ToMicros(Duration d) { return d.count(); }
inline double ToMillis(Duration d) { return static_cast<double>(d.count()) / 1000.0; }
inline Duration Micros(int64_t us) { return Duration(us); }
inline Duration Millis(int64_t ms) { return Duration(ms * 1000); }

}  // namespace antipode

#endif  // SRC_COMMON_CLOCK_H_
