// Deterministic single-threaded simulation scheduler (FoundationDB-style).
//
// In simulation mode nothing sleeps and no engine thread runs: every delayed
// action in the process — timer callbacks, network deliveries, replication
// shipments, RPC handler hops — becomes an event in one min-heap ordered by
// (virtual deadline, seeded tie, submission sequence). The driver thread pumps
// the heap; executing an event advances virtual time to its deadline, so a
// 90 ms WAN round-trip costs nothing but the callback itself. Wall-clock never
// enters: `ScopedSimMode` installs a `SimClock` as the process `GlobalClock()`
// so `DeadlineAfter`, store waits, fault windows, and backoff sleeps all read
// virtual time.
//
// Determinism and exploration: events due at the *same* virtual instant are
// ordered by `tie = mix64(seed ^ affinity)`, then by submission sequence.
// Same affinity token ⇒ same tie ⇒ FIFO, which preserves the TimerService
// per-token ordering contract (replication apply order). Different tokens at
// an equal deadline are permuted per seed — that permutation is the schedule
// space a seed sweep explores. Replaying a seed replays the exact schedule;
// `TraceHash()` folds every executed event's (relative time, tie, sequence)
// into one value so replays can be compared byte-for-byte cheaply.
//
// Blocking in simulation is cooperative: a wait path that would park on a
// condition variable instead calls `RunUntil(pred, deadline)`, which pumps
// events (reentrantly — an event's callback may itself block and pump) until
// the predicate holds or virtual time reaches the deadline. A quiescent heap
// with an unsatisfied predicate and no deadline is a genuine deadlock and is
// reported as such by returning false without advancing time.

#ifndef SRC_COMMON_SIM_H_
#define SRC_COMMON_SIM_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/small_function.h"

namespace antipode {

// splitmix64 finalizer; also used for trace-hash folding.
inline uint64_t SimMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class SimScheduler {
 public:
  explicit SimScheduler(uint64_t seed);
  ~SimScheduler();

  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  // The process-wide active scheduler, or nullptr outside sim mode. Engines
  // (TimerService, ThreadPool, blocking waits) test this to decide whether to
  // post events or use real threads. Installed by ScopedSimMode.
  static SimScheduler* Active();

  uint64_t seed() const { return seed_; }

  // Virtual now. Anchored at the real clock reading taken at construction so
  // HLC stamps and trace epochs stay monotone across real→sim transitions.
  TimePoint Now() const;

  // Enqueues `fn` to run at virtual time `when` (clamped to now). Events
  // sharing `affinity` run in FIFO order at equal deadlines; distinct
  // affinities at equal deadlines run in a per-seed order.
  void Post(TimePoint when, uint64_t affinity, TimerTask fn);

  // Pops and runs the earliest event, advancing virtual time to its deadline.
  // Returns false when the heap is empty. Reentrant: the executing callback
  // may Post and may itself pump via RunUntil/StepOne.
  bool StepOne();

  // Pumps until the heap is empty (or `max_events`, a runaway backstop).
  // Returns the number of events run.
  size_t RunUntilQuiescent(size_t max_events = kDefaultMaxEvents);

  // Pumps events whose deadline is ≤ `deadline` until `pred()` holds.
  // On success returns true with virtual time wherever the satisfying event
  // left it. On timeout (next event past the deadline, or quiescent with a
  // finite deadline) advances virtual time to the deadline and returns
  // pred(). Quiescent with deadline == TimePoint::max() is a deadlock:
  // returns pred() without advancing time.
  bool RunUntil(const std::function<bool()>& pred, TimePoint deadline);

  // Runs every event due at or before `target`, then sets virtual time to
  // `target`. SimClock::SleepFor is implemented with this, which is what
  // makes poll-sleep loops (shim visibility probes, RPC backoff) make
  // progress in simulation.
  void AdvanceTo(TimePoint target);
  void AdvanceBy(Duration d) { AdvanceTo(Now() + d); }

  // Order-sensitive digest of every executed event: fold of (deadline
  // relative to the sim origin, tie, sequence). Two runs with equal hashes
  // executed the identical schedule.
  uint64_t TraceHash() const;
  uint64_t events_run() const;
  size_t PendingEvents() const;

  // Deterministic substitute for the process-global RPC call-id counter
  // (call ids seed per-call backoff RNG, so they must not leak state across
  // episodes).
  uint64_t NextCallId();

  // Deterministic affinity token for an executor identified by `key`
  // (typically a ThreadPool's address). Tokens are assigned in first-use
  // order, not from the address value, so ASLR cannot perturb schedules.
  uint64_t ExecutorAffinity(const void* key);

 private:
  struct Event {
    TimePoint when;
    uint64_t tie = 0;
    uint64_t seq = 0;
    TimerTask fn;
  };
  // std::push_heap/pop_heap comparator for a min-heap on (when, tie, seq).
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  // Pops the earliest event into `out`; false when empty. Caller runs it
  // outside the lock.
  bool PopNext(Event& out);

  static constexpr size_t kDefaultMaxEvents = 50'000'000;

  const uint64_t seed_;
  const TimePoint origin_;

  // Everything below is guarded by mu_. The lock is recursive only in the
  // sense that it is released around callback execution; sim mode is
  // single-threaded by construction and the mutex just keeps incidental
  // cross-thread posts (a draining real thread scheduling one last event)
  // from corrupting the heap.
  mutable std::mutex mu_;
  std::vector<Event> heap_;
  TimePoint now_;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  uint64_t trace_hash_;
  uint64_t next_call_id_ = 1;
  std::unordered_map<const void*, uint64_t> executor_affinity_;
  uint64_t next_executor_token_ = 0;
};

// Clock implementation backed by the scheduler's virtual time. SleepFor pumps
// the event heap across the span instead of parking the thread.
class SimClock final : public Clock {
 public:
  explicit SimClock(SimScheduler* scheduler) : scheduler_(scheduler) {}

  TimePoint Now() const override { return scheduler_->Now(); }
  void SleepFor(Duration d) const override {
    if (d.count() > 0) scheduler_->AdvanceBy(d);
  }

 private:
  SimScheduler* const scheduler_;
};

// RAII for one deterministic episode: constructs a scheduler, installs it as
// SimScheduler::Active() and its SimClock as the GlobalClock(); the
// destructor restores both. Episodes must construct their own engines
// (TimerService with deterministic=true, private stores/topologies) inside
// the scope.
class ScopedSimMode {
 public:
  explicit ScopedSimMode(uint64_t seed);
  ~ScopedSimMode();

  ScopedSimMode(const ScopedSimMode&) = delete;
  ScopedSimMode& operator=(const ScopedSimMode&) = delete;

  SimScheduler& scheduler() { return scheduler_; }

 private:
  SimScheduler scheduler_;
  SimClock clock_;
  Clock* previous_clock_;
  SimScheduler* previous_active_;
};

}  // namespace antipode

#endif  // SRC_COMMON_SIM_H_
