// Latency/size histogram with percentile queries and CDF export.
//
// Uses exponentially-sized buckets (HdrHistogram-style) so a single instance
// covers nanoseconds to minutes with bounded relative error, plus an exact
// min/max/sum. Thread-safe variant available via `ConcurrentHistogram`.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace antipode {

class Histogram {
 public:
  Histogram();

  void Record(double value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Value at quantile q in [0, 1]; approximate within bucket resolution.
  double Percentile(double q) const;

  // (value, cumulative_fraction) pairs over the non-empty buckets.
  std::vector<std::pair<double, double>> Cdf() const;

  // "count=… mean=… p50=… p99=… max=…" one-liner for reports.
  std::string Summary() const;

  void Reset();

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two
  // 64 power-of-two bands spanning [kMinExponent, kMaxExponent].
  static constexpr int kMinExponent = -30;
  static constexpr int kMaxExponent = 33;
  static constexpr int kNumBuckets = 64 << kSubBucketBits;
  static_assert(kMaxExponent - kMinExponent + 1 == kNumBuckets >> kSubBucketBits,
                "bucket table must cover the exponent range exactly");

  static int BucketFor(double value);
  static double BucketMidpoint(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// A mutex-guarded histogram for concurrent recording from workload threads.
class ConcurrentHistogram {
 public:
  void Record(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Record(value);
  }

  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Reset();
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

}  // namespace antipode

#endif  // SRC_COMMON_HISTOGRAM_H_
