// Tiny leveled logger. Disabled levels compile to a no-op stream; the default
// threshold is WARNING so experiment harnesses stay quiet unless asked.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>

namespace antipode {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

class Logger {
 public:
  static LogLevel Threshold();
  static void SetThreshold(LogLevel level);

  // Writes one formatted line to stderr under a lock.
  static void Write(LogLevel level, const char* file, int line, const std::string& message);
};

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Write(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace antipode

#define ANTIPODE_LOG(level)                                                        \
  if (::antipode::LogLevel::level < ::antipode::Logger::Threshold()) {             \
  } else                                                                           \
    ::antipode::LogMessage(::antipode::LogLevel::level, __FILE__, __LINE__).stream()

#define LOG_DEBUG ANTIPODE_LOG(kDebug)
#define LOG_INFO ANTIPODE_LOG(kInfo)
#define LOG_WARNING ANTIPODE_LOG(kWarning)
#define LOG_ERROR ANTIPODE_LOG(kError)

#endif  // SRC_COMMON_LOGGING_H_
