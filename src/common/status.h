// Lightweight error-handling primitives used throughout the library.
//
// `Status` carries an error code plus a human-readable message; `Result<T>` is
// an `expected`-like union of a value and a `Status`. Neither allocates on the
// success path.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace antipode {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kDeadlineExceeded,
  kUnavailable,
  kFailedPrecondition,
  kAborted,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Aborted(std::string message) {
    return Status(StatusCode::kAborted, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// A value-or-error union. `Result<T>` is either an engaged value of type T or
// a non-OK Status describing why the value is absent.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(Status status) : data_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return data_.index() == 0; }

  const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<1>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<0>(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace antipode

#endif  // SRC_COMMON_STATUS_H_
