#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace antipode {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(double value) {
  if (value <= 0.0) {
    return 0;
  }
  // log2-based index: exponent selects the power-of-two range, the mantissa's
  // top kSubBucketBits select the sub-bucket.
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // mantissa in [0.5, 1)
  // Clamp exponents to [-30, 33] so the table covers ~1e-9 .. ~8e9: values are
  // recorded in model milliseconds, so the bottom of the range resolves
  // single-nanosecond latencies (1 ns = 1e-6 ms ≈ 2^-20) instead of collapsing
  // them into one saturated floor bucket.
  exponent = std::clamp(exponent, kMinExponent, kMaxExponent);
  const int sub =
      std::min((1 << kSubBucketBits) - 1,
               static_cast<int>((mantissa - 0.5) * 2.0 * (1 << kSubBucketBits)));
  return (exponent - kMinExponent) * (1 << kSubBucketBits) + sub;
}

double Histogram::BucketMidpoint(int bucket) {
  const int exponent = bucket / (1 << kSubBucketBits) + kMinExponent;
  const int sub = bucket % (1 << kSubBucketBits);
  const double mantissa_lo = 0.5 + static_cast<double>(sub) / (2.0 * (1 << kSubBucketBits));
  const double mantissa_hi = mantissa_lo + 1.0 / (2.0 * (1 << kSubBucketBits));
  return std::ldexp((mantissa_lo + mantissa_hi) / 2.0, exponent);
}

void Histogram::Record(double value) {
  const int bucket = BucketFor(value);
  buckets_[static_cast<size_t>(bucket)]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative >= target && buckets_[static_cast<size_t>(i)] > 0) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

std::vector<std::pair<double, double>> Histogram::Cdf() const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0) {
    return out;
  }
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[static_cast<size_t>(i)] == 0) {
      continue;
    }
    cumulative += buckets_[static_cast<size_t>(i)];
    out.emplace_back(BucketMidpoint(i), static_cast<double>(cumulative) / count_);
  }
  return out;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(0.50)
     << " p90=" << Percentile(0.90) << " p99=" << Percentile(0.99)
     << " p999=" << Percentile(0.999) << " max=" << max();
  return os.str();
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = sum_ = 0.0;
}

}  // namespace antipode
