#include "src/common/property.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace antipode {

std::string_view PropertyKindName(PropertyKind kind) {
  switch (kind) {
    case PropertyKind::kAlways:
      return "ALWAYS";
    case PropertyKind::kSometimes:
      return "SOMETIMES";
    case PropertyKind::kReachable:
      return "REACHABLE";
  }
  return "UNKNOWN";
}

std::string Property::first_failure_detail() const {
  std::lock_guard<std::mutex> lock(detail_mu_);
  return first_failure_detail_;
}

void Property::RecordFailure(const std::function<std::string()>* detail) {
  run_fail_.fetch_add(1, std::memory_order_relaxed);
  uint64_t prior = total_fail_.fetch_add(1, std::memory_order_relaxed);
  if (prior == 0) {
    std::string message = (detail != nullptr && *detail) ? (*detail)() : std::string();
    {
      std::lock_guard<std::mutex> lock(detail_mu_);
      if (first_failure_detail_.empty()) first_failure_detail_ = message;
    }
    if (kind_ == PropertyKind::kAlways) {
      // First violation of an ALWAYS property is worth a line even without a
      // harness: a sweep still reports verdicts, but a unit test that never
      // inspects the registry should not swallow it silently.
      std::fprintf(stderr, "[property] ALWAYS \"%s\" violated%s%s\n", name_.c_str(),
                   message.empty() ? "" : ": ", message.c_str());
    }
  }
}

PropertyRegistry& PropertyRegistry::Instance() {
  static PropertyRegistry* registry = new PropertyRegistry();
  return *registry;
}

Property* PropertyRegistry::Register(PropertyKind kind, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = properties_.find(name);
  if (it != properties_.end()) return it->second.get();
  auto inserted = properties_.emplace(std::string(name),
                                      std::make_unique<Property>(kind, std::string(name)));
  return inserted.first->second.get();
}

uint64_t PropertyRegistry::BeginRun() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, prop] : properties_) prop->ResetRun();
  return run_id_.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool PropertyRegistry::RunViolationFree() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, prop] : properties_) {
    if (prop->kind() == PropertyKind::kAlways && prop->run_failures() > 0) return false;
  }
  return true;
}

uint64_t PropertyRegistry::TotalAlwaysFailures() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t failures = 0;
  for (const auto& [name, prop] : properties_) {
    if (prop->kind() == PropertyKind::kAlways) failures += prop->total_failures();
  }
  return failures;
}

std::vector<std::string> PropertyRegistry::UnreachedSometimes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> unreached;
  for (const auto& [name, prop] : properties_) {
    if (prop->kind() == PropertyKind::kAlways) continue;
    if (prop->total_passes() == 0) unreached.push_back(name);
  }
  return unreached;
}

std::vector<PropertyRegistry::PropertyState> PropertyRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PropertyState> states;
  states.reserve(properties_.size());
  for (const auto& [name, prop] : properties_) {
    PropertyState state;
    state.name = name;
    state.kind = prop->kind();
    state.run_passes = prop->run_passes();
    state.run_failures = prop->run_failures();
    state.total_passes = prop->total_passes();
    state.total_failures = prop->total_failures();
    state.first_failure_detail = prop->first_failure_detail();
    states.push_back(std::move(state));
  }
  return states;
}

Property* PropertyRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = properties_.find(name);
  return it == properties_.end() ? nullptr : it->second.get();
}

void PropertyRegistry::PrintSummary(std::ostream& os) const {
  auto states = Snapshot();
  os << "property summary (" << states.size() << " properties)\n";
  for (const auto& state : states) {
    const bool is_always = state.kind == PropertyKind::kAlways;
    const bool ok = is_always ? state.total_failures == 0 : state.total_passes > 0;
    os << "  [" << (ok ? "ok" : "FAILED") << "] " << PropertyKindName(state.kind) << " "
       << state.name << " — passes=" << state.total_passes
       << " failures=" << state.total_failures;
    if (!ok && !state.first_failure_detail.empty()) {
      os << " first=" << state.first_failure_detail;
    }
    os << "\n";
  }
}

void PropertyRegistry::EnableExitSummary() {
  bool expected = false;
  if (!exit_summary_armed_.compare_exchange_strong(expected, true)) return;
  std::atexit([]() { PropertyRegistry::Instance().PrintSummary(std::cerr); });
}

}  // namespace antipode
