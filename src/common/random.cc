#include "src/common/random.h"

#include <cassert>

namespace antipode {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) {
    s = SplitMix64(state);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift bounded sampler (slightly biased for huge bounds,
  // which is irrelevant for workload generation).
  const unsigned __int128 product =
      static_cast<unsigned __int128>(NextUint64()) * static_cast<unsigned __int128>(bound);
  return static_cast<uint64_t>(product >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 1e-12;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-12;
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLognormal(double median, double sigma) {
  return median * std::exp(sigma * NextGaussian());
}

ZipfDistribution::ZipfDistribution(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta != 1.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfDistribution::H(double x) const {
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfDistribution::HInverse(double x) const {
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfDistribution::Next(Rng& rng) {
  while (true) {
    const double u = h_x1_ + rng.NextDouble() * (h_n_ - h_x1_);
    const double x = HInverse(u);
    const auto k = static_cast<uint64_t>(x + 0.5);
    const double clamped = std::max<double>(1.0, static_cast<double>(k));
    if (clamped - x <= s_ || u >= H(clamped + 0.5) - std::pow(clamped, -theta_)) {
      const uint64_t result = std::max<uint64_t>(1, k);
      return std::min(result, n_) - 1;  // 0-based
    }
  }
}

}  // namespace antipode
