// A striped slab allocator for hot-path objects that are acquired and
// released at high rates (StoredEntry blocks on the Put/ship path, timer-task
// nodes). Objects are default-constructed once per slab and *stay
// constructed* across reuse: a recycled StoredEntry keeps its key/bytes
// string capacities, so steady-state reuse does zero heap allocations even
// for the strings inside.
//
// Concurrency: the free lists are striped by thread, so concurrent
// Acquire/Release from different threads rarely touch the same mutex; each
// stripe's critical section is a vector push/pop. Exhaustion grows the pool
// by one slab (kSlabSize objects) on the stripe that ran dry — the pool never
// fails, it just allocates.
//
// Lifetime: the pool owns the slabs. Destroying the pool destroys every slot,
// so callers must release (or abandon — see contract below) every object
// before the pool dies; ReplicatedStore guarantees this by draining
// replication before teardown.

#ifndef SRC_COMMON_OBJECT_POOL_H_
#define SRC_COMMON_OBJECT_POOL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace antipode {

template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t slab_size = 64) : slab_size_(slab_size == 0 ? 1 : slab_size) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  // A live, default-constructed-or-recycled object. Never returns nullptr.
  T* Acquire() {
    Stripe& stripe = StripeForThisThread();
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      if (!stripe.free.empty()) {
        T* obj = stripe.free.back();
        stripe.free.pop_back();
        outstanding_.fetch_add(1, std::memory_order_relaxed);
        return obj;
      }
    }
    return AcquireFromNewSlab(stripe);
  }

  // Returns `obj` for reuse. The object is NOT destroyed or reset — callers
  // overwrite its fields on the next Acquire (that is the point: capacity
  // survives). Releasing an object the pool does not own is undefined.
  void Release(T* obj) {
    Stripe& stripe = StripeForThisThread();
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.free.push_back(obj);
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
  }

  struct Stats {
    size_t slabs = 0;        // slab allocations so far
    size_t capacity = 0;     // total objects owned
    size_t outstanding = 0;  // acquired and not yet released
  };

  Stats stats() const {
    Stats s;
    s.slabs = slabs_allocated_.load(std::memory_order_relaxed);
    s.capacity = s.slabs * slab_size_;
    s.outstanding = outstanding_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static constexpr size_t kStripes = 8;

  struct Stripe {
    std::mutex mu;
    std::vector<T*> free;
  };

  Stripe& StripeForThisThread() {
    return stripes_[std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes];
  }

  T* AcquireFromNewSlab(Stripe& stripe) {
    auto slab = std::make_unique<T[]>(slab_size_);
    T* first = &slab[0];
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      for (size_t i = 1; i < slab_size_; ++i) {
        stripe.free.push_back(&slab[i]);
      }
    }
    {
      std::lock_guard<std::mutex> lock(slabs_mu_);
      slabs_.push_back(std::move(slab));
    }
    slabs_allocated_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    return first;
  }

  const size_t slab_size_;
  Stripe stripes_[kStripes];
  std::mutex slabs_mu_;
  std::vector<std::unique_ptr<T[]>> slabs_;
  std::atomic<size_t> slabs_allocated_{0};
  std::atomic<size_t> outstanding_{0};
};

}  // namespace antipode

#endif  // SRC_COMMON_OBJECT_POOL_H_
