#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace antipode {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarning};
std::mutex g_write_mu;

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

}  // namespace

LogLevel Logger::Threshold() { return g_threshold.load(std::memory_order_relaxed); }

void Logger::SetThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void Logger::Write(LogLevel level, const char* file, int line, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_write_mu);
  std::fprintf(stderr, "[%c %s:%d] %s\n", LevelChar(level), Basename(file), line,
               message.c_str());
}

}  // namespace antipode
