#include "src/common/sim.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace antipode {

namespace {

std::atomic<SimScheduler*> g_active_scheduler{nullptr};

}  // namespace

SimScheduler::SimScheduler(uint64_t seed)
    : seed_(seed),
      origin_(SystemClock::Instance().Now()),
      now_(origin_),
      trace_hash_(SimMix64(seed ^ 0x616e7469706f6465ULL)) {}

SimScheduler::~SimScheduler() = default;

SimScheduler* SimScheduler::Active() {
  return g_active_scheduler.load(std::memory_order_acquire);
}

TimePoint SimScheduler::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void SimScheduler::Post(TimePoint when, uint64_t affinity, TimerTask fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Event event;
  event.when = when < now_ ? now_ : when;
  event.tie = SimMix64(seed_ ^ affinity);
  event.seq = next_seq_++;
  event.fn = std::move(fn);
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

bool SimScheduler::PopNext(Event& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
  out = std::move(heap_.back());
  heap_.pop_back();
  if (out.when > now_) now_ = out.when;
  const uint64_t rel =
      static_cast<uint64_t>(std::chrono::duration_cast<Duration>(out.when - origin_).count());
  trace_hash_ = SimMix64(trace_hash_ ^ SimMix64(rel) ^ SimMix64(out.tie + out.seq));
  ++events_run_;
  return true;
}

bool SimScheduler::StepOne() {
  Event event;
  if (!PopNext(event)) return false;
  event.fn();
  return true;
}

size_t SimScheduler::RunUntilQuiescent(size_t max_events) {
  size_t run = 0;
  while (run < max_events && StepOne()) ++run;
  return run;
}

bool SimScheduler::RunUntil(const std::function<bool()>& pred, TimePoint deadline) {
  while (true) {
    if (pred()) return true;
    TimePoint next_when;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (heap_.empty()) break;
      next_when = heap_.front().when;
    }
    if (next_when > deadline) break;
    StepOne();
  }
  // Timed out (or quiescent). With a finite deadline, virtual time owes the
  // caller the full wait; with no deadline, a quiescent heap is a deadlock
  // and advancing time would only disguise it.
  if (deadline != TimePoint::max()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (deadline > now_) now_ = deadline;
  }
  return pred();
}

void SimScheduler::AdvanceTo(TimePoint target) {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (heap_.empty() || heap_.front().when > target) {
        if (target > now_) now_ = target;
        return;
      }
    }
    StepOne();
  }
}

uint64_t SimScheduler::TraceHash() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_hash_;
}

uint64_t SimScheduler::events_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_run_;
}

size_t SimScheduler::PendingEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

uint64_t SimScheduler::NextCallId() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_call_id_++;
}

uint64_t SimScheduler::ExecutorAffinity(const void* key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = executor_affinity_.find(key);
  if (it != executor_affinity_.end()) return it->second;
  // First-use-order token, offset away from the low round-robin tokens a
  // fresh TimerService hands out so executor streams stay distinct.
  const uint64_t token = 0x45584543'00000000ULL + next_executor_token_++;
  executor_affinity_.emplace(key, token);
  return token;
}

ScopedSimMode::ScopedSimMode(uint64_t seed)
    : scheduler_(seed),
      clock_(&scheduler_),
      previous_clock_(nullptr),
      previous_active_(SimScheduler::Active()) {
  g_active_scheduler.store(&scheduler_, std::memory_order_release);
  previous_clock_ = SetGlobalClock(&clock_);
}

ScopedSimMode::~ScopedSimMode() {
  SetGlobalClock(previous_clock_);
  g_active_scheduler.store(previous_active_, std::memory_order_release);
}

}  // namespace antipode
