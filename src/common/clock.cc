#include "src/common/clock.h"

#include <algorithm>
#include <cmath>

namespace antipode {

double TimeScale::scale_ = 1.0;

double TimeScale::Get() { return scale_; }

void TimeScale::Set(double scale) { scale_ = std::max(scale, 0.0); }

Duration TimeScale::FromModelMillis(double model_millis) {
  const double micros = model_millis * 1000.0 * scale_;
  return Duration(static_cast<int64_t>(std::llround(std::max(micros, 0.0))));
}

double TimeScale::ToModelMillis(Duration wall) {
  if (scale_ <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(wall.count()) / 1000.0 / scale_;
}

SystemClock& SystemClock::Instance() {
  static SystemClock clock;
  return clock;
}

}  // namespace antipode
