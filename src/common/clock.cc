#include "src/common/clock.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace antipode {

double TimeScale::scale_ = 1.0;

double TimeScale::Get() { return scale_; }

void TimeScale::Set(double scale) { scale_ = std::max(scale, 0.0); }

Duration TimeScale::FromModelMillis(double model_millis) {
  const double micros = model_millis * 1000.0 * scale_;
  return Duration(static_cast<int64_t>(std::llround(std::max(micros, 0.0))));
}

double TimeScale::ToModelMillis(Duration wall) {
  if (scale_ <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(wall.count()) / 1000.0 / scale_;
}

SystemClock& SystemClock::Instance() {
  static SystemClock clock;
  return clock;
}

namespace {
std::atomic<Clock*> g_global_clock{nullptr};
}  // namespace

Clock& GlobalClock() {
  Clock* clock = g_global_clock.load(std::memory_order_acquire);
  return clock != nullptr ? *clock : SystemClock::Instance();
}

Clock* SetGlobalClock(Clock* clock) {
  return g_global_clock.exchange(clock, std::memory_order_acq_rel);
}

}  // namespace antipode
