#include "src/common/status.h"

namespace antipode {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace antipode
