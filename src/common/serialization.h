// Minimal binary serialization: little-endian fixed integers, LEB128 varints,
// and length-prefixed strings. Used for lineage wire encoding (whose size the
// paper reports) and for store payload framing.

#ifndef SRC_COMMON_SERIALIZATION_H_
#define SRC_COMMON_SERIALIZATION_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace antipode {

// Number of bytes WriteVarint emits for `v` — lets callers size wire formats
// arithmetically without materializing a serialization.
inline size_t VarintWireSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Append-style encoders for hot paths that build a wire image in one caller-
// owned buffer (often a reused thread_local scratch) instead of routing
// through a Serializer temporary. Byte-identical to the Serializer methods.
inline void AppendVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline void AppendLengthPrefixed(std::string& out, std::string_view s) {
  AppendVarint(out, s.size());
  out.append(s.data(), s.size());
}

class Serializer {
 public:
  void WriteUint8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void WriteUint32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  void WriteUint64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  // Unsigned LEB128.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      buffer_.push_back(static_cast<char>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    buffer_.push_back(static_cast<char>(v));
  }

  void WriteString(std::string_view s) {
    WriteVarint(s.size());
    buffer_.append(s.data(), s.size());
  }

  void WriteBytes(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  const std::string& data() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

class Deserializer {
 public:
  explicit Deserializer(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadUint8() {
    if (pos_ + 1 > data_.size()) {
      return TruncatedError();
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadUint32() {
    if (pos_ + 4 > data_.size()) {
      return TruncatedError();
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadUint64() {
    if (pos_ + 8 > data_.size()) {
      return TruncatedError();
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<uint64_t> ReadVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size() || shift > 63) {
        return TruncatedError();
      }
      const auto byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        return v;
      }
      shift += 7;
    }
  }

  Result<std::string> ReadString() {
    auto len = ReadVarint();
    if (!len.ok()) {
      return len.status();
    }
    if (pos_ + *len > data_.size()) {
      return TruncatedError();
    }
    std::string out(data_.substr(pos_, *len));
    pos_ += *len;
    return out;
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  static Status TruncatedError() { return Status::OutOfRange("truncated buffer"); }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace antipode

#endif  // SRC_COMMON_SERIALIZATION_H_
