// A move-only `void()` callable with inline storage — the task type of the
// timer engine's hot path. `std::function` heap-allocates any capture list
// larger than its ~16-byte small-buffer, which put two allocations on every
// replication shipment (the shipment lambda plus the drain-accounting
// wrapper). SmallFunction widens the inline buffer so every steady-state
// timer task stores inline, and falls back to the heap — it never rejects —
// for cold-path captures that genuinely exceed it.
//
// Unlike std::function it accepts move-only callables (lambdas capturing
// pooled entry handles or other SmallFunctions), which is what lets the
// store's fan-out path capture resources by move instead of shared_ptr.

#ifndef SRC_COMMON_SMALL_FUNCTION_H_
#define SRC_COMMON_SMALL_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace antipode {

template <size_t kInlineBytes>
class SmallFunction {
 public:
  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor): callable adapter
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { MoveFrom(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { Destroy(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  // True when the held callable lives in the inline buffer (tests/benches).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  void Reset() {
    Destroy();
    ops_ = nullptr;
  }

 private:
  static constexpr size_t kAlign = alignof(std::max_align_t);

  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst from src and destroys src's callable.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool inline_storage;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, true};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& Slot(void* storage) { return *std::launder(reinterpret_cast<Fn**>(storage)); }
    static void Invoke(void* storage) { (*Slot(storage))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn*(Slot(src));
      Slot(src) = nullptr;
    }
    static void Destroy(void* storage) { delete Slot(storage); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, false};
  };

  void MoveFrom(SmallFunction& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Destroy() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
    }
  }

  alignas(kAlign) unsigned char storage_[kInlineBytes < sizeof(void*) ? sizeof(void*)
                                                                      : kInlineBytes];
  const Ops* ops_ = nullptr;
};

// The timer engine's task type: 64 inline bytes cover every steady-state
// callback (the store fan-out lambda needs ~48; batched-wait deadline timers
// ~56); larger captures transparently spill to one heap block.
using TimerTask = SmallFunction<64>;

}  // namespace antipode

#endif  // SRC_COMMON_SMALL_FUNCTION_H_
