#include "src/common/hlc.h"

#include <chrono>

#include "src/common/clock.h"

namespace antipode {

uint64_t HlcClock::NowMicros() {
  // Reads the process GlobalClock (virtual time in simulation mode), so HLC
  // stamps advance deterministically under the sim scheduler. Steady and
  // process-relative: stamps only ever compare against each other, so the
  // epoch is arbitrary. Offset by one so a packed stamp is never 0 — 0 is
  // the "unknown stamp" sentinel.
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   GlobalClock().Now().time_since_epoch())
                                   .count()) +
         1;
}

uint64_t HlcClock::Tick() {
  const uint64_t physical = Pack(NowMicros(), 0);
  uint64_t last = last_.load(std::memory_order_relaxed);
  for (;;) {
    // Strictly after everything issued/observed so far, and never behind the
    // physical clock. When the physical component already leads, the logical
    // counter resets to 0; otherwise it increments (the +1 below lands in the
    // logical bits until they overflow into physical time, which at 2^16
    // stamps per microsecond is beyond this simulator's throughput).
    const uint64_t next = last >= physical ? last + 1 : physical;
    if (last_.compare_exchange_weak(last, next, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return next;
    }
  }
}

void HlcClock::Observe(uint64_t remote) {
  uint64_t last = last_.load(std::memory_order_relaxed);
  while (remote > last) {
    if (last_.compare_exchange_weak(last, remote, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

HlcClock& HlcClock::Default() {
  static HlcClock* clock = new HlcClock();
  return *clock;
}

HlcClock& HlcClock::ForGroup(int group) {
  assert(group >= 0 && group < kMaxGroups && "region-group index out of range");
  // Leaked like Default(): late timer callbacks may stamp after static
  // destruction begins.
  static HlcClock* clocks = new HlcClock[kMaxGroups];
  return clocks[group];
}

}  // namespace antipode
