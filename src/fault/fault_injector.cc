#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/common/property.h"
#include "src/obs/metrics.h"

namespace antipode {
namespace {

// Bidirectional link match: a partition of US↔EU severs both directions.
bool MatchesLinkBidirectional(const FaultRule& rule, Region from, Region to) {
  const bool forward = (!rule.from.has_value() || *rule.from == from) &&
                       (!rule.to.has_value() || *rule.to == to);
  const bool reverse = (!rule.from.has_value() || *rule.from == to) &&
                       (!rule.to.has_value() || *rule.to == from);
  return forward || reverse;
}

bool MatchesDirectional(const FaultRule& rule, Region from, Region to) {
  return (!rule.from.has_value() || *rule.from == from) &&
         (!rule.to.has_value() || *rule.to == to);
}

bool MatchesTo(const FaultRule& rule, Region to) {
  return !rule.to.has_value() || *rule.to == to;
}

// Prefix match: empty scope is a wildcard.
bool MatchesPrefix(const std::string& scope, const std::string& name) {
  return scope.empty() || name.compare(0, scope.size(), scope) == 0;
}

bool ActiveAt(const FaultRule& rule, double elapsed_model_ms) {
  return elapsed_model_ms >= rule.start_model_ms && elapsed_model_ms < rule.end_model_ms;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkPartition:
      return "link_partition";
    case FaultKind::kLinkDrop:
      return "link_drop";
    case FaultKind::kLinkDelay:
      return "link_delay";
    case FaultKind::kRpcFailure:
      return "rpc_failure";
    case FaultKind::kRpcDropResponse:
      return "rpc_drop_response";
    case FaultKind::kRpcDelay:
      return "rpc_delay";
    case FaultKind::kStoreStall:
      return "store_stall";
    case FaultKind::kStoreApplyError:
      return "store_apply_error";
    case FaultKind::kRegionOutage:
      return "region_outage";
    case FaultKind::kStoreWaitError:
      return "store_wait_error";
    case FaultKind::kQueueDropDelivery:
      return "queue_drop_delivery";
  }
  return "?";
}

FaultInjector::FaultInjector() = default;

FaultInjector& FaultInjector::Default() {
  static auto* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool had_plan = armed_plan_ != nullptr;
  armed_plan_ = std::make_unique<ArmedPlan>();
  armed_plan_->plan = std::move(plan);
  armed_plan_->armed_at = GlobalClock().Now();
  armed_plan_->rng = Rng(armed_plan_->plan.seed);
  if (!had_plan) {
    active_sources_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_plan_ != nullptr) {
    armed_plan_.reset();
    active_sources_.fetch_sub(1, std::memory_order_relaxed);
  }
}

double FaultInjector::ElapsedModelMsLocked() const {
  return TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
      GlobalClock().Now() - armed_plan_->armed_at));
}

bool FaultInjector::DrawLocked(const FaultRule& rule) {
  if (rule.probability >= 1.0) {
    return true;
  }
  if (rule.probability <= 0.0) {
    return false;
  }
  return armed_plan_->rng.NextBernoulli(rule.probability);
}

void FaultInjector::RecordInjected(FaultKind kind) {
  // Called with mu_ held (counter lookup is cached per kind; the increment
  // itself is a relaxed atomic).
  Counter*& slot = injected_counters_[static_cast<size_t>(kind)];
  if (slot == nullptr) {
    slot = MetricsRegistry::Default().GetCounter("fault.injected",
                                                 {{"kind", std::string(FaultKindName(kind))}});
  }
  slot->Increment();
  // One REACHABLE property per fault kind that ever fires: the sweep's
  // verdict then includes "every injected fault class was actually
  // exercised", not just "faults were configured".
  Property*& prop = injected_properties_[static_cast<size_t>(kind)];
  if (prop == nullptr) {
    prop = PropertyRegistry::Instance().Register(
        PropertyKind::kReachable, "fault." + std::string(FaultKindName(kind)));
  }
  prop->Observe(true);
}

LinkFault FaultInjector::OnDeliver(Region from, Region to) {
  LinkFault fault;
  if (active_sources_.load(std::memory_order_relaxed) == 0) {
    return fault;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_plan_ == nullptr) {
    return fault;
  }
  const double elapsed = ElapsedModelMsLocked();
  for (const FaultRule& rule : armed_plan_->plan.rules) {
    if (!ActiveAt(rule, elapsed)) {
      continue;
    }
    switch (rule.kind) {
      case FaultKind::kLinkPartition:
        // Network-level only when unscoped by store: a store-scoped partition
        // stalls that store's replication, not unrelated traffic.
        if (rule.store.empty() && MatchesLinkBidirectional(rule, from, to)) {
          fault.drop = true;
          RecordInjected(rule.kind);
        }
        break;
      case FaultKind::kLinkDrop:
        if (rule.store.empty() && MatchesDirectional(rule, from, to) && DrawLocked(rule)) {
          fault.drop = true;
          RecordInjected(rule.kind);
        }
        break;
      case FaultKind::kLinkDelay:
        if (rule.store.empty() && MatchesDirectional(rule, from, to)) {
          fault.delay_factor *= rule.delay_factor;
          fault.delay_add_model_ms += rule.delay_add_model_ms;
          RecordInjected(rule.kind);
        }
        break;
      default:
        break;
    }
  }
  return fault;
}

LinkFault FaultInjector::OnReplicate(const std::string& store, Region from, Region to) {
  LinkFault fault;
  if (active_sources_.load(std::memory_order_relaxed) == 0) {
    return fault;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_plan_ == nullptr) {
    return fault;
  }
  const double elapsed = ElapsedModelMsLocked();
  for (const FaultRule& rule : armed_plan_->plan.rules) {
    if (rule.kind != FaultKind::kLinkDelay || !ActiveAt(rule, elapsed)) {
      continue;
    }
    if (MatchesPrefix(rule.store, store) && MatchesDirectional(rule, from, to)) {
      fault.delay_factor *= rule.delay_factor;
      fault.delay_add_model_ms += rule.delay_add_model_ms;
      RecordInjected(rule.kind);
    }
  }
  return fault;
}

StallDecision FaultInjector::StoreStall(const std::string& store, Region from, Region to) {
  StallDecision decision;
  if (active_sources_.load(std::memory_order_relaxed) == 0) {
    return decision;
  }
  std::lock_guard<std::mutex> lock(mu_);
  bool heal_known = true;
  double heal_ms = 0.0;
  if (manual_pauses_.count({store, RegionIndex(to)}) != 0) {
    decision.stalled = true;
    heal_known = false;
  }
  if (armed_plan_ != nullptr) {
    const double elapsed = ElapsedModelMsLocked();
    for (const FaultRule& rule : armed_plan_->plan.rules) {
      bool match = false;
      switch (rule.kind) {
        case FaultKind::kStoreStall:
          match = MatchesPrefix(rule.store, store) && MatchesDirectional(rule, from, to);
          break;
        case FaultKind::kRegionOutage:
          match = MatchesPrefix(rule.store, store) && MatchesTo(rule, to);
          break;
        case FaultKind::kLinkPartition:
          match = MatchesPrefix(rule.store, store) && MatchesLinkBidirectional(rule, from, to);
          break;
        default:
          break;
      }
      if (!match || !ActiveAt(rule, elapsed)) {
        continue;
      }
      decision.stalled = true;
      RecordInjected(rule.kind);
      if (rule.end_model_ms >= FaultRule::kNoEnd) {
        heal_known = false;
      } else {
        heal_ms = std::max(heal_ms, rule.end_model_ms - elapsed);
      }
    }
  }
  if (decision.stalled && heal_known) {
    decision.heal_known = true;
    // A small epsilon past the window end so the replay's re-check sees the
    // rule expired (the store re-buffers and re-schedules on residue anyway).
    decision.heal_in = TimeScale::FromModelMillis(heal_ms + 1.0);
  }
  return decision;
}

bool FaultInjector::InjectApplyError(const std::string& store, Region to) {
  if (active_sources_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_plan_ == nullptr) {
    return false;
  }
  const double elapsed = ElapsedModelMsLocked();
  for (const FaultRule& rule : armed_plan_->plan.rules) {
    if (rule.kind != FaultKind::kStoreApplyError || !ActiveAt(rule, elapsed)) {
      continue;
    }
    if (MatchesPrefix(rule.store, store) && MatchesTo(rule, to) && DrawLocked(rule)) {
      RecordInjected(rule.kind);
      return true;
    }
  }
  return false;
}

bool FaultInjector::InjectWaitError(const std::string& store, Region region) {
  if (active_sources_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_plan_ == nullptr) {
    return false;
  }
  const double elapsed = ElapsedModelMsLocked();
  for (const FaultRule& rule : armed_plan_->plan.rules) {
    if (rule.kind != FaultKind::kStoreWaitError || !ActiveAt(rule, elapsed)) {
      continue;
    }
    if (MatchesPrefix(rule.store, store) && MatchesTo(rule, region) && DrawLocked(rule)) {
      RecordInjected(rule.kind);
      return true;
    }
  }
  return false;
}

bool FaultInjector::DropDelivery(const std::string& store, Region region) {
  if (active_sources_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_plan_ == nullptr) {
    return false;
  }
  const double elapsed = ElapsedModelMsLocked();
  for (const FaultRule& rule : armed_plan_->plan.rules) {
    if (rule.kind != FaultKind::kQueueDropDelivery || !ActiveAt(rule, elapsed)) {
      continue;
    }
    if (MatchesPrefix(rule.store, store) && MatchesTo(rule, region) && DrawLocked(rule)) {
      RecordInjected(rule.kind);
      return true;
    }
  }
  return false;
}

RpcFault FaultInjector::OnRpc(const std::string& service) {
  RpcFault fault;
  if (active_sources_.load(std::memory_order_relaxed) == 0) {
    return fault;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_plan_ == nullptr) {
    return fault;
  }
  const double elapsed = ElapsedModelMsLocked();
  for (const FaultRule& rule : armed_plan_->plan.rules) {
    if (!ActiveAt(rule, elapsed) || !MatchesPrefix(rule.service, service)) {
      continue;
    }
    switch (rule.kind) {
      case FaultKind::kRpcFailure:
        if (DrawLocked(rule)) {
          fault.fail_handler = true;
          RecordInjected(rule.kind);
        }
        break;
      case FaultKind::kRpcDropResponse:
        if (DrawLocked(rule)) {
          fault.drop_response = true;
          RecordInjected(rule.kind);
        }
        break;
      case FaultKind::kRpcDelay:
        fault.delay_add_model_ms += rule.delay_add_model_ms;
        RecordInjected(rule.kind);
        break;
      default:
        break;
    }
  }
  return fault;
}

void FaultInjector::PauseStore(const std::string& store, Region region) {
  std::lock_guard<std::mutex> lock(mu_);
  if (manual_pauses_.insert({store, RegionIndex(region)}).second) {
    active_sources_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::ResumeStore(const std::string& store, Region region) {
  std::vector<std::function<void(Region)>> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (manual_pauses_.erase({store, RegionIndex(region)}) != 0) {
      active_sources_.fetch_sub(1, std::memory_order_relaxed);
    }
    for (const auto& listener : resume_listeners_) {
      if (listener.store == store) {
        listeners.push_back(listener.fn);
      }
    }
  }
  // Outside mu_: the listener replays the store's backlog, and every re-apply
  // consults StoreStall, which takes mu_. Notified unconditionally (even when
  // no manual pause was registered) so a resume also flushes backlog buffered
  // under a since-disarmed plan; a replay with nothing buffered is a no-op.
  for (const auto& fn : listeners) {
    fn(region);
  }
}

uint64_t FaultInjector::AddStoreResumeListener(std::string store,
                                               std::function<void(Region)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = ++next_listener_id_;
  resume_listeners_.push_back({id, std::move(store), std::move(listener)});
  return id;
}

void FaultInjector::RemoveStoreResumeListener(uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = resume_listeners_.begin(); it != resume_listeners_.end(); ++it) {
    if (it->id == id) {
      resume_listeners_.erase(it);
      return;
    }
  }
}

bool FaultInjector::IsStorePaused(const std::string& store, Region region) const {
  if (active_sources_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return manual_pauses_.count({store, RegionIndex(region)}) != 0;
}

}  // namespace antipode
