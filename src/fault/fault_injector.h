// Process-wide, deterministically-seeded fault injection.
//
// A `FaultPlan` is a declarative schedule of faults ("partition US↔EU links
// of store X from t=2s to t=5s", "drop 5% of RPC responses to service Y",
// "crash region EU's replica of store Z and replay the backlog on heal",
// "3× latency spike on link A→B"). `FaultInjector::Arm` starts the plan's
// clock; from then on the substrate layers consult the injector at their
// injection points:
//
//   * `SimulatedNetwork::Deliver`       → `OnDeliver`   (drop / partition / jitter)
//   * `ReplicatedStore::Put`            → `OnReplicate` (replication latency spike)
//   * `ReplicatedStore::ApplyAt`        → `StoreStall`, `InjectApplyError`
//   * `ReplicatedStore::WaitVisible*`   → `InjectWaitError`
//   * `QueueStore`/`PubSubStore` apply  → `DropDelivery` (ack-timeout redelivery)
//   * `RpcClient::Call`                 → `OnRpc` (handler failure, lost
//                                         response, induced deadline overrun)
//
// Determinism: fault windows are evaluated against *model time elapsed since
// Arm* (scaled wall clock, no wall-clock randomness), and every probabilistic
// decision draws from one seeded Rng, so a schedule is reproducible for a
// given seed and TimeScale. Partition/stall/outage rules are deterministic
// within their window; probabilistic rules (drop, apply-error, …) are
// seed-stable in distribution.
//
// Fault delivery semantics (see DESIGN.md §10):
//   * Link partitions/stalls never lose replication writes — shipments that
//     arrive at a partitioned replica are buffered by the store and replayed
//     in arrival order on heal (the crash-and-restart model).
//   * `kLinkDrop`/`kLinkPartition` drop fire-and-forget network messages
//     (RPC casts); blocking RPC loss is modelled at the RPC layer
//     (`kRpcDropResponse` + per-call deadline), where the caller can cope.
//   * Injected wait errors surface as retryable `Unavailable`, never hangs.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/net/region.h"

namespace antipode {
class Property;
}

namespace antipode {

class Counter;

enum class FaultKind : uint8_t {
  // Network links (SimulatedNetwork messages; store replication stalls too —
  // a partitioned replication link buffers instead of losing writes).
  kLinkPartition = 0,  // drop every message on the matched link(s), both ways
  kLinkDrop,           // drop each message with `probability`
  kLinkDelay,          // scale/add latency on the matched link(s)
  // RPC layer.
  kRpcFailure,         // handler outcome replaced with Unavailable
  kRpcDropResponse,    // handler runs, response is lost (caller times out)
  kRpcDelay,           // extra response delay (induces deadline overruns)
  // Replicated stores.
  kStoreStall,         // buffer inbound applies on the matched ⟨from,to⟩ flow
  kStoreApplyError,    // transient apply failure; the shipment retries
  kRegionOutage,       // region down: all inbound applies buffer, heal replays
  kStoreWaitError,     // visibility waits fail Unavailable (retryable)
  // Brokers.
  kQueueDropDelivery,  // consumer delivery lost; redelivered after ack timeout
};

inline constexpr int kNumFaultKinds = static_cast<int>(FaultKind::kQueueDropDelivery) + 1;

std::string_view FaultKindName(FaultKind kind);

// One schedule entry. Empty/unset matchers are wildcards; `store` and
// `service` match by *prefix* (deployments suffix store names with a run
// counter, so plans scope by the stable prefix, e.g. "Redis-post-").
struct FaultRule {
  FaultKind kind = FaultKind::kLinkPartition;
  std::string store;                 // store-scoped faults; empty = any store
  std::string service;               // rpc faults; empty = any service
  std::optional<Region> from;        // link source / write origin
  std::optional<Region> to;          // link destination / replica region
  // Active window in model milliseconds relative to Arm(). The default window
  // is [0, ∞): armed until Disarm.
  double start_model_ms = 0.0;
  double end_model_ms = kNoEnd;
  // Per-decision probability for probabilistic kinds (drop, apply error,
  // wait error, rpc failure/drop). Ignored by deterministic kinds.
  double probability = 1.0;
  // Latency shaping for kLinkDelay / kRpcDelay (and kLinkDelay applied to
  // replication shipping): effective = sampled * factor + add.
  double delay_factor = 1.0;
  double delay_add_model_ms = 0.0;

  static constexpr double kNoEnd = 1e300;
};

struct FaultPlan {
  std::string name = "plan";
  uint64_t seed = 1;
  std::vector<FaultRule> rules;
};

// Decision results -----------------------------------------------------------

struct LinkFault {
  bool drop = false;
  double delay_factor = 1.0;
  double delay_add_model_ms = 0.0;
};

struct RpcFault {
  bool fail_handler = false;
  bool drop_response = false;
  double delay_add_model_ms = 0.0;
};

struct StallDecision {
  bool stalled = false;
  // True when every rule stalling this flow has a finite window: the stall
  // heals (absent new faults) `heal_in` from now, and the store schedules a
  // backlog replay for that moment. Manual pauses heal only via Resume.
  bool heal_known = false;
  Duration heal_in = Duration::zero();
};

class FaultInjector {
 public:
  FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // The process-wide injector every substrate layer consults by default.
  // Benches/tests that model private deployments construct their own and pass
  // it through the layer options.
  static FaultInjector& Default();

  // Starts `plan`'s clock (windows are relative to now). Replaces any
  // previously armed plan; manual pauses are unaffected.
  void Arm(FaultPlan plan);
  // Drops the armed plan. Stalled backlogs replay on the stores' next heal
  // check (a store that buffered under a finite window already scheduled
  // one; manual pauses still require Resume).
  void Disarm();
  bool armed() const { return active_sources_.load(std::memory_order_relaxed) != 0; }

  // --- decision points (hot paths: one relaxed load when nothing is armed) --
  LinkFault OnDeliver(Region from, Region to);
  LinkFault OnReplicate(const std::string& store, Region from, Region to);
  StallDecision StoreStall(const std::string& store, Region from, Region to);
  bool InjectApplyError(const std::string& store, Region to);
  bool InjectWaitError(const std::string& store, Region region);
  bool DropDelivery(const std::string& store, Region region);
  RpcFault OnRpc(const std::string& service);

  // --- manual stalls ---------------------------------------------------------
  // Keyed by exact store name + region. Pause state lives here; backlog
  // buffering and replay live in the store, which consults
  // StoreStall/IsStorePaused and registers a resume listener so ResumeStore
  // triggers its backlog replay.
  void PauseStore(const std::string& store, Region region);
  void ResumeStore(const std::string& store, Region region);
  bool IsStorePaused(const std::string& store, Region region) const;

  // Registers a callback invoked (outside the injector lock, on the resuming
  // thread) whenever ResumeStore runs for `store`. Returns a ticket for
  // RemoveStoreResumeListener; removing ticket 0 is a no-op.
  uint64_t AddStoreResumeListener(std::string store, std::function<void(Region)> listener);
  void RemoveStoreResumeListener(uint64_t id);

 private:
  struct ArmedPlan {
    FaultPlan plan;
    TimePoint armed_at{};
    Rng rng{1};
  };

  // Model milliseconds since Arm. Caller holds mu_.
  double ElapsedModelMsLocked() const;
  bool DrawLocked(const FaultRule& rule);
  void RecordInjected(FaultKind kind);

  struct ResumeListener {
    uint64_t id = 0;
    std::string store;
    std::function<void(Region)> fn;
  };

  mutable std::mutex mu_;
  std::unique_ptr<ArmedPlan> armed_plan_;                 // guarded by mu_
  std::set<std::pair<std::string, int>> manual_pauses_;   // guarded by mu_
  std::vector<ResumeListener> resume_listeners_;          // guarded by mu_
  uint64_t next_listener_id_ = 0;                         // guarded by mu_

  // (plan armed ? 1 : 0) + number of manual pauses; decision fast path.
  std::atomic<int> active_sources_{0};

  // fault.injected{kind=...} counters, fetched lazily (guarded by mu_).
  std::array<Counter*, kNumFaultKinds> injected_counters_{};
  // "fault.<kind>" REACHABLE properties (property.h), registered lazily the
  // first time a kind actually fires, so a seed sweep can assert its plans
  // exercised every fault class it injected (guarded by mu_).
  std::array<Property*, kNumFaultKinds> injected_properties_{};
};

}  // namespace antipode

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
