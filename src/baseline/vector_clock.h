// Vector clocks — the classical mechanism for tracking potential causality
// (§3.2, §5.1). Included as the comparison baseline for the dependency-
// tracking ablation: one entry per process/service, merged on every
// interaction, never truncated.

#ifndef SRC_BASELINE_VECTOR_CLOCK_H_
#define SRC_BASELINE_VECTOR_CLOCK_H_

#include <cstdint>
#include <map>
#include <string>

namespace antipode {

class VectorClock {
 public:
  void Increment(uint32_t process) { entries_[process]++; }

  uint64_t Get(uint32_t process) const {
    auto it = entries_.find(process);
    return it == entries_.end() ? 0 : it->second;
  }

  // Component-wise maximum.
  void Merge(const VectorClock& other);

  // True when every component of this clock is <= other's and at least one
  // is strictly smaller.
  bool HappensBefore(const VectorClock& other) const;
  bool Concurrent(const VectorClock& other) const {
    return !HappensBefore(other) && !other.HappensBefore(*this) && !(*this == other);
  }

  bool operator==(const VectorClock& other) const { return entries_ == other.entries_; }

  size_t NumEntries() const { return entries_.size(); }
  // Wire size: one varint pair per entry, same encoding budget as lineages.
  size_t WireSize() const;

  std::string Serialize() const;
  static VectorClock Deserialize(std::string_view data);

 private:
  std::map<uint32_t, uint64_t> entries_;
};

}  // namespace antipode

#endif  // SRC_BASELINE_VECTOR_CLOCK_H_
