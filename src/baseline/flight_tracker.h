// FlightTracker-style baseline (paper §8, [59]): read-your-writes enforced
// through a logically centralized ticket metadata service. Every write by a
// user session registers with the metadata service (a WAN round trip when
// the user is not co-located with it); every read first fetches the
// session's ticket and then waits for the ticketed writes to be visible
// locally.
//
// Contrast with Antipode: tickets hang off *user sessions* and every
// operation talks to the central service, whereas Antipode's lineages hang
// off requests and piggyback on existing propagation with no extra round
// trips. The `ablation_flighttracker` bench quantifies the difference.

#ifndef SRC_BASELINE_FLIGHT_TRACKER_H_
#define SRC_BASELINE_FLIGHT_TRACKER_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/antipode/shim.h"
#include "src/antipode/write_id.h"
#include "src/net/network.h"

namespace antipode {

// The centralized metadata service. Lives in one home region; callers from
// other regions pay the WAN round trip on every interaction.
class TicketService {
 public:
  explicit TicketService(Region home_region,
                         SimulatedNetwork* network = &SimulatedNetwork::Default())
      : home_region_(home_region), network_(network) {}

  // Appends a write to the session's ticket (one round trip from `caller`).
  void RecordWrite(Region caller, const std::string& session, WriteId id);

  // Fetches the session's ticket (one round trip from `caller`).
  std::vector<WriteId> GetTicket(Region caller, const std::string& session);

  // Drops a session's ticket (e.g. on logout).
  void ClearSession(const std::string& session);

  uint64_t rpc_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rpc_count_;
  }
  Region home_region() const { return home_region_; }

 private:
  Region home_region_;
  SimulatedNetwork* network_;
  mutable std::mutex mu_;
  std::map<std::string, std::set<WriteId>> tickets_;
  uint64_t rpc_count_ = 0;
};

// Session-scoped read-your-writes on top of shimmed datastores: reads wait
// for every ticketed write (of any store in `registry`) to be visible at the
// reader's region before proceeding.
class FlightTrackerClient {
 public:
  FlightTrackerClient(TicketService* tickets, ShimRegistry* registry)
      : tickets_(tickets), registry_(registry) {}

  // Registers a completed write with the session's ticket.
  void OnWrite(Region caller, const std::string& session, const WriteId& id) {
    tickets_->RecordWrite(caller, session, id);
  }

  // RYW gate: fetches the ticket and blocks until all ticketed writes are
  // visible at `region`. Call before any session read.
  Status BeforeRead(Region region, const std::string& session,
                    Duration timeout = Duration::max());

 private:
  TicketService* tickets_;
  ShimRegistry* registry_;
};

}  // namespace antipode

#endif  // SRC_BASELINE_FLIGHT_TRACKER_H_
