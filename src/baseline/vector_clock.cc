#include "src/baseline/vector_clock.h"

#include "src/common/serialization.h"

namespace antipode {

void VectorClock::Merge(const VectorClock& other) {
  for (const auto& [process, counter] : other.entries_) {
    auto& mine = entries_[process];
    mine = std::max(mine, counter);
  }
}

bool VectorClock::HappensBefore(const VectorClock& other) const {
  // a → b  iff  ∀p: a[p] <= b[p]  and  a != b.
  for (const auto& [process, counter] : entries_) {
    if (counter > other.Get(process)) {
      return false;
    }
  }
  return !(*this == other);
}

size_t VectorClock::WireSize() const { return Serialize().size(); }

std::string VectorClock::Serialize() const {
  Serializer s;
  s.WriteVarint(entries_.size());
  for (const auto& [process, counter] : entries_) {
    s.WriteVarint(process);
    s.WriteVarint(counter);
  }
  return s.Release();
}

VectorClock VectorClock::Deserialize(std::string_view data) {
  VectorClock clock;
  Deserializer d(data);
  auto count = d.ReadVarint();
  if (!count.ok()) {
    return clock;
  }
  for (uint64_t i = 0; i < *count; ++i) {
    auto process = d.ReadVarint();
    auto counter = d.ReadVarint();
    if (!process.ok() || !counter.ok()) {
      break;
    }
    clock.entries_[static_cast<uint32_t>(*process)] = *counter;
  }
  return clock;
}

}  // namespace antipode
