#include "src/baseline/flight_tracker.h"

namespace antipode {
namespace {

// Approximate wire footprint of a ticket interaction.
constexpr size_t kTicketRpcBytes = 64;

}  // namespace

void TicketService::RecordWrite(Region caller, const std::string& session, WriteId id) {
  network_->SleepRtt(caller, home_region_, kTicketRpcBytes, kTicketRpcBytes);
  std::lock_guard<std::mutex> lock(mu_);
  tickets_[session].insert(std::move(id));
  rpc_count_++;
}

std::vector<WriteId> TicketService::GetTicket(Region caller, const std::string& session) {
  network_->SleepRtt(caller, home_region_, kTicketRpcBytes, kTicketRpcBytes);
  std::lock_guard<std::mutex> lock(mu_);
  rpc_count_++;
  auto it = tickets_.find(session);
  if (it == tickets_.end()) {
    return {};
  }
  return std::vector<WriteId>(it->second.begin(), it->second.end());
}

void TicketService::ClearSession(const std::string& session) {
  std::lock_guard<std::mutex> lock(mu_);
  tickets_.erase(session);
}

Status FlightTrackerClient::BeforeRead(Region region, const std::string& session,
                                       Duration timeout) {
  const TimePoint deadline = timeout == Duration::max()
                                 ? TimePoint::max()
                                 : GlobalClock().Now() + timeout;
  for (const auto& id : tickets_->GetTicket(region, session)) {
    Shim* shim = registry_->Lookup(id.store);
    if (shim == nullptr) {
      continue;  // FlightTracker also skips stores it does not front
    }
    Duration remaining = Duration::max();
    if (deadline != TimePoint::max()) {
      const TimePoint now = GlobalClock().Now();
      if (now >= deadline) {
        return Status::DeadlineExceeded("flight-tracker ticket wait: " + id.ToString());
      }
      remaining = std::chrono::duration_cast<Duration>(deadline - now);
    }
    Status status = shim->Wait(region, id, remaining);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

}  // namespace antipode
