// Potential-causality dependency tracking: the no-truncation alternative
// Antipode's lineage design is measured against (ablation B). Every write is
// remembered forever; reading anything folds the writer's *entire* history
// into the reader. Across chained requests the dependency set grows without
// bound — the "explosion of the dependency graph" §5.1 warns about.

#ifndef SRC_BASELINE_POTENTIAL_TRACKER_H_
#define SRC_BASELINE_POTENTIAL_TRACKER_H_

#include <set>
#include <string>

#include "src/antipode/lineage.h"
#include "src/antipode/write_id.h"

namespace antipode {

class PotentialCausalityTracker {
 public:
  // Records a write performed by this execution.
  void OnWrite(WriteId id) { deps_.insert(std::move(id)); }

  // Records a read of data written under `writer_history`: the full
  // transitive history becomes part of this execution's dependencies.
  void OnReadFrom(const PotentialCausalityTracker& writer_history) {
    deps_.insert(writer_history.deps_.begin(), writer_history.deps_.end());
  }

  size_t NumDeps() const { return deps_.size(); }
  const std::set<WriteId>& deps() const { return deps_; }

  // Same wire encoding as a lineage, for apples-to-apples size comparison.
  size_t WireSize() const {
    Lineage as_lineage;
    for (const auto& dep : deps_) {
      as_lineage.Append(dep);
    }
    return as_lineage.WireSize();
  }

 private:
  std::set<WriteId> deps_;
};

}  // namespace antipode

#endif  // SRC_BASELINE_POTENTIAL_TRACKER_H_
