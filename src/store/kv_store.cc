#include "src/store/kv_store.h"

#include <cstdlib>

namespace antipode {

uint64_t KvStore::SetWithTtl(Region region, const std::string& key, std::string value,
                             double ttl_model_millis) {
  const uint64_t version = Set(region, key, std::move(value));
  // Expiry rides the store's injected timer service (not the process-wide
  // one), so deployments built around a private TimerService shut down clean.
  timers()->ScheduleAfter(
      TimeScale::FromModelMillis(ttl_model_millis), [this, alive = alive_, region, key] {
        std::lock_guard<std::mutex> lock(alive->mu);
        if (!alive->alive) {
          return;
        }
        // Expiry is itself a (tombstone) write that replicates like any other.
        Del(region, key);
      });
  return version;
}

int64_t KvStore::Increment(Region region, const std::string& key, int64_t delta) {
  std::lock_guard<std::mutex> lock(CounterMutex(key));
  int64_t current = 0;
  auto existing = GetValue(region, key);
  if (existing.has_value()) {
    char* end = nullptr;
    current = std::strtoll(existing->c_str(), &end, 10);
    if (end == existing->c_str()) {
      current = 0;
    }
  }
  current += delta;
  Set(region, key, std::to_string(current));
  return current;
}

std::vector<std::optional<std::string>> KvStore::MGet(
    Region region, const std::vector<std::string>& keys) const {
  std::vector<std::optional<std::string>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) {
    out.push_back(GetValue(region, key));
  }
  return out;
}

ReplicatedStoreOptions KvStore::DefaultOptions(std::string name, std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  options.replication.median_millis = 450.0;
  options.replication.sigma = 0.6;
  options.replication.payload_millis_per_mib = 20.0;
  return options;
}

}  // namespace antipode
