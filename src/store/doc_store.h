// MongoDB-like document store: collections of documents addressed by `_id`,
// with oplog-style replication whose lag compounds with network distance
// (the paper attributes DeathStarBench's US→SG violation rate to MongoDB's
// replication suffering under WAN latency, §7.3 [52]).

#ifndef SRC_STORE_DOC_STORE_H_
#define SRC_STORE_DOC_STORE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/store/replicated_store.h"
#include "src/store/value.h"

namespace antipode {

class DocStore : public ReplicatedStore {
 public:
  static ReplicatedStoreOptions DefaultOptions(std::string name, std::vector<Region> regions);

  explicit DocStore(ReplicatedStoreOptions options,
                    RegionTopology* topology = &RegionTopology::Default(),
                    TimerService* timers = &TimerService::Shared())
      : ReplicatedStore(std::move(options), topology, timers) {}

  // Inserts or replaces the document with the given id. Returns the version.
  uint64_t InsertDoc(Region region, const std::string& collection, const std::string& id,
                     const Document& doc) {
    return Put(region, DocKey(collection, id), doc.Serialize());
  }

  std::optional<Document> FindById(Region region, const std::string& collection,
                                   const std::string& id) const {
    auto entry = Get(region, DocKey(collection, id));
    if (!entry.has_value() || entry->bytes.empty()) {
      return std::nullopt;
    }
    auto doc = Document::Deserialize(entry->bytes);
    if (!doc.ok()) {
      return std::nullopt;
    }
    return std::move(*doc);
  }

  // Scan of one collection with a field-equality filter.
  std::vector<Document> FindWhere(Region region, const std::string& collection,
                                  const std::string& field, const Value& value) const;

  // Read-modify-write of a single field ($set-style update) against the
  // region's replica. Fails when the document is absent there.
  Result<uint64_t> UpdateField(Region region, const std::string& collection,
                               const std::string& id, const std::string& field,
                               const Value& value);

  // Tombstones the document (the deletion replicates like a write).
  uint64_t DeleteDoc(Region region, const std::string& collection, const std::string& id) {
    return Put(region, DocKey(collection, id), std::string());
  }

  // Number of live documents in a collection at the region's replica.
  size_t CountCollection(Region region, const std::string& collection) const;

  static std::string DocKey(const std::string& collection, const std::string& id) {
    return collection + "/" + id;
  }
};

}  // namespace antipode

#endif  // SRC_STORE_DOC_STORE_H_
