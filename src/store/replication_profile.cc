#include "src/store/replication_profile.h"

namespace antipode {

ReplicationProfile::ReplicationProfile(ReplicationProfileOptions options,
                                       RegionTopology* topology)
    : options_(options), topology_(topology), rng_(options.seed) {}

double ReplicationProfile::SampleMillis(Region origin, Region destination,
                                        size_t payload_bytes) {
  double shipping = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.slow_mode_probability > 0.0 &&
        rng_.NextBernoulli(options_.slow_mode_probability)) {
      shipping = rng_.NextLognormal(options_.slow_mode_median_millis, options_.slow_mode_sigma);
    } else {
      shipping = rng_.NextLognormal(options_.median_millis, options_.sigma);
    }
  }
  const double wan =
      options_.network_delay_multiplier * topology_->SampleOneWayMillis(origin, destination);
  const double payload = options_.payload_millis_per_mib *
                         static_cast<double>(payload_bytes) / (1024.0 * 1024.0);
  return shipping + wan + payload;
}

}  // namespace antipode
