// SNS-like publish-subscribe: topics with fan-out to every subscriber in
// every region. Unlike QueueStore's one-consumer-per-region queues, a topic
// delivers each message to all of its subscribers; delivery to a region
// happens when the message replicates there.

#ifndef SRC_STORE_PUBSUB_STORE_H_
#define SRC_STORE_PUBSUB_STORE_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/store/queue_store.h"
#include "src/store/replicated_store.h"

namespace antipode {

class PubSubStore : public ReplicatedStore {
 public:
  static ReplicatedStoreOptions DefaultOptions(std::string name, std::vector<Region> regions);

  PubSubStore(ReplicatedStoreOptions options,
              RegionTopology* topology = &RegionTopology::Default(),
              TimerService* timers = &TimerService::Shared());

  // Drain while the subscriber map is still alive (the apply hook uses it).
  ~PubSubStore() override { DrainReplication(); }

  // Adds a subscriber for (region, topic); multiple subscribers per region
  // all receive every message.
  void Subscribe(Region region, const std::string& topic, ThreadPool* executor,
                 MessageHandler handler);

  uint64_t Publish(Region origin, const std::string& topic, std::string payload) {
    return PublishWithKey(origin, topic, std::move(payload)).version;
  }

  struct PublishResult {
    std::string key;
    uint64_t version;
  };
  PublishResult PublishWithKey(Region origin, const std::string& topic, std::string payload);

 private:
  void OnApply(Region region, const StoredEntry& entry);

  std::atomic<uint64_t> next_sequence_{1};
  mutable std::mutex subscribers_mu_;
  std::map<std::pair<int, std::string>,
           std::vector<std::pair<ThreadPool*, MessageHandler>>>
      subscribers_;
};

}  // namespace antipode

#endif  // SRC_STORE_PUBSUB_STORE_H_
