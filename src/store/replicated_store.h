// The geo-replication engine every concrete datastore builds on.
//
// A `ReplicatedStore` keeps one `ReplicaTable` per region. A write lands
// synchronously at its origin region and is shipped asynchronously to every
// other replica: the visibility delay is sampled from the store's
// `ReplicationProfile` and the apply is scheduled on the shared TimerService.
// Versions are monotonically increasing per key (the versioned key-object
// model the paper assumes, §6.1), so "is ⟨key, version⟩ visible at region r"
// is a single watermark comparison and `WaitVisible` is a condvar wait —
// exactly what a shim's `wait` needs.

#ifndef SRC_STORE_REPLICATED_STORE_H_
#define SRC_STORE_REPLICATED_STORE_H_

#include <array>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/timer_service.h"
#include "src/net/region.h"
#include "src/store/replication_profile.h"
#include "src/store/store_metrics.h"

namespace antipode {

struct StoredEntry {
  std::string key;
  std::string bytes;
  uint64_t version = 0;
  Region origin = Region::kLocal;
  TimePoint write_time{};  // when the write hit the origin
};

// One region's copy of the data. Thread-safe.
class ReplicaTable {
 public:
  // Applies an entry if it is newer than what the replica holds.
  void Apply(const StoredEntry& entry);

  std::optional<StoredEntry> Get(const std::string& key) const;

  // Highest version of `key` applied here (0 when absent).
  uint64_t VersionOf(const std::string& key) const;

  // Blocks until VersionOf(key) >= version or the deadline passes.
  Status WaitVersion(const std::string& key, uint64_t version, TimePoint deadline) const;

  // All entries whose key starts with `prefix` (used by SQL scans).
  std::vector<StoredEntry> ScanPrefix(const std::string& prefix) const;

  size_t Size() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, StoredEntry> entries_;
};

struct ReplicatedStoreOptions {
  std::string name;
  std::vector<Region> regions = {Region::kUs, Region::kEu};
  ReplicationProfileOptions replication;
  // Fixed per-write schema overhead (bytes) added to metrics, e.g. secondary
  // index entries. Configured by shims that alter the data model.
  size_t per_write_overhead_bytes = 0;
};

class ReplicatedStore {
 public:
  ReplicatedStore(ReplicatedStoreOptions options,
                  RegionTopology* topology = &RegionTopology::Default(),
                  TimerService* timers = &TimerService::Shared());
  virtual ~ReplicatedStore();

  ReplicatedStore(const ReplicatedStore&) = delete;
  ReplicatedStore& operator=(const ReplicatedStore&) = delete;

  // Drains outstanding replication (see DrainReplication).
  // Subclass destructors must also drain before destroying their own state.

  // Writes at `origin`; applies locally right away, ships to peers
  // asynchronously. Returns the (per-key monotonic) version.
  // `extra_overhead_bytes` lets typed layers report write amplification that
  // varies per operation (e.g. secondary-index entries on some tables).
  uint64_t Put(Region origin, const std::string& key, std::string bytes,
               size_t extra_overhead_bytes = 0);

  // Local read from the region's replica. Eventually consistent.
  std::optional<StoredEntry> Get(Region region, const std::string& key) const;

  // Strongly consistent read: fetches the authoritative latest copy,
  // paying a WAN round trip from `caller` to the key's origin region.
  std::optional<StoredEntry> StrongGet(Region caller, const std::string& key) const;

  bool IsVisible(Region region, const std::string& key, uint64_t version) const;

  // Blocks until ⟨key, version⟩ (or something newer) is visible at `region`.
  Status WaitVisible(Region region, const std::string& key, uint64_t version,
                     Duration timeout = Duration::max()) const;

  const std::string& name() const { return options_.name; }
  const std::vector<Region>& regions() const { return options_.regions; }
  StoreMetrics& metrics() { return metrics_; }
  const StoreMetrics& metrics() const { return metrics_; }
  size_t per_write_overhead_bytes() const { return options_.per_write_overhead_bytes; }
  void set_per_write_overhead_bytes(size_t bytes) { options_.per_write_overhead_bytes = bytes; }

  // Hook invoked (on the timer thread) every time an entry becomes visible at
  // a region — including the synchronous local apply. Queue/pub-sub layers
  // use it to trigger delivery. Set before concurrent use.
  using ApplyHook = std::function<void(Region, const StoredEntry&)>;
  void SetApplyHook(ApplyHook hook) { apply_hook_ = std::move(hook); }

  // Blocks until every scheduled replication apply has fired. Call before
  // tearing down a deployment: pending timer callbacks reference this store.
  // The destructor drains too, but subclasses with apply hooks must drain
  // while their members are still alive (their destructors call this first).
  void DrainReplication() const;

  // --- Failure injection -------------------------------------------------
  // Stalls inbound replication at `region`: due entries are buffered instead
  // of applied, emulating a partitioned or lagging replica. `barrier` calls
  // targeting the region block until ResumeReplication. Local writes and
  // reads at the region continue to work.
  void PauseReplication(Region region);
  // Applies everything buffered during the stall and resumes normal flow.
  void ResumeReplication(Region region);
  bool IsReplicationPaused(Region region) const;

 protected:
  const ReplicaTable& replica(Region region) const;
  ReplicaTable& replica(Region region);
  bool HasRegion(Region region) const;

 private:
  uint64_t NextVersion(const std::string& key);

  ReplicatedStoreOptions options_;
  RegionTopology* topology_;
  TimerService* timers_;
  ReplicationProfile profile_;
  StoreMetrics metrics_;
  ApplyHook apply_hook_;

  mutable std::mutex version_mu_;
  std::map<std::string, uint64_t> versions_;

  mutable std::mutex inflight_mu_;
  mutable std::condition_variable inflight_cv_;
  size_t inflight_applies_ = 0;

  // Applies the entry at `region` (or buffers it while the region's inbound
  // replication is paused), then fires the apply hook.
  void ApplyAt(Region region, const StoredEntry& entry);

  mutable std::mutex pause_mu_;
  std::array<bool, kNumRegions> paused_{};
  std::array<std::vector<StoredEntry>, kNumRegions> stalled_;

  // Authoritative latest copy of every key, updated synchronously at Put.
  ReplicaTable authority_;

  std::vector<std::unique_ptr<ReplicaTable>> replicas_;  // indexed by RegionIndex
};

}  // namespace antipode

#endif  // SRC_STORE_REPLICATED_STORE_H_
