// The geo-replication engine every concrete datastore builds on.
//
// A `ReplicatedStore` keeps one `ReplicaTable` per region. A write lands
// synchronously at its origin region and is shipped asynchronously to every
// other replica: the visibility delay is sampled from the store's
// `ReplicationProfile` and the apply is scheduled on the timer engine with a
// per-⟨store, key, destination⟩ affinity token, so same-key applies at one
// region execute serially and in order while everything else parallelizes.
// Shipments are zero-copy: `Put` allocates the `StoredEntry` once as a
// `shared_ptr<const StoredEntry>` aliased by every destination's callback
// (the replica tables copy what they keep), and the entry lives until the
// last shipment referencing it has applied — callbacks never reach into the
// store for it, so entry lifetime never races store internals.
// Versions are monotonically increasing per key (the versioned key-object
// model the paper assumes, §6.1), so "is ⟨key, version⟩ visible at region r"
// is a single watermark comparison.
//
// Waiting is event-driven and per-key: each `ReplicaTable` is lock-striped
// into shards, and every shard keeps a registry of waiters keyed by the key
// they are blocked on. An apply wakes exactly the waiters of the key that
// changed — never the whole table — and `WaitVisibleAsync` lets a barrier
// fan waits out across many stores without parking a thread per dependency.

#ifndef SRC_STORE_REPLICATED_STORE_H_
#define SRC_STORE_REPLICATED_STORE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/antipode/visibility_cache.h"
#include "src/common/clock.h"
#include "src/common/object_pool.h"
#include "src/common/status.h"
#include "src/common/timer_service.h"
#include "src/fault/fault_injector.h"
#include "src/net/region.h"
#include "src/store/replication_profile.h"
#include "src/store/store_metrics.h"

namespace antipode {

class HlcClock;

struct StoredEntry {
  std::string key;
  std::string bytes;
  uint64_t version = 0;
  Region origin = Region::kLocal;
  TimePoint write_time{};  // when the write hit the origin
  // Span context of the originating Put (0 when the write was not traced);
  // replication shipments carry it so every remote apply is recorded as a
  // child of the write's span, in the write's trace.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  // Per-store write sequence number (1-based, dense): stamped by Put,
  // independent of the per-key version. Drives the visibility cache's
  // per-region apply low-watermark.
  uint64_t seq = 0;
  // Hybrid-logical-clock stamp drawn from the process-wide HlcClock in the
  // same critical section that assigns `seq`, so stamps are monotone in seq —
  // the invariant the stabilization frontier rests on. Trailing fields on
  // purpose: existing aggregate initializers keep their meaning and default
  // seq/hlc to 0.
  uint64_t hlc = 0;
};

// A pooled StoredEntry plus its intrusive refcount. Blocks live in a
// process-lifetime slab pool (EntryBlockPool) and are recycled with their
// string capacities intact, so a steady-state Put fills a warm block without
// touching the heap — this replaces the per-Put make_shared<StoredEntry>
// (entry + control block, two allocations) of the old shipping path.
struct EntryBlock {
  StoredEntry entry;
  std::atomic<uint32_t> refs{0};
};

// The shared slab pool every store draws entry blocks from. Intentionally
// process-lifetime (never destroyed, like TimerService::Shared): a shipment
// callback dropped un-run at timer teardown releases its block *after* the
// owning store is gone, which would be a use-after-free against a per-store
// pool but is always safe against this one.
ObjectPool<EntryBlock>& EntryBlockPool();

// An 8-byte refcounted handle to a pooled entry — the thing shipment lambdas
// capture instead of a shared_ptr<const StoredEntry>. Copying bumps the
// intrusive count; the last Reset()/destructor returns the block (strings and
// all) to EntryBlockPool for reuse.
class EntryHandle {
 public:
  EntryHandle() = default;
  // Wraps a block whose initial reference is already counted in `refs`.
  static EntryHandle Adopt(EntryBlock* block) { return EntryHandle(block); }

  EntryHandle(const EntryHandle& other) : block_(other.block_) { AddRef(); }
  EntryHandle& operator=(const EntryHandle& other) {
    if (this != &other) {
      Reset();
      block_ = other.block_;
      AddRef();
    }
    return *this;
  }
  EntryHandle(EntryHandle&& other) noexcept : block_(other.block_) { other.block_ = nullptr; }
  EntryHandle& operator=(EntryHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~EntryHandle() { Reset(); }

  // Drops this reference; the last one recycles the block. Shipment callbacks
  // call this explicitly *before* their inflight decrement so no handle can
  // outlive DrainReplication.
  void Reset() {
    if (block_ != nullptr &&
        block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      EntryBlockPool().Release(block_);
    }
    block_ = nullptr;
  }

  const StoredEntry& entry() const { return block_->entry; }
  explicit operator bool() const { return block_ != nullptr; }

 private:
  explicit EntryHandle(EntryBlock* block) : block_(block) {}
  void AddRef() {
    if (block_ != nullptr) {
      block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EntryBlock* block_ = nullptr;
};

// One ⟨key, version⟩ target of a batched wait. The view must stay valid until
// the batch call returns (waiters copy the key they register under).
struct KeyVersion {
  std::string_view key;
  uint64_t version = 0;
};

// Invoked exactly once per registered wait: Ok when the watched version
// became visible, DeadlineExceeded when the deadline fired first.
using VisibilityCallback = std::function<void(Status)>;

// Wakeup accounting for the apply path (thundering-herd diagnostics).
struct WakeupStats {
  uint64_t applies = 0;            // applies that stored a new version
  uint64_t waiters_notified = 0;   // waiters actually woken (key matched)
  uint64_t notify_all_wakeups = 0; // what a table-wide notify_all would have
                                   // woken: waiters resident at apply time
};

// One region's copy of the data. Thread-safe; lock-striped by key so hot keys
// in one shard never serialize readers/writers of another.
class ReplicaTable {
 public:
  // Applies an entry if it is newer than what the replica holds, then fires
  // (outside the shard lock) the callbacks of waiters the entry satisfies.
  void Apply(const StoredEntry& entry);

  std::optional<StoredEntry> Get(const std::string& key) const;

  // Highest version of `key` applied here (0 when absent).
  uint64_t VersionOf(const std::string& key) const;

  // Blocks until VersionOf(key) >= version or the deadline passes. Built on
  // the waiter registry: the thread is woken only by applies of `key`.
  Status WaitVersion(const std::string& key, uint64_t version, TimePoint deadline) const;

  // Event-driven wait: invokes `cb` exactly once — synchronously when the
  // version is already visible, from the apply path when it becomes visible,
  // or from a timer (scheduled on `timers`) when the deadline fires first.
  // No polling, no spurious wakeups. The callback must be short (it may run
  // on the timer dispatcher thread) and must not re-enter this table.
  // Waiters must not outlive the table: callers drain their waits (visibility
  // or deadline) before the owning store is destroyed.
  void WaitVersionAsync(const std::string& key, uint64_t version, TimePoint deadline,
                        TimerService* timers, VisibilityCallback cb) const;

  // Batched wait: `cb` fires exactly once, with Ok when every ⟨key, version⟩
  // in `items` is visible, or DeadlineExceeded when the deadline passes with
  // any of them outstanding. Already-visible items register no waiter, the
  // rest share a single deadline timer — so a barrier with N missed deps on
  // one store costs N registry slots but one timer and one completion, versus
  // N of each through WaitVersionAsync. An empty batch completes Ok inline.
  void WaitVersionsAsync(std::span<const KeyVersion> items, TimePoint deadline,
                         TimerService* timers, VisibilityCallback cb) const;

  // All entries whose key starts with `prefix`, sorted by key (SQL scans).
  std::vector<StoredEntry> ScanPrefix(const std::string& prefix) const;

  size_t Size() const;

  WakeupStats Wakeups() const;
  // Waiters currently blocked (sync + async) across all shards.
  uint64_t ResidentWaiters() const { return resident_waiters_->load(std::memory_order_relaxed); }

 private:
  struct Waiter {
    uint64_t version = 0;
    // First claimer (apply, deadline timer, or timed-out sync waiter) wins;
    // only the winner may invoke `cb` or abandon the waiter.
    std::atomic<bool> fired{false};
    VisibilityCallback cb;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, StoredEntry> entries;
    std::unordered_map<std::string, std::vector<std::shared_ptr<Waiter>>> waiters;
  };

  // 64-way striping (up from 16): wider than any realistic worker count, so
  // concurrent applies of different keys essentially never share a stripe.
  static constexpr size_t kNumShards = 64;

  Shard& ShardFor(const std::string& key) const;
  // Registers a waiter for ⟨key, version⟩ unless already visible; returns
  // nullptr in the visible case and leaves `cb` unconsumed (the visibility
  // check and the registration share the shard lock, so an apply can never
  // slip between them).
  std::shared_ptr<Waiter> RegisterWaiter(const std::string& key, uint64_t version,
                                         VisibilityCallback&& cb) const;

  mutable std::array<Shard, kNumShards> shards_;

  // Shared (not a raw member) so deadline timers can decrement it safely even
  // if they fire after the table is gone.
  std::shared_ptr<std::atomic<uint64_t>> resident_waiters_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  mutable std::atomic<uint64_t> applies_{0};
  mutable std::atomic<uint64_t> waiters_notified_{0};
  mutable std::atomic<uint64_t> notify_all_wakeups_{0};
};

struct ReplicatedStoreOptions {
  std::string name;
  std::vector<Region> regions = {Region::kUs, Region::kEu};
  ReplicationProfileOptions replication;
  // Fixed per-write schema overhead (bytes) added to metrics, e.g. secondary
  // index entries. Configured by shims that alter the data model.
  size_t per_write_overhead_bytes = 0;
  // Visibility cache this store publishes apply notifications to (nullptr
  // disables publication — the store still works, barriers just never hit).
  // The process-wide default is right for deployments; benches that model
  // private store fleets pass their own instance.
  VisibilityCache* visibility_cache = &VisibilityCache::Default();
  // Fault injector this store consults on the apply/wait/replication paths
  // (nullptr disables injection and falls back to store-local pause flags).
  FaultInjector* fault_injector = &FaultInjector::Default();
};

class ReplicatedStore {
 public:
  ReplicatedStore(ReplicatedStoreOptions options,
                  RegionTopology* topology = &RegionTopology::Default(),
                  TimerService* timers = &TimerService::Shared());
  virtual ~ReplicatedStore();

  ReplicatedStore(const ReplicatedStore&) = delete;
  ReplicatedStore& operator=(const ReplicatedStore&) = delete;

  // Drains outstanding replication (see DrainReplication).
  // Subclass destructors must also drain before destroying their own state.

  // Writes at `origin`; applies locally right away, ships to peers
  // asynchronously. Returns the (per-key monotonic) version.
  // `extra_overhead_bytes` lets typed layers report write amplification that
  // varies per operation (e.g. secondary-index entries on some tables).
  uint64_t Put(Region origin, const std::string& key, std::string bytes,
               size_t extra_overhead_bytes = 0);

  // Local read from the region's replica. Eventually consistent.
  std::optional<StoredEntry> Get(Region region, const std::string& key) const;

  // Strongly consistent read: fetches the authoritative latest copy,
  // paying a WAN round trip from `caller` to the key's origin region.
  std::optional<StoredEntry> StrongGet(Region caller, const std::string& key) const;

  bool IsVisible(Region region, const std::string& key, uint64_t version) const;

  // Blocks until ⟨key, version⟩ (or something newer) is visible at `region`.
  Status WaitVisible(Region region, const std::string& key, uint64_t version,
                     Duration timeout = Duration::max()) const;

  // Event-driven variant: `cb` fires exactly once, from the apply path when
  // the write becomes visible (immediately if it already is) or with
  // DeadlineExceeded when `deadline` passes first. Callers must not destroy
  // the store while waits are outstanding — barriers bound every wait with a
  // deadline or complete it via DrainReplication before teardown.
  void WaitVisibleAsync(Region region, const std::string& key, uint64_t version,
                        TimePoint deadline, VisibilityCallback cb) const;

  // Batched variant over one region's replica; see
  // ReplicaTable::WaitVersionsAsync for the contract.
  void WaitVisibleBatchAsync(Region region, std::span<const KeyVersion> items,
                             TimePoint deadline, VisibilityCallback cb) const;

  // Stabilization-frontier wait (the stable-frontier enforcement backend's
  // primitive): `cb` fires exactly once — Ok when the region's apply frontier
  // covers `cut_hlc` (see StoreVisibility::FrontierCovers; immediately if it
  // already does, or if this store has no replica at `region`), or
  // DeadlineExceeded when `deadline` passes first. Event-driven off the same
  // NoteApply feed that advances the watermark.
  void WaitFrontierAsync(Region region, uint64_t cut_hlc, TimePoint deadline,
                         VisibilityCallback cb) const;

  // This store's visibility-cache state; nullptr when publication is
  // disabled. Shims hand it to barriers for the zero-wait fast path.
  const std::shared_ptr<StoreVisibility>& visibility() const { return visibility_; }

  const std::string& name() const { return options_.name; }
  const std::vector<Region>& regions() const { return options_.regions; }
  // Replica footprint as a bitmask — the locality scope shims stamp onto the
  // lineage dependencies this store's writes produce (DESIGN.md §13).
  RegionMask region_mask() const { return region_mask_; }
  // The timer service replication (and store-level timers like TTL expiry)
  // runs on. Layers above the store (shims) reuse it so a deployment built
  // around a private TimerService never leaks work onto the shared one.
  TimerService* timers() const { return timers_; }
  StoreMetrics& metrics() { return metrics_; }
  const StoreMetrics& metrics() const { return metrics_; }
  size_t per_write_overhead_bytes() const { return options_.per_write_overhead_bytes; }
  void set_per_write_overhead_bytes(size_t bytes) { options_.per_write_overhead_bytes = bytes; }

  // Apply-path wakeup accounting summed over the regional replicas.
  WakeupStats TotalWakeups() const;

  // Hook invoked (on the timer thread) every time an entry becomes visible at
  // a region — including the synchronous local apply. Queue/pub-sub layers
  // use it to trigger delivery. Set before concurrent use.
  using ApplyHook = std::function<void(Region, const StoredEntry&)>;
  void SetApplyHook(ApplyHook hook) { apply_hook_ = std::move(hook); }

  // Blocks until every scheduled replication apply has fired. Call before
  // tearing down a deployment: pending timer callbacks reference this store.
  // The destructor drains too, but subclasses with apply hooks must drain
  // while their members are still alive (their destructors call this first).
  void DrainReplication() const;

  // Failure injection is driven entirely through the store's `FaultInjector`
  // (options.fault_injector): declaratively via `FaultInjector::Arm` (kinds
  // kStoreStall / kRegionOutage / kLinkPartition) or manually via
  // `FaultInjector::PauseStore` / `ResumeStore`. The injector is the single
  // source of truth for what is failing; the store only buffers stalled
  // entries and replays them on heal (it registers a resume listener with the
  // injector so a manual Resume triggers the backlog replay).
  FaultInjector* fault_injector() const { return options_.fault_injector; }

 protected:
  const ReplicaTable& replica(Region region) const;
  ReplicaTable& replica(Region region);
  bool HasRegion(Region region) const;

  // Schedules `fn` on the store's timer under the drain contract: the work
  // counts as in-flight replication, so DrainReplication (and hence the
  // destructor) waits for it. Used by apply-error retries, stall heal
  // replays, and broker redelivery timers. Returns false (and runs nothing)
  // when the timer service has shut down.
  bool ScheduleStoreWork(Duration delay, TimerService::AffinityToken affinity,
                         std::function<void()> fn);

 private:
  uint64_t NextVersion(const std::string& key);

  // Timer affinity for a shipment: all shipments of `key` to `destination`
  // land on the same engine shard + worker, so per-⟨key, region⟩ applies
  // execute serially in deadline order (FIFO at equal deadlines).
  TimerService::AffinityToken ShipmentAffinity(const std::string& key,
                                               Region destination) const;

  ReplicatedStoreOptions options_;
  RegionTopology* topology_;
  TimerService* timers_;
  ReplicationProfile profile_;
  StoreMetrics metrics_;
  ApplyHook apply_hook_;
  size_t name_hash_ = 0;  // decorrelates affinity tokens across stores
  // Replica footprint mask and the region-group HLC clock derived from it at
  // construction. Every stamp this store ever issues comes from this one
  // clock, so stamps stay monotone in seq regardless of how many clocks the
  // process runs (see src/common/hlc.h).
  RegionMask region_mask_ = 0;
  HlcClock* hlc_clock_ = nullptr;

  // Dense per-store write sequence and its pairing with the HLC stamp
  // (StoredEntry::seq / ::hlc sources). One lock covers both assignments plus
  // the NoteIssued publication, so stamps are monotone in seq and the
  // visibility cache's issued high-water mark advances in stamping order.
  std::mutex stamp_mu_;
  uint64_t seq_counter_ = 0;
  // Remote shipping targets per origin, precomputed at construction so the
  // Put fan-out iterates a dense array instead of re-filtering
  // options_.regions (or building a per-call destinations vector) per write.
  std::array<std::vector<Region>, kNumRegions> remote_destinations_;
  // Registered visibility state (nullptr when options_.visibility_cache is).
  std::shared_ptr<StoreVisibility> visibility_;

  // Per-key version counters, striped so concurrent writers of different
  // keys never contend on one global mutex/map.
  static constexpr size_t kVersionShards = 64;
  struct VersionShard {
    std::mutex mu;
    std::unordered_map<std::string, uint64_t> versions;
  };
  mutable std::array<VersionShard, kVersionShards> version_shards_;

  // Lock-free in-flight shipment accounting: Put increments before
  // scheduling, the shipment callback decrements after the apply. The mutex/
  // condvar pair exists only for the drain path — a decrement that hits zero
  // takes the lock solely to publish the wakeup (never per-shipment). The
  // state lives behind a shared_ptr co-owned by every shipment lambda (the
  // `resident_waiters_` idiom): the final decrement's notify may run after a
  // drainer saw zero and destroyed the store, so it must not touch members.
  struct InflightShipments {
    std::atomic<size_t> count{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  std::shared_ptr<InflightShipments> inflight_ = std::make_shared<InflightShipments>();

  // Applies the entry at `region`, or buffers it while the region's inbound
  // replication is stalled (manual pause or an armed fault plan), or retries
  // it after an injected transient apply error. Fires the apply hook.
  void ApplyAt(Region region, const StoredEntry& entry);

  // The unconditional half of ApplyAt: replica apply + apply hook + visibility
  // notification. Backlog replay goes through ApplyAt (which calls this), so
  // the cache sees every ⟨seq, region⟩ exactly once regardless of stalls.
  void ApplyReplicated(Region region, const StoredEntry& entry);

  // Buffers a stalled entry and, when the stall has a known heal time,
  // schedules the backlog replay for that moment (one pending replay per
  // region; the replay re-checks and re-schedules if faults persist).
  void BufferStalled(Region region, const StoredEntry& entry, const StallDecision& stall);

  // Re-applies the region's stalled backlog through ApplyAt (entries re-buffer
  // if the region is still stalled) and records store.region_outage_ms once
  // the backlog fully drains.
  void ReplayBacklog(Region region);

  // Emits the "replication/apply" trace span for a shipment that just
  // arrived at `destination` (no-op when tracing is off or the write was not
  // traced).
  void RecordReplicationSpan(Region destination, double lag_millis,
                             const StoredEntry& entry) const;

  // Stall state: pause decisions live in the fault injector; the backlog, the
  // per-region "replay already scheduled" latch, and the outage clock are
  // always local.
  mutable std::mutex pause_mu_;
  std::array<std::vector<StoredEntry>, kNumRegions> stalled_;
  std::array<bool, kNumRegions> heal_pending_{};
  std::array<TimePoint, kNumRegions> stall_started_{};

  // Ticket for the injector's resume-listener registration (0 when the store
  // has no injector); removed in the destructor before manual pauses clear.
  uint64_t resume_listener_ = 0;

  // Authoritative latest copy of every key, updated synchronously at Put.
  ReplicaTable authority_;

  std::vector<std::unique_ptr<ReplicaTable>> replicas_;  // indexed by RegionIndex
};

}  // namespace antipode

#endif  // SRC_STORE_REPLICATED_STORE_H_
