#include "src/store/dynamo_store.h"

namespace antipode {

ReplicatedStoreOptions DynamoStore::DefaultOptions(std::string name,
                                                   std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  options.replication.median_millis = 600.0;
  options.replication.sigma = 0.3;
  options.replication.payload_millis_per_mib = 150.0;
  return options;
}

ReplicatedStoreOptions DynamoStore::NotifierOptions(std::string name,
                                                    std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  // Streams + cross-region trigger pipeline: tens of seconds.
  options.replication.median_millis = 30000.0;
  options.replication.sigma = 0.4;
  options.replication.payload_millis_per_mib = 150.0;
  return options;
}

Result<uint64_t> DynamoStore::PutItem(Region region, const std::string& table,
                                      const std::string& key, const Document& item) {
  std::string bytes = item.Serialize();
  if (bytes.size() > kMaxItemBytes) {
    return Status::InvalidArgument("item exceeds 400KB cap");
  }
  return Put(region, ItemKey(table, key), std::move(bytes));
}

std::optional<Document> DynamoStore::GetItem(Region region, const std::string& table,
                                             const std::string& key) const {
  auto entry = Get(region, ItemKey(table, key));
  if (!entry.has_value() || entry->bytes.empty()) {
    return std::nullopt;
  }
  auto doc = Document::Deserialize(entry->bytes);
  if (!doc.ok()) {
    return std::nullopt;
  }
  return std::move(*doc);
}

std::optional<Document> DynamoStore::GetItemConsistent(Region region, const std::string& table,
                                                       const std::string& key) const {
  auto entry = StrongGet(region, ItemKey(table, key));
  if (!entry.has_value() || entry->bytes.empty()) {
    return std::nullopt;
  }
  auto doc = Document::Deserialize(entry->bytes);
  if (!doc.ok()) {
    return std::nullopt;
  }
  return std::move(*doc);
}

}  // namespace antipode
