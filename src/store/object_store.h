// S3-like object store: buckets of immutable blobs with slow, bimodal
// cross-region replication (usually seconds, occasionally minutes — AWS
// documents up to 15 minutes, which drives the 100% rows of Table 1 and the
// long Antipode consistency window of Fig. 7).

#ifndef SRC_STORE_OBJECT_STORE_H_
#define SRC_STORE_OBJECT_STORE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/store/replicated_store.h"

namespace antipode {

class ObjectStore : public ReplicatedStore {
 public:
  static ReplicatedStoreOptions DefaultOptions(std::string name, std::vector<Region> regions);

  explicit ObjectStore(ReplicatedStoreOptions options,
                       RegionTopology* topology = &RegionTopology::Default(),
                       TimerService* timers = &TimerService::Shared())
      : ReplicatedStore(std::move(options), topology, timers) {}

  uint64_t PutObject(Region region, const std::string& bucket, const std::string& key,
                     std::string bytes) {
    return Put(region, ObjectKey(bucket, key), std::move(bytes));
  }

  std::optional<std::string> GetObject(Region region, const std::string& bucket,
                                       const std::string& key) const {
    auto entry = Get(region, ObjectKey(bucket, key));
    if (!entry.has_value() || entry->bytes.empty()) {
      return std::nullopt;
    }
    return entry->bytes;
  }

  // Keys of live objects in a bucket at the region's replica.
  std::vector<std::string> ListObjects(Region region, const std::string& bucket) const;

  // Tombstones an object (the deletion replicates like a write).
  uint64_t DeleteObject(Region region, const std::string& bucket, const std::string& key) {
    return Put(region, ObjectKey(bucket, key), std::string());
  }

  bool ObjectExists(Region region, const std::string& bucket, const std::string& key) const {
    return GetObject(region, bucket, key).has_value();
  }

  static std::string ObjectKey(const std::string& bucket, const std::string& key) {
    return bucket + "/" + key;
  }
};

}  // namespace antipode

#endif  // SRC_STORE_OBJECT_STORE_H_
