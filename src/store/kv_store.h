// Redis-like in-memory key-value cache with asynchronous geo-replication.

#ifndef SRC_STORE_KV_STORE_H_
#define SRC_STORE_KV_STORE_H_

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/timer_service.h"
#include "src/store/replicated_store.h"

namespace antipode {

class KvStore : public ReplicatedStore {
 public:
  // Replication profile calibrated so the Table 1 / Fig. 7 shapes hold
  // (moderate shipping delay with a wide spread).
  static ReplicatedStoreOptions DefaultOptions(std::string name, std::vector<Region> regions);

  explicit KvStore(ReplicatedStoreOptions options,
                   RegionTopology* topology = &RegionTopology::Default(),
                   TimerService* timers = &TimerService::Shared())
      : ReplicatedStore(std::move(options), topology, timers),
        alive_(std::make_shared<Liveness>()) {}

  ~KvStore() override {
    // Disarm outstanding TTL timers before members are torn down.
    std::lock_guard<std::mutex> lock(alive_->mu);
    alive_->alive = false;
  }

  // Returns the write's version.
  uint64_t Set(Region region, const std::string& key, std::string value) {
    return Put(region, key, std::move(value));
  }

  std::optional<std::string> GetValue(Region region, const std::string& key) const {
    auto entry = Get(region, key);
    if (!entry.has_value() || entry->bytes.empty()) {
      return std::nullopt;
    }
    return entry->bytes;
  }

  // Deletion is modelled as an empty tombstone (versions keep increasing).
  uint64_t Del(Region region, const std::string& key) { return Put(region, key, std::string()); }

  bool Exists(Region region, const std::string& key) const {
    auto entry = Get(region, key);
    return entry.has_value() && !entry->bytes.empty();
  }

  // SET with expiry: the key is tombstoned everywhere after `ttl` elapses
  // (measured in scaled wall time, like every other simulated delay).
  uint64_t SetWithTtl(Region region, const std::string& key, std::string value,
                      double ttl_model_millis);

  // Atomic counter increment (INCR). Missing or non-numeric values count as
  // 0. Returns the post-increment value.
  int64_t Increment(Region region, const std::string& key, int64_t delta = 1);

  // Multi-get from the region's replica.
  std::vector<std::optional<std::string>> MGet(Region region,
                                               const std::vector<std::string>& keys) const;

 private:
  // Keeps TTL-expiry timer callbacks from touching a destroyed store: the
  // callback holds the shared state and checks `alive` under the lock.
  struct Liveness {
    std::mutex mu;
    bool alive = true;
  };

  // INCR serializes read-modify-write per counter key; striping by key hash
  // (instead of the old store-wide counter_mu_) lets unrelated counters
  // increment concurrently.
  static constexpr size_t kCounterStripes = 16;
  std::mutex& CounterMutex(const std::string& key) {
    return counter_mu_[std::hash<std::string>{}(key) % kCounterStripes];
  }
  std::array<std::mutex, kCounterStripes> counter_mu_;
  std::shared_ptr<Liveness> alive_;
};

}  // namespace antipode

#endif  // SRC_STORE_KV_STORE_H_
