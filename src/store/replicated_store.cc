#include "src/store/replicated_store.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/common/hlc.h"
#include "src/common/property.h"
#include "src/common/sim.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace antipode {

ObjectPool<EntryBlock>& EntryBlockPool() {
  // Intentionally leaked, like TimerService::Shared: blocks released by late
  // callbacks (after any particular store died) always land somewhere valid.
  static auto* pool = new ObjectPool<EntryBlock>(/*slab_size=*/64);
  return *pool;
}

ReplicaTable::Shard& ReplicaTable::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

std::shared_ptr<ReplicaTable::Waiter> ReplicaTable::RegisterWaiter(const std::string& key,
                                                                   uint64_t version,
                                                                   VisibilityCallback&& cb) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end() && it->second.version >= version) {
    return nullptr;  // already visible — caller completes synchronously, cb stays with caller
  }
  auto waiter = std::make_shared<Waiter>();
  waiter->version = version;
  waiter->cb = std::move(cb);
  auto& list = shard.waiters[key];
  // Lazily drop abandoned waiters (timed-out syncs, expired asyncs) so a key
  // that is waited on but never written cannot accumulate zombies unboundedly.
  list.erase(std::remove_if(list.begin(), list.end(),
                            [](const std::shared_ptr<Waiter>& w) {
                              return w->fired.load(std::memory_order_acquire);
                            }),
             list.end());
  list.push_back(waiter);
  resident_waiters_->fetch_add(1, std::memory_order_relaxed);
  return waiter;
}

void ReplicaTable::Apply(const StoredEntry& entry) {
  std::vector<std::shared_ptr<Waiter>> due;
  {
    Shard& shard = ShardFor(entry.key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(entry.key);
    if (it != shard.entries.end() && it->second.version >= entry.version) {
      // Heal replays and redeliveries are expected to race fresh applies;
      // the sweep must actually exercise this arm.
      ANTIPODE_REACHABLE("store.stale_replay_ignored");
      return;  // stale replay
    }
    shard.entries[entry.key] = entry;
    auto wit = shard.waiters.find(entry.key);
    if (wit != shard.waiters.end()) {
      auto& list = wit->second;
      auto keep = list.begin();
      for (auto& waiter : list) {
        if (waiter->fired.load(std::memory_order_acquire)) {
          continue;  // abandoned; drop it
        }
        if (entry.version >= waiter->version &&
            !waiter->fired.exchange(true, std::memory_order_acq_rel)) {
          due.push_back(std::move(waiter));
          continue;
        }
        *keep++ = std::move(waiter);
      }
      list.erase(keep, list.end());
      if (list.empty()) {
        shard.waiters.erase(wit);
      }
    }
  }
  // Thundering-herd accounting: the old design's table-wide notify_all would
  // have woken every resident waiter; the registry wakes only `due`.
  applies_.fetch_add(1, std::memory_order_relaxed);
  waiters_notified_.fetch_add(due.size(), std::memory_order_relaxed);
  notify_all_wakeups_.fetch_add(resident_waiters_->load(std::memory_order_relaxed) + due.size(),
                                std::memory_order_relaxed);
  resident_waiters_->fetch_sub(due.size(), std::memory_order_relaxed);
  // Callbacks run outside the shard lock: they may take unrelated locks
  // (barrier gathers, sync-wait condvars) but must not re-enter this table.
  for (auto& waiter : due) {
    ANTIPODE_ALWAYS("store.wait_implies_visible", waiter->version <= entry.version);
    waiter->cb(Status::Ok());
  }
}

std::optional<StoredEntry> ReplicaTable::Get(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    return std::nullopt;
  }
  return it->second;
}

uint64_t ReplicaTable::VersionOf(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  return it == shard.entries.end() ? 0 : it->second.version;
}

Status ReplicaTable::WaitVersion(const std::string& key, uint64_t version,
                                 TimePoint deadline) const {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::Ok();
  };
  auto sync = std::make_shared<SyncState>();
  std::shared_ptr<Waiter> waiter =
      RegisterWaiter(key, version, [sync](Status status) {
        {
          std::lock_guard<std::mutex> lock(sync->mu);
          sync->status = std::move(status);
          sync->done = true;
        }
        sync->cv.notify_one();
      });
  if (waiter == nullptr) {
    return Status::Ok();  // already visible
  }
  if (SimScheduler* sim = SimScheduler::Active()) {
    // Cooperative wait: pump the event heap until the apply path completes
    // the waiter or virtual time reaches the deadline — no thread parks in
    // simulation. The predicate takes sync->mu itself, so nothing is held
    // across event execution.
    const auto done = [sync] {
      std::lock_guard<std::mutex> lock(sync->mu);
      return sync->done;
    };
    if (sim->RunUntil(done, deadline)) {
      return sync->status;
    }
    // Timed out (or the simulation went quiescent with no bound, i.e. the
    // apply that would satisfy this wait can never happen). Claim the waiter
    // exactly like the threaded path.
    if (!waiter->fired.exchange(true, std::memory_order_acq_rel)) {
      resident_waiters_->fetch_sub(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded("write not visible before deadline: " + key);
    }
    sim->RunUntil(done, TimePoint::max());
    return sync->status;
  }
  std::unique_lock<std::mutex> lock(sync->mu);
  if (deadline == TimePoint::max()) {
    sync->cv.wait(lock, [&] { return sync->done; });
    return sync->status;
  }
  if (sync->cv.wait_until(lock, deadline, [&] { return sync->done; })) {
    return sync->status;
  }
  // Timed out. Claim the waiter so the apply path drops it; losing the claim
  // means an apply is concurrently delivering success — take that instead.
  if (!waiter->fired.exchange(true, std::memory_order_acq_rel)) {
    resident_waiters_->fetch_sub(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("write not visible before deadline: " + key);
  }
  sync->cv.wait(lock, [&] { return sync->done; });
  return sync->status;
}

void ReplicaTable::WaitVersionsAsync(std::span<const KeyVersion> items, TimePoint deadline,
                                     TimerService* timers, VisibilityCallback cb) const {
  // Fast path: one read-only pass over the batch. In the steady state every
  // version has long replicated, so the whole wait completes here without the
  // gather, the per-item callback allocations, or any waiter registration.
  // Racing applies are harmless — visibility is monotone, so a version seen
  // visible here stays visible; a miss just falls through to the slow path,
  // whose RegisterWaiter re-checks under the same shard lock.
  {
    bool all_visible = true;
    std::string key_buf;
    for (const KeyVersion& item : items) {
      key_buf.assign(item.key);
      Shard& shard = ShardFor(key_buf);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(key_buf);
      if (it == shard.entries.end() || it->second.version < item.version) {
        all_visible = false;
        break;
      }
    }
    if (all_visible) {
      cb(Status::Ok());
      return;
    }
  }
  // Completion gather shared by every registered waiter plus one launch token
  // held during registration, so `cb` cannot fire while waiters are still
  // being added. First error (in practice only DeadlineExceeded) wins.
  struct BatchGather {
    std::atomic<size_t> pending{1};
    std::mutex mu;
    Status first_error = Status::Ok();
    VisibilityCallback cb;
    void Complete(Status status) {
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = std::move(status);
      }
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Status final = Status::Ok();
        {
          std::lock_guard<std::mutex> lock(mu);
          final = first_error;
        }
        cb(std::move(final));
      }
    }
  };
  auto gather = std::make_shared<BatchGather>();
  gather->cb = std::move(cb);

  // Waiters that actually registered share one deadline timer below.
  std::vector<std::shared_ptr<Waiter>> registered;
  for (const KeyVersion& item : items) {
    const std::string key(item.key);
    gather->pending.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<Waiter> waiter = RegisterWaiter(
        key, item.version, [gather](Status status) { gather->Complete(std::move(status)); });
    if (waiter == nullptr) {
      gather->Complete(Status::Ok());  // already visible
      continue;
    }
    registered.push_back(std::move(waiter));
  }

  if (!registered.empty() && deadline != TimePoint::max() && timers != nullptr) {
    auto resident = resident_waiters_;
    auto expire = [gather, resident, registered = std::move(registered)] {
      for (const auto& waiter : registered) {
        if (!waiter->fired.exchange(true, std::memory_order_acq_rel)) {
          resident->fetch_sub(1, std::memory_order_relaxed);
          gather->Complete(Status::DeadlineExceeded("write not visible before deadline"));
        }
      }
    };
    if (!timers->ScheduleAt(deadline, expire)) {
      // Timer engine already shut down: the deadline can never fire, so
      // expire the registered waiters now instead of leaking a gather that
      // would never complete.
      expire();
    }
  }
  gather->Complete(Status::Ok());  // release the launch token
}

void ReplicaTable::WaitVersionAsync(const std::string& key, uint64_t version, TimePoint deadline,
                                    TimerService* timers, VisibilityCallback cb) const {
  std::shared_ptr<Waiter> waiter = RegisterWaiter(key, version, std::move(cb));
  if (waiter == nullptr) {
    cb(Status::Ok());  // already visible; RegisterWaiter left cb untouched
    return;
  }
  if (deadline == TimePoint::max() || timers == nullptr) {
    return;  // unbounded wait: fires only from the apply path
  }
  // The timer owns only the waiter and the resident counter (both shared), so
  // it stays safe even if it outlives this table.
  auto resident = resident_waiters_;
  auto expire = [waiter, resident, key] {
    if (!waiter->fired.exchange(true, std::memory_order_acq_rel)) {
      resident->fetch_sub(1, std::memory_order_relaxed);
      waiter->cb(Status::DeadlineExceeded("write not visible before deadline: " + key));
    }
  };
  if (!timers->ScheduleAt(deadline, expire)) {
    // Timer engine already shut down: deliver the deadline outcome inline so
    // the waiter cannot hang past teardown.
    expire();
  }
}

std::vector<StoredEntry> ReplicaTable::ScanPrefix(const std::string& prefix) const {
  std::vector<StoredEntry> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.lower_bound(prefix); it != shard.entries.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) {
        break;
      }
      out.push_back(it->second);
    }
  }
  // Shards partition by hash; restore the global key order scans rely on.
  std::sort(out.begin(), out.end(),
            [](const StoredEntry& a, const StoredEntry& b) { return a.key < b.key; });
  return out;
}

size_t ReplicaTable::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

WakeupStats ReplicaTable::Wakeups() const {
  WakeupStats stats;
  stats.applies = applies_.load(std::memory_order_relaxed);
  stats.waiters_notified = waiters_notified_.load(std::memory_order_relaxed);
  stats.notify_all_wakeups = notify_all_wakeups_.load(std::memory_order_relaxed);
  return stats;
}

namespace {

// Decorrelates the lag samples of different stores that were configured with
// the same base seed: without this, two stores with identical sigma would
// draw near-identical jitter sequences and their replication race would be
// artificially deterministic.
ReplicationProfileOptions PerStoreProfile(ReplicationProfileOptions profile,
                                          const std::string& store_name) {
  profile.seed ^= std::hash<std::string>{}(store_name);
  return profile;
}

}  // namespace

ReplicatedStore::ReplicatedStore(ReplicatedStoreOptions options, RegionTopology* topology,
                                 TimerService* timers)
    : options_(std::move(options)),
      topology_(topology),
      timers_(timers),
      profile_(PerStoreProfile(options_.replication, options_.name), topology),
      metrics_(options_.name),
      name_hash_(std::hash<std::string>{}(options_.name)),
      region_mask_(RegionMaskOf(options_.regions)),
      hlc_clock_(&HlcClock::ForGroup(RegionGroupOf(region_mask_))) {
  replicas_.resize(kNumRegions);
  for (Region region : options_.regions) {
    replicas_[static_cast<size_t>(RegionIndex(region))] = std::make_unique<ReplicaTable>();
  }
  for (Region origin : options_.regions) {
    auto& dests = remote_destinations_[static_cast<size_t>(RegionIndex(origin))];
    for (Region destination : options_.regions) {
      if (destination != origin) {
        dests.push_back(destination);
      }
    }
  }
  if (options_.visibility_cache != nullptr) {
    visibility_ = options_.visibility_cache->Register(options_.name, options_.regions);
  }
  if (options_.fault_injector != nullptr) {
    // A manual ResumeStore on the injector replays whatever this store
    // buffered during the pause; finite fault windows schedule their own heal
    // replay instead (BufferStalled).
    resume_listener_ = options_.fault_injector->AddStoreResumeListener(
        options_.name, [this](Region region) { ReplayBacklog(region); });
  }
}

bool ReplicatedStore::HasRegion(Region region) const {
  return replicas_[static_cast<size_t>(RegionIndex(region))] != nullptr;
}

const ReplicaTable& ReplicatedStore::replica(Region region) const {
  const auto* table = replicas_[static_cast<size_t>(RegionIndex(region))].get();
  assert(table != nullptr && "store has no replica in this region");
  return *table;
}

ReplicaTable& ReplicatedStore::replica(Region region) {
  auto* table = replicas_[static_cast<size_t>(RegionIndex(region))].get();
  assert(table != nullptr && "store has no replica in this region");
  return *table;
}

uint64_t ReplicatedStore::NextVersion(const std::string& key) {
  VersionShard& shard = version_shards_[std::hash<std::string>{}(key) % kVersionShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  return ++shard.versions[key];
}

TimerService::AffinityToken ReplicatedStore::ShipmentAffinity(const std::string& key,
                                                              Region destination) const {
  // Golden-ratio scramble keeps ⟨key, us⟩ and ⟨key, eu⟩ on different workers.
  return (std::hash<std::string>{}(key) ^ name_hash_) +
         0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(RegionIndex(destination) + 1);
}

uint64_t ReplicatedStore::Put(Region origin, const std::string& key, std::string bytes,
                              size_t extra_overhead_bytes) {
  assert(HasRegion(origin) && "write at a region without a replica");
  // Span construction is hoisted behind the enabled() load so the untraced
  // path allocates nothing for tracing — not even the name/category strings.
  std::optional<Span> span;
  if (Tracer::Default().enabled()) {
    span.emplace(Span::Start("store/put", {.category = "store", .region = origin}));
  }
  // A warm pooled block instead of make_shared: the recycled entry's key and
  // bytes strings keep their capacity, so in steady state filling it touches
  // no heap at all. Shared (immutably) by the local applies and every
  // destination's shipment lambda; the last handle to drop recycles it.
  EntryBlock* block = EntryBlockPool().Acquire();
  block->refs.store(1, std::memory_order_relaxed);
  EntryHandle handle = EntryHandle::Adopt(block);
  StoredEntry& entry = block->entry;
  entry.key.assign(key);
  entry.bytes = std::move(bytes);
  entry.version = NextVersion(key);
  entry.origin = origin;
  entry.write_time = GlobalClock().Now();
  // Always overwritten (not just when tracing): a recycled block must not
  // leak the previous write's span identity into this one.
  entry.trace_id = 0;
  entry.parent_span_id = 0;
  {
    // seq and HLC stamp are assigned under one lock so stamps are monotone in
    // seq (the stabilization frontier's soundness invariant), and NoteIssued
    // publishes them in stamping order (the caught-up rule reads the issued
    // high-water mark racily and relies on never seeing seq N+1 before N).
    std::lock_guard<std::mutex> lock(stamp_mu_);
    entry.seq = ++seq_counter_;
    entry.hlc = hlc_clock_->Tick();
    if (visibility_) {
      visibility_->NoteIssued(entry.seq, entry.hlc);
    }
  }
  if (span.has_value() && span->recording()) {
    span->Annotate("store", options_.name);
    span->Annotate("key", key);
    span->Annotate("version", entry.version);
    // Replication shipments inherit the put span, so remote applies land in
    // this trace as its children.
    entry.trace_id = span->context().trace_id;
    entry.parent_span_id = span->context().span_id;
  }

  metrics_.RecordWrite(entry.bytes.size(),
                       options_.per_write_overhead_bytes + extra_overhead_bytes);

  // Synchronous apply at the origin and at the authority table. Origin
  // applies bypass the pause gate: the write is local, not replicated.
  authority_.Apply(entry);
  replica(origin).Apply(entry);
  if (visibility_) {
    visibility_->NoteApply(origin, entry.key, entry.version, entry.seq, entry.hlc);
  }
  if (apply_hook_) {
    apply_hook_(origin, entry);
  }

  // Asynchronous shipping to the other replicas (precomputed remote list —
  // no per-call destination filtering). Each shipment captures its own
  // EntryHandle copy in a flat lambda small enough for the TimerTask inline
  // buffer, with the drain accounting folded in rather than layered as a
  // second closure — the old path's two std::function heap allocations per
  // shipment are gone. The handle is Reset() *before* the inflight decrement:
  // once the count can reach zero, a drainer may tear the store down, and no
  // handle (or anything else owned by a shipment) may outlive that.
  for (Region destination : remote_destinations_[static_cast<size_t>(RegionIndex(origin))]) {
    double lag_millis = profile_.SampleMillis(origin, destination, entry.bytes.size());
    if (options_.fault_injector != nullptr) {
      // Injected latency spike on this replication link (kLinkDelay).
      const LinkFault fault = options_.fault_injector->OnReplicate(options_.name, origin,
                                                                   destination);
      lag_millis = lag_millis * fault.delay_factor + fault.delay_add_model_ms;
    }
    metrics_.RecordReplicationLagMillis(lag_millis);
    inflight_->count.fetch_add(1, std::memory_order_relaxed);
    const bool scheduled = timers_->ScheduleAfter(
        TimeScale::FromModelMillis(lag_millis), ShipmentAffinity(key, destination),
        [this, destination, lag_millis, h = handle, inflight = inflight_]() mutable {
          RecordReplicationSpan(destination, lag_millis, h.entry());
          ApplyAt(destination, h.entry());
          h.Reset();
          // Only a decrement that reaches zero touches the drain lock; past
          // it a drainer may destroy the store, so the wakeup goes through
          // the co-owned inflight block — never `this`.
          if (inflight->count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(inflight->mu);
            inflight->cv.notify_all();
          }
        });
    if (!scheduled) {
      // Timer service already shut down: the shipment was dropped, so undo
      // the accounting or DrainReplication would wait forever.
      inflight_->count.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  return entry.version;
}

bool ReplicatedStore::ScheduleStoreWork(Duration delay, TimerService::AffinityToken affinity,
                                        std::function<void()> fn) {
  inflight_->count.fetch_add(1, std::memory_order_relaxed);
  const bool scheduled = timers_->ScheduleAfter(
      delay, affinity, [fn = std::move(fn), inflight = inflight_] {
        fn();
        // Only a decrement that reaches zero touches the drain lock. Past
        // this decrement a drainer may destroy the store, so the wakeup
        // goes through the co-owned inflight block — never `this`.
        if (inflight->count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(inflight->mu);
          inflight->cv.notify_all();
        }
      });
  if (!scheduled) {
    // Timer service already shut down: the work was dropped, so undo the
    // accounting or DrainReplication would wait forever.
    inflight_->count.fetch_sub(1, std::memory_order_acq_rel);
  }
  return scheduled;
}

ReplicatedStore::~ReplicatedStore() {
  DrainReplication();
  // Drop the name → state mapping so a later same-named store starts cold;
  // outstanding shared_ptr holders (a barrier mid-probe) stay valid.
  if (options_.visibility_cache != nullptr) {
    options_.visibility_cache->Unregister(visibility_);
  }
  // Manual pauses are keyed by store name in the (typically process-wide)
  // injector; clear them so a later same-named store doesn't inherit a stall.
  // The resume listener goes first: these ResumeStore calls must not replay
  // this store's backlog mid-destruction (the replay could schedule timer
  // work past the drain above).
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->RemoveStoreResumeListener(resume_listener_);
    for (Region region : options_.regions) {
      options_.fault_injector->ResumeStore(options_.name, region);
    }
  }
}

// Replication shipments start and finish on different threads (Put vs the
// timer dispatcher), so the span is assembled manually: it covers write-time
// to arrival-time at the destination and is parented under the put span the
// entry was stamped with.
void ReplicatedStore::RecordReplicationSpan(Region destination, double lag_millis,
                                            const StoredEntry& entry) const {
  Tracer& tracer = Tracer::Default();
  if (!tracer.enabled() || entry.trace_id == 0) {
    return;
  }
  TraceEvent event;
  event.name = "replication/apply";
  event.category = "replication";
  event.trace_id = entry.trace_id;
  event.span_id = tracer.NextSpanId();
  event.parent_span_id = entry.parent_span_id;
  event.region = destination;
  event.start = entry.write_time;
  event.end = GlobalClock().Now();
  event.annotations.emplace_back("store", options_.name);
  event.annotations.emplace_back("key", entry.key);
  event.annotations.emplace_back("version", std::to_string(entry.version));
  char lag[32];
  std::snprintf(lag, sizeof(lag), "%.3f", lag_millis);
  event.annotations.emplace_back("lag_model_ms", lag);
  tracer.Record(std::move(event));
}

// Short, fixed retry delay for injected transient apply errors. Probability-
// gated rules converge almost surely; a probability-1.0 rule retries until
// its window closes.
constexpr double kApplyRetryModelMillis = 5.0;

void ReplicatedStore::ApplyAt(Region region, const StoredEntry& entry) {
  FaultInjector* injector = options_.fault_injector;
  if (injector != nullptr) {
    const StallDecision stall = injector->StoreStall(options_.name, entry.origin, region);
    if (stall.stalled) {
      BufferStalled(region, entry, stall);
      return;
    }
    if (injector->InjectApplyError(options_.name, region)) {
      // Transient apply failure: the shipment retries after a short backoff.
      // The retry shares the shipment's ⟨key, region⟩ affinity, and a newer
      // version outrunning it is harmless (stale replays are ignored but
      // still watermark through ApplyReplicated).
      MetricsRegistry::Default()
          .GetCounter("store.apply_retries", {{"store", options_.name}})
          ->Increment();
      auto copy = std::make_shared<const StoredEntry>(entry);
      if (ScheduleStoreWork(TimeScale::FromModelMillis(kApplyRetryModelMillis),
                            ShipmentAffinity(entry.key, region),
                            [this, region, copy] { ApplyAt(region, *copy); })) {
        return;
      }
      // Timer service gone (shutdown): fall through and apply inline rather
      // than lose the write.
    }
  }
  ApplyReplicated(region, entry);
}

void ReplicatedStore::BufferStalled(Region region, const StoredEntry& entry,
                                    const StallDecision& stall) {
  const auto idx = static_cast<size_t>(RegionIndex(region));
  bool schedule_heal = false;
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    stalled_[idx].push_back(entry);
    if (stall_started_[idx] == TimePoint{}) {
      stall_started_[idx] = GlobalClock().Now();
    }
    if (stall.heal_known && !heal_pending_[idx]) {
      heal_pending_[idx] = true;
      schedule_heal = true;
    }
  }
  if (schedule_heal) {
    const bool scheduled = ScheduleStoreWork(
        stall.heal_in, ShipmentAffinity(options_.name, region), [this, region] {
          {
            std::lock_guard<std::mutex> lock(pause_mu_);
            heal_pending_[static_cast<size_t>(RegionIndex(region))] = false;
          }
          ReplayBacklog(region);
        });
    if (!scheduled) {
      std::lock_guard<std::mutex> lock(pause_mu_);
      heal_pending_[idx] = false;
    }
  }
}

void ReplicatedStore::ReplayBacklog(Region region) {
  const auto idx = static_cast<size_t>(RegionIndex(region));
  std::vector<StoredEntry> backlog;
  TimePoint started;
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    backlog.swap(stalled_[idx]);
    started = stall_started_[idx];
    stall_started_[idx] = TimePoint{};
  }
  // The sweep must drive at least one heal that actually had buffered writes
  // to replay (an empty backlog means the outage window missed the traffic).
  ANTIPODE_SOMETIMES("store.backlog_replayed", !backlog.empty());
  // Replay in arrival order; entries re-buffer (and re-schedule a heal) when
  // the region is still stalled by another rule or a manual pause.
  for (const StoredEntry& entry : backlog) {
    ApplyAt(region, entry);
  }
  bool healed;
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    healed = stalled_[idx].empty();
    if (!healed && started != TimePoint{}) {
      stall_started_[idx] = started;  // still down: keep the outage clock running
    }
  }
  if (healed && started != TimePoint{} && !backlog.empty()) {
    MetricsRegistry::Default()
        .GetHistogram("store.region_outage_ms",
                      {{"store", options_.name}, {"region", std::string(RegionName(region))}})
        ->Record(TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
            GlobalClock().Now() - started)));
  }
}

void ReplicatedStore::ApplyReplicated(Region region, const StoredEntry& entry) {
  // The hybrid half of the HLC: fold the remote stamp into the local clock so
  // later local stamps dominate it (a no-op while every replica of one store
  // shares the store's region-group clock, but it keeps the protocol honest).
  if (entry.hlc != 0) {
    hlc_clock_->Observe(entry.hlc);
  }
  replica(region).Apply(entry);
  // Unconditional even when the replica apply was a stale replay (a newer
  // version of the key outran this shipment): the watermark needs every
  // ⟨seq, region⟩ exactly once, and NoteApply's per-key max logic already
  // ignores the superseded version.
  if (visibility_) {
    visibility_->NoteApply(region, entry.key, entry.version, entry.seq, entry.hlc);
  }
  if (apply_hook_) {
    apply_hook_(region, entry);
  }
}

void ReplicatedStore::WaitFrontierAsync(Region region, uint64_t cut_hlc, TimePoint deadline,
                                        VisibilityCallback cb) const {
  if (visibility_ == nullptr || !HasRegion(region)) {
    // No frontier feed, or no replica at this region: nothing of this store's
    // can be read (or be stale) there.
    cb(Status::Ok());
    return;
  }
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->InjectWaitError(options_.name, region)) {
    cb(Status::Unavailable("injected wait error (frontier): " + options_.name));
    return;
  }
  std::shared_ptr<StoreVisibility::FrontierWaiter> waiter =
      visibility_->AwaitFrontier(region, cut_hlc, std::move(cb));
  if (waiter == nullptr) {
    cb(Status::Ok());  // already covered; AwaitFrontier left cb untouched
    return;
  }
  if (deadline == TimePoint::max() || timers_ == nullptr) {
    return;  // unbounded wait: fires only from the apply path
  }
  // The timer owns only the waiter (shared), so it stays safe even if it
  // outlives this store — same contract as the per-key deadline timers.
  auto expire = [waiter] {
    if (!waiter->fired.exchange(true, std::memory_order_acq_rel)) {
      waiter->cb(Status::DeadlineExceeded("stabilization frontier behind cut at deadline"));
    }
  };
  if (!timers_->ScheduleAt(deadline, expire)) {
    // Timer engine already shut down: deliver the deadline outcome inline so
    // the frontier waiter cannot hang past teardown.
    expire();
  }
}

void ReplicatedStore::DrainReplication() const {
  // Fast path: nothing in flight, skip the lock entirely. (Safe even if the
  // final decrement's notify is still running: it only touches the shared
  // inflight block, which the shipment lambda co-owns.)
  if (inflight_->count.load(std::memory_order_acquire) == 0) {
    return;
  }
  if (SimScheduler* sim = SimScheduler::Active()) {
    // Cooperative drain: pump events until every shipment lands. Returning
    // with inflight remaining means the engine dropped shipments at shutdown
    // — nothing more can land, so waiting longer would only mask it.
    auto inflight = inflight_;
    sim->RunUntil(
        [inflight] { return inflight->count.load(std::memory_order_acquire) == 0; },
        TimePoint::max());
    return;
  }
  std::unique_lock<std::mutex> lock(inflight_->mu);
  // No lost wakeup: a shipment that decrements to zero after the predicate
  // loads a non-zero count must acquire inflight_->mu to notify, which orders
  // its notify after this wait begins.
  inflight_->cv.wait(lock,
                     [&] { return inflight_->count.load(std::memory_order_acquire) == 0; });
}

std::optional<StoredEntry> ReplicatedStore::Get(Region region, const std::string& key) const {
  auto entry = replica(region).Get(key);
  const_cast<StoreMetrics&>(metrics_).RecordRead(entry.has_value());
  return entry;
}

std::optional<StoredEntry> ReplicatedStore::StrongGet(Region caller,
                                                      const std::string& key) const {
  auto entry = authority_.Get(key);
  // Pay the WAN round trip to the authoritative copy (the key's origin); a
  // miss still costs the probe.
  const Region authority_region = entry.has_value() ? entry->origin : caller;
  SimulatedNetwork::Default().SleepRtt(caller, authority_region, 64,
                                       entry.has_value() ? entry->bytes.size() : 0);
  const_cast<StoreMetrics&>(metrics_).RecordRead(entry.has_value());
  return entry;
}

bool ReplicatedStore::IsVisible(Region region, const std::string& key, uint64_t version) const {
  // No replica at this region: nothing of this store's can be read (or be
  // stale) there, so the write is vacuously "visible" — same contract as
  // WaitFrontierAsync. Keeps unscoped barriers over locality-partitioned
  // deployments defined (wasted work, never an assert).
  if (!HasRegion(region)) {
    return true;
  }
  return replica(region).VersionOf(key) >= version;
}

// Injected wait faults surface as retryable Unavailable instead of letting
// the wait hang or lie about visibility: callers (shims, barriers) propagate
// the Status and may simply re-issue the wait.
Status ReplicatedStore::WaitVisible(Region region, const std::string& key, uint64_t version,
                                    Duration timeout) const {
  if (!HasRegion(region)) {
    return Status::Ok();  // vacuous: no replica there (see IsVisible)
  }
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->InjectWaitError(options_.name, region)) {
    return Status::Unavailable("injected wait error: " + options_.name);
  }
  Status status = replica(region).WaitVersion(key, version, DeadlineAfter(timeout));
  if (status.ok() && PropertyRegistry::Instance().deep_checks()) {
    // Cross-validate the wait contract against an independent read of the
    // replica table: an Ok wait that left the version invisible would be a
    // lie the barrier layer builds on.
    ANTIPODE_ALWAYS("store.wait_implies_visible", IsVisible(region, key, version));
  }
  return status;
}

void ReplicatedStore::WaitVisibleAsync(Region region, const std::string& key, uint64_t version,
                                       TimePoint deadline, VisibilityCallback cb) const {
  if (!HasRegion(region)) {
    cb(Status::Ok());  // vacuous: no replica there (see IsVisible)
    return;
  }
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->InjectWaitError(options_.name, region)) {
    cb(Status::Unavailable("injected wait error: " + options_.name));
    return;
  }
  replica(region).WaitVersionAsync(key, version, deadline, timers_, std::move(cb));
}

void ReplicatedStore::WaitVisibleBatchAsync(Region region, std::span<const KeyVersion> items,
                                            TimePoint deadline, VisibilityCallback cb) const {
  if (!HasRegion(region)) {
    cb(Status::Ok());  // vacuous: no replica there (see IsVisible)
    return;
  }
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->InjectWaitError(options_.name, region)) {
    cb(Status::Unavailable("injected wait error: " + options_.name));
    return;
  }
  replica(region).WaitVersionsAsync(items, deadline, timers_, std::move(cb));
}

WakeupStats ReplicatedStore::TotalWakeups() const {
  WakeupStats total;
  for (const auto& table : replicas_) {
    if (table == nullptr) {
      continue;
    }
    const WakeupStats stats = table->Wakeups();
    total.applies += stats.applies;
    total.waiters_notified += stats.waiters_notified;
    total.notify_all_wakeups += stats.notify_all_wakeups;
  }
  return total;
}

}  // namespace antipode
