#include "src/store/replicated_store.h"

#include <algorithm>
#include <cassert>

#include "src/net/network.h"

namespace antipode {

void ReplicaTable::Apply(const StoredEntry& entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(entry.key);
    if (it != entries_.end() && it->second.version >= entry.version) {
      return;  // stale replay
    }
    entries_[entry.key] = entry;
  }
  cv_.notify_all();
}

std::optional<StoredEntry> ReplicaTable::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

uint64_t ReplicaTable::VersionOf(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.version;
}

Status ReplicaTable::WaitVersion(const std::string& key, uint64_t version,
                                 TimePoint deadline) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto visible = [&] {
    auto it = entries_.find(key);
    return it != entries_.end() && it->second.version >= version;
  };
  if (deadline == TimePoint::max()) {
    cv_.wait(lock, visible);
    return Status::Ok();
  }
  if (cv_.wait_until(lock, deadline, visible)) {
    return Status::Ok();
  }
  return Status::DeadlineExceeded("write not visible before deadline: " + key);
}

std::vector<StoredEntry> ReplicaTable::ScanPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoredEntry> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.push_back(it->second);
  }
  return out;
}

size_t ReplicaTable::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

namespace {

// Decorrelates the lag samples of different stores that were configured with
// the same base seed: without this, two stores with identical sigma would
// draw near-identical jitter sequences and their replication race would be
// artificially deterministic.
ReplicationProfileOptions PerStoreProfile(ReplicationProfileOptions profile,
                                          const std::string& store_name) {
  profile.seed ^= std::hash<std::string>{}(store_name);
  return profile;
}

}  // namespace

ReplicatedStore::ReplicatedStore(ReplicatedStoreOptions options, RegionTopology* topology,
                                 TimerService* timers)
    : options_(std::move(options)),
      topology_(topology),
      timers_(timers),
      profile_(PerStoreProfile(options_.replication, options_.name), topology) {
  replicas_.resize(kNumRegions);
  for (Region region : options_.regions) {
    replicas_[static_cast<size_t>(RegionIndex(region))] = std::make_unique<ReplicaTable>();
  }
}

bool ReplicatedStore::HasRegion(Region region) const {
  return replicas_[static_cast<size_t>(RegionIndex(region))] != nullptr;
}

const ReplicaTable& ReplicatedStore::replica(Region region) const {
  const auto* table = replicas_[static_cast<size_t>(RegionIndex(region))].get();
  assert(table != nullptr && "store has no replica in this region");
  return *table;
}

ReplicaTable& ReplicatedStore::replica(Region region) {
  auto* table = replicas_[static_cast<size_t>(RegionIndex(region))].get();
  assert(table != nullptr && "store has no replica in this region");
  return *table;
}

uint64_t ReplicatedStore::NextVersion(const std::string& key) {
  std::lock_guard<std::mutex> lock(version_mu_);
  return ++versions_[key];
}

uint64_t ReplicatedStore::Put(Region origin, const std::string& key, std::string bytes,
                              size_t extra_overhead_bytes) {
  assert(HasRegion(origin) && "write at a region without a replica");
  StoredEntry entry;
  entry.key = key;
  entry.bytes = std::move(bytes);
  entry.version = NextVersion(key);
  entry.origin = origin;
  entry.write_time = SystemClock::Instance().Now();

  metrics_.RecordWrite(entry.bytes.size(),
                       options_.per_write_overhead_bytes + extra_overhead_bytes);

  // Synchronous apply at the origin and at the authority table. Origin
  // applies bypass the pause gate: the write is local, not replicated.
  authority_.Apply(entry);
  replica(origin).Apply(entry);
  if (apply_hook_) {
    apply_hook_(origin, entry);
  }

  // Asynchronous shipping to the other replicas.
  for (Region destination : options_.regions) {
    if (destination == origin) {
      continue;
    }
    const double lag_millis = profile_.SampleMillis(origin, destination, entry.bytes.size());
    metrics_.RecordReplicationLagMillis(lag_millis);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      ++inflight_applies_;
    }
    timers_->ScheduleAfter(TimeScale::FromModelMillis(lag_millis),
                           [this, destination, entry] {
                             ApplyAt(destination, entry);
                             {
                               std::lock_guard<std::mutex> lock(inflight_mu_);
                               --inflight_applies_;
                             }
                             inflight_cv_.notify_all();
                           });
  }
  return entry.version;
}

ReplicatedStore::~ReplicatedStore() { DrainReplication(); }

void ReplicatedStore::ApplyAt(Region region, const StoredEntry& entry) {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    if (paused_[static_cast<size_t>(RegionIndex(region))]) {
      stalled_[static_cast<size_t>(RegionIndex(region))].push_back(entry);
      return;
    }
  }
  replica(region).Apply(entry);
  if (apply_hook_) {
    apply_hook_(region, entry);
  }
}

void ReplicatedStore::PauseReplication(Region region) {
  std::lock_guard<std::mutex> lock(pause_mu_);
  paused_[static_cast<size_t>(RegionIndex(region))] = true;
}

void ReplicatedStore::ResumeReplication(Region region) {
  std::vector<StoredEntry> backlog;
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    paused_[static_cast<size_t>(RegionIndex(region))] = false;
    backlog.swap(stalled_[static_cast<size_t>(RegionIndex(region))]);
  }
  for (const auto& entry : backlog) {
    replica(region).Apply(entry);
    if (apply_hook_) {
      apply_hook_(region, entry);
    }
  }
}

bool ReplicatedStore::IsReplicationPaused(Region region) const {
  std::lock_guard<std::mutex> lock(pause_mu_);
  return paused_[static_cast<size_t>(RegionIndex(region))];
}

void ReplicatedStore::DrainReplication() const {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [&] { return inflight_applies_ == 0; });
}

std::optional<StoredEntry> ReplicatedStore::Get(Region region, const std::string& key) const {
  auto entry = replica(region).Get(key);
  const_cast<StoreMetrics&>(metrics_).RecordRead(entry.has_value());
  return entry;
}

std::optional<StoredEntry> ReplicatedStore::StrongGet(Region caller,
                                                      const std::string& key) const {
  auto entry = authority_.Get(key);
  // Pay the WAN round trip to the authoritative copy (the key's origin); a
  // miss still costs the probe.
  const Region authority_region = entry.has_value() ? entry->origin : caller;
  SimulatedNetwork::Default().SleepRtt(caller, authority_region, 64,
                                       entry.has_value() ? entry->bytes.size() : 0);
  const_cast<StoreMetrics&>(metrics_).RecordRead(entry.has_value());
  return entry;
}

bool ReplicatedStore::IsVisible(Region region, const std::string& key, uint64_t version) const {
  return replica(region).VersionOf(key) >= version;
}

Status ReplicatedStore::WaitVisible(Region region, const std::string& key, uint64_t version,
                                    Duration timeout) const {
  const TimePoint deadline = timeout == Duration::max()
                                 ? TimePoint::max()
                                 : SystemClock::Instance().Now() + timeout;
  return replica(region).WaitVersion(key, version, deadline);
}

}  // namespace antipode
