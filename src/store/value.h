// A small dynamically-typed value (string / int64 / double / bool) plus a
// flat field map — the document model shared by the MongoDB-like DocStore
// and the DynamoDB-like DynamoStore.

#ifndef SRC_STORE_VALUE_H_
#define SRC_STORE_VALUE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "src/common/serialization.h"
#include "src/common/status.h"

namespace antipode {

class Value {
 public:
  Value() : data_(std::string()) {}
  Value(std::string v) : data_(std::move(v)) {}
  Value(const char* v) : data_(std::string(v)) {}
  Value(int64_t v) : data_(v) {}
  Value(double v) : data_(v) {}
  Value(bool v) : data_(v) {}

  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }

  const std::string& as_string() const { return std::get<std::string>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  bool as_bool() const { return std::get<bool>(data_); }

  bool operator==(const Value& other) const { return data_ == other.data_; }

  // Approximate stored size in bytes (for metrics).
  size_t ByteSize() const;

  void SerializeTo(Serializer& s) const;
  static Result<Value> DeserializeFrom(Deserializer& d);

 private:
  std::variant<std::string, int64_t, double, bool> data_;
};

// An ordered field map — a document (DocStore) or an item (DynamoStore).
class Document {
 public:
  Document() = default;
  Document(std::initializer_list<std::pair<const std::string, Value>> fields)
      : fields_(fields) {}

  void Set(std::string field, Value value) { fields_[std::move(field)] = std::move(value); }
  std::optional<Value> Get(const std::string& field) const {
    auto it = fields_.find(field);
    if (it == fields_.end()) {
      return std::nullopt;
    }
    return it->second;
  }
  bool Has(const std::string& field) const { return fields_.count(field) > 0; }
  void Erase(const std::string& field) { fields_.erase(field); }

  const std::map<std::string, Value>& fields() const { return fields_; }
  size_t FieldCount() const { return fields_.size(); }
  size_t ByteSize() const;

  bool operator==(const Document& other) const { return fields_ == other.fields_; }

  std::string Serialize() const;
  static Result<Document> Deserialize(std::string_view data);

 private:
  std::map<std::string, Value> fields_;
};

}  // namespace antipode

#endif  // SRC_STORE_VALUE_H_
