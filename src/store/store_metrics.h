// Per-store observability facade over the process-wide `MetricsRegistry`.
//
// Historically this class owned its own ad-hoc atomics; they now live in the
// registry (labelled by store), so one `MetricsRegistry::Snapshot()` sees
// every store alongside the RPC/network instruments, and `Reset()` is the
// registry's coherent drain instead of the old non-atomic multi-field wipe
// (which raced concurrent `RecordWrite`s: a reset could zero `writes_` after
// a writer bumped it but before it recorded `bytes_written_`, leaving the
// counters mutually inconsistent). Instrument pointers are resolved once at
// construction, so the record paths never touch the registry lock.
//
// The Table 3 experiment (object-size increase with Antipode metadata) is
// computed directly from these: run the same workload with and without the
// shim and compare `MeanObjectBytes`.

#ifndef SRC_STORE_STORE_METRICS_H_
#define SRC_STORE_STORE_METRICS_H_

#include <cstdint>
#include <string>

#include "src/common/histogram.h"
#include "src/obs/metrics.h"

namespace antipode {

class StoreMetrics {
 public:
  // Instruments are registered under the given store label. The default
  // constructor exists for containers/tests; it labels the store "unnamed".
  explicit StoreMetrics(const std::string& store_name = "unnamed",
                        MetricsRegistry* registry = &MetricsRegistry::Default());

  // `payload_bytes` is what the client handed the store; `overhead_bytes`
  // captures schema-level extras (e.g. a secondary index entry on the lineage
  // column) that inflate the stored object beyond its payload.
  void RecordWrite(size_t payload_bytes, size_t overhead_bytes = 0) {
    writes_->Increment();
    bytes_written_->Increment(payload_bytes + overhead_bytes);
    object_sizes_->Record(static_cast<double>(payload_bytes + overhead_bytes));
  }

  void RecordRead(bool hit) {
    reads_->Increment();
    if (!hit) {
      read_misses_->Increment();
    }
  }

  void RecordReplicationLagMillis(double model_millis) { replication_lag_->Record(model_millis); }

  uint64_t writes() const { return writes_->value(); }
  uint64_t reads() const { return reads_->value(); }
  uint64_t read_misses() const { return read_misses_->value(); }
  uint64_t bytes_written() const { return bytes_written_->value(); }

  double MeanObjectBytes() const { return object_sizes_->Snapshot().Mean(); }
  Histogram ObjectSizes() const { return object_sizes_->Snapshot(); }
  Histogram ReplicationLag() const { return replication_lag_->Snapshot(); }

  // Coherent reset: each instrument is drained atomically, so a concurrent
  // RecordWrite lands entirely in this window or entirely in the next one.
  void Reset() {
    writes_->Drain();
    reads_->Drain();
    read_misses_->Drain();
    bytes_written_->Drain();
    object_sizes_->Drain();
    replication_lag_->Drain();
  }

 private:
  Counter* writes_;
  Counter* reads_;
  Counter* read_misses_;
  Counter* bytes_written_;
  HistogramMetric* object_sizes_;
  HistogramMetric* replication_lag_;
};

}  // namespace antipode

#endif  // SRC_STORE_STORE_METRICS_H_
