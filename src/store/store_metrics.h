// Per-store counters and object-size accounting. The Table 3 experiment
// (object-size increase with Antipode metadata) is computed directly from
// these: run the same workload with and without the shim and compare
// `MeanObjectBytes`.

#ifndef SRC_STORE_STORE_METRICS_H_
#define SRC_STORE_STORE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "src/common/histogram.h"

namespace antipode {

class StoreMetrics {
 public:
  // `payload_bytes` is what the client handed the store; `overhead_bytes`
  // captures schema-level extras (e.g. a secondary index entry on the lineage
  // column) that inflate the stored object beyond its payload.
  void RecordWrite(size_t payload_bytes, size_t overhead_bytes = 0) {
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(payload_bytes + overhead_bytes, std::memory_order_relaxed);
    object_sizes_.Record(static_cast<double>(payload_bytes + overhead_bytes));
  }

  void RecordRead(bool hit) {
    reads_.fetch_add(1, std::memory_order_relaxed);
    if (!hit) {
      read_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void RecordReplicationLagMillis(double model_millis) { replication_lag_.Record(model_millis); }

  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t read_misses() const { return read_misses_.load(std::memory_order_relaxed); }
  uint64_t bytes_written() const { return bytes_written_.load(std::memory_order_relaxed); }

  double MeanObjectBytes() const { return object_sizes_.Snapshot().Mean(); }
  Histogram ObjectSizes() const { return object_sizes_.Snapshot(); }
  Histogram ReplicationLag() const { return replication_lag_.Snapshot(); }

  void Reset() {
    writes_ = 0;
    reads_ = 0;
    read_misses_ = 0;
    bytes_written_ = 0;
    object_sizes_.Reset();
    replication_lag_.Reset();
  }

 private:
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> read_misses_{0};
  std::atomic<uint64_t> bytes_written_{0};
  ConcurrentHistogram object_sizes_;
  ConcurrentHistogram replication_lag_;
};

}  // namespace antipode

#endif  // SRC_STORE_STORE_METRICS_H_
