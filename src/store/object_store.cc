#include "src/store/object_store.h"

namespace antipode {

std::vector<std::string> ObjectStore::ListObjects(Region region,
                                                  const std::string& bucket) const {
  std::vector<std::string> keys;
  const std::string prefix = bucket + "/";
  for (const auto& entry : replica(region).ScanPrefix(prefix)) {
    if (!entry.bytes.empty()) {
      keys.push_back(entry.key.substr(prefix.size()));
    }
  }
  return keys;
}

ReplicatedStoreOptions ObjectStore::DefaultOptions(std::string name,
                                                   std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  // Bimodal: 80% of objects replicate within seconds, 20% take ~minutes.
  options.replication.median_millis = 3500.0;
  options.replication.sigma = 0.6;
  options.replication.slow_mode_probability = 0.20;
  options.replication.slow_mode_median_millis = 80000.0;
  options.replication.slow_mode_sigma = 0.8;
  options.replication.payload_millis_per_mib = 80.0;
  return options;
}

}  // namespace antipode
