#include "src/store/store_metrics.h"

namespace antipode {

StoreMetrics::StoreMetrics(const std::string& store_name, MetricsRegistry* registry)
    : writes_(registry->GetCounter("store.writes", {{"store", store_name}})),
      reads_(registry->GetCounter("store.reads", {{"store", store_name}})),
      read_misses_(registry->GetCounter("store.read_misses", {{"store", store_name}})),
      bytes_written_(registry->GetCounter("store.bytes_written", {{"store", store_name}})),
      object_sizes_(registry->GetHistogram("store.object_bytes", {{"store", store_name}})),
      replication_lag_(
          registry->GetHistogram("store.replication_lag_model_ms", {{"store", store_name}})) {}

}  // namespace antipode
