#include "src/store/sql_store.h"

#include <algorithm>

namespace antipode {
namespace {

std::string PkToString(const Value& pk) {
  if (pk.is_string()) {
    return pk.as_string();
  }
  if (pk.is_int()) {
    return std::to_string(pk.as_int());
  }
  if (pk.is_double()) {
    return std::to_string(pk.as_double());
  }
  return pk.as_bool() ? "true" : "false";
}

}  // namespace

ReplicatedStoreOptions SqlStore::DefaultOptions(std::string name, std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  options.replication.median_millis = 800.0;
  options.replication.sigma = 0.2;
  options.replication.payload_millis_per_mib = 30.0;
  return options;
}

std::string SqlStore::RowKey(const std::string& table, const Value& pk) {
  return table + "/" + PkToString(pk);
}

Status SqlStore::CreateTable(const std::string& table, std::vector<std::string> columns,
                             std::string primary_key) {
  if (std::find(columns.begin(), columns.end(), primary_key) == columns.end()) {
    return Status::InvalidArgument("primary key not among columns: " + primary_key);
  }
  std::lock_guard<std::mutex> lock(schema_mu_);
  if (tables_.count(table) > 0) {
    return Status::AlreadyExists("table exists: " + table);
  }
  tables_[table] = TableMeta{std::move(columns), std::move(primary_key), {}};
  return Status::Ok();
}

Status SqlStore::AddColumn(const std::string& table, const std::string& column) {
  std::lock_guard<std::mutex> lock(schema_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  auto& columns = it->second.columns;
  if (std::find(columns.begin(), columns.end(), column) != columns.end()) {
    return Status::AlreadyExists("column exists: " + column);
  }
  columns.push_back(column);
  return Status::Ok();
}

Status SqlStore::CreateIndex(const std::string& table, const std::string& column) {
  std::lock_guard<std::mutex> lock(schema_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  const auto& columns = it->second.columns;
  if (std::find(columns.begin(), columns.end(), column) == columns.end()) {
    return Status::NotFound("no such column: " + column);
  }
  it->second.indexes.insert(column);
  return Status::Ok();
}

bool SqlStore::HasIndex(const std::string& table, const std::string& column) const {
  std::lock_guard<std::mutex> lock(schema_mu_);
  auto it = tables_.find(table);
  return it != tables_.end() && it->second.indexes.count(column) > 0;
}

Result<std::string> SqlStore::PrimaryKeyColumn(const std::string& table) const {
  std::lock_guard<std::mutex> lock(schema_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  return it->second.primary_key;
}

Result<const SqlStore::TableMeta*> SqlStore::FindTable(const std::string& table) const {
  std::lock_guard<std::mutex> lock(schema_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  return const_cast<const TableMeta*>(&it->second);
}

Result<uint64_t> SqlStore::Insert(Region region, const std::string& table, const Row& row) {
  auto meta = FindTable(table);
  if (!meta.ok()) {
    return meta.status();
  }
  auto pk = row.Get((*meta)->primary_key);
  if (!pk.has_value()) {
    return Status::InvalidArgument("row missing primary key: " + (*meta)->primary_key);
  }
  for (const auto& [field, value] : row.fields()) {
    const auto& columns = (*meta)->columns;
    if (std::find(columns.begin(), columns.end(), field) == columns.end()) {
      return Status::InvalidArgument("unknown column: " + field);
    }
  }
  size_t index_overhead = 0;
  {
    std::lock_guard<std::mutex> lock(schema_mu_);
    index_overhead = tables_.at(table).indexes.size() * kIndexEntryOverheadBytes;
  }
  return Put(region, RowKey(table, *pk), row.Serialize(), index_overhead);
}

std::optional<Row> SqlStore::SelectByPk(Region region, const std::string& table,
                                        const Value& pk) const {
  auto entry = Get(region, RowKey(table, pk));
  if (!entry.has_value() || entry->bytes.empty()) {
    return std::nullopt;
  }
  auto row = Row::Deserialize(entry->bytes);
  if (!row.ok()) {
    return std::nullopt;
  }
  return std::move(*row);
}

std::vector<Row> SqlStore::SelectWhere(Region region, const std::string& table,
                                       const std::string& column, const Value& value) const {
  std::vector<Row> out;
  for (const auto& entry : replica(region).ScanPrefix(table + "/")) {
    auto row = Row::Deserialize(entry.bytes);
    if (!row.ok()) {
      continue;
    }
    auto field = row->Get(column);
    if (field.has_value() && *field == value) {
      out.push_back(std::move(*row));
    }
  }
  return out;
}

Result<uint64_t> SqlStore::DeleteRow(Region region, const std::string& table, const Value& pk) {
  auto meta = FindTable(table);
  if (!meta.ok()) {
    return meta.status();
  }
  return Put(region, RowKey(table, pk), std::string());
}

Result<uint64_t> SqlStore::UpdateRow(Region region, const std::string& table, const Value& pk,
                                     const std::string& column, const Value& value) {
  auto meta = FindTable(table);
  if (!meta.ok()) {
    return meta.status();
  }
  auto current = SelectByPk(region, table, pk);
  if (!current.has_value()) {
    return Status::NotFound("no row with pk in " + table);
  }
  current->Set(column, value);
  return Insert(region, table, *current);
}

}  // namespace antipode
