#include "src/store/value.h"

namespace antipode {
namespace {

enum class ValueTag : uint8_t { kString = 0, kInt = 1, kDouble = 2, kBool = 3 };

}  // namespace

size_t Value::ByteSize() const {
  if (is_string()) {
    return as_string().size() + 1;
  }
  return 9;  // tag + 8-byte scalar
}

void Value::SerializeTo(Serializer& s) const {
  if (is_string()) {
    s.WriteUint8(static_cast<uint8_t>(ValueTag::kString));
    s.WriteString(as_string());
  } else if (is_int()) {
    s.WriteUint8(static_cast<uint8_t>(ValueTag::kInt));
    s.WriteUint64(static_cast<uint64_t>(as_int()));
  } else if (is_double()) {
    s.WriteUint8(static_cast<uint8_t>(ValueTag::kDouble));
    uint64_t bits = 0;
    const double d = as_double();
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    s.WriteUint64(bits);
  } else {
    s.WriteUint8(static_cast<uint8_t>(ValueTag::kBool));
    s.WriteUint8(as_bool() ? 1 : 0);
  }
}

Result<Value> Value::DeserializeFrom(Deserializer& d) {
  auto tag = d.ReadUint8();
  if (!tag.ok()) {
    return tag.status();
  }
  switch (static_cast<ValueTag>(*tag)) {
    case ValueTag::kString: {
      auto s = d.ReadString();
      if (!s.ok()) {
        return s.status();
      }
      return Value(std::move(*s));
    }
    case ValueTag::kInt: {
      auto v = d.ReadUint64();
      if (!v.ok()) {
        return v.status();
      }
      return Value(static_cast<int64_t>(*v));
    }
    case ValueTag::kDouble: {
      auto v = d.ReadUint64();
      if (!v.ok()) {
        return v.status();
      }
      double out = 0;
      const uint64_t bits = *v;
      std::memcpy(&out, &bits, sizeof(out));
      return Value(out);
    }
    case ValueTag::kBool: {
      auto v = d.ReadUint8();
      if (!v.ok()) {
        return v.status();
      }
      return Value(*v != 0);
    }
  }
  return Status::InvalidArgument("unknown value tag");
}

size_t Document::ByteSize() const {
  size_t total = 0;
  for (const auto& [field, value] : fields_) {
    total += field.size() + value.ByteSize() + 2;
  }
  return total;
}

std::string Document::Serialize() const {
  Serializer s;
  s.WriteVarint(fields_.size());
  for (const auto& [field, value] : fields_) {
    s.WriteString(field);
    value.SerializeTo(s);
  }
  return s.Release();
}

Result<Document> Document::Deserialize(std::string_view data) {
  Deserializer d(data);
  auto count = d.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  Document doc;
  for (uint64_t i = 0; i < *count; ++i) {
    auto field = d.ReadString();
    if (!field.ok()) {
      return field.status();
    }
    auto value = Value::DeserializeFrom(d);
    if (!value.ok()) {
      return value.status();
    }
    doc.Set(std::move(*field), std::move(*value));
  }
  return doc;
}

}  // namespace antipode
