// MySQL-like relational store: named tables with a declared schema, typed
// rows addressed by a primary-key column, predicate selects, and secondary
// indexes. Replication models binlog shipping (~1 s propagation, paper §7.4).
//
// Secondary indexes matter for Table 3: adding a lineage column *and an index
// on it* is what inflated MySQL rows by ~14 KB in the paper. `CreateIndex`
// therefore both enables indexed lookups and adds a per-row write
// amplification charge that shows up in the store metrics.

#ifndef SRC_STORE_SQL_STORE_H_
#define SRC_STORE_SQL_STORE_H_

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/store/replicated_store.h"
#include "src/store/value.h"

namespace antipode {

using Row = Document;

class SqlStore : public ReplicatedStore {
 public:
  static ReplicatedStoreOptions DefaultOptions(std::string name, std::vector<Region> regions);

  explicit SqlStore(ReplicatedStoreOptions options,
                    RegionTopology* topology = &RegionTopology::Default(),
                    TimerService* timers = &TimerService::Shared())
      : ReplicatedStore(std::move(options), topology, timers) {}

  // Declares a table. `columns` must include `primary_key`.
  Status CreateTable(const std::string& table, std::vector<std::string> columns,
                     std::string primary_key);

  // Adds a column to an existing table (rows without it read as absent) —
  // the one-time schema change shims perform (§6.4).
  Status AddColumn(const std::string& table, const std::string& column);

  // Creates a secondary index on `column`. Modelled as a per-row write
  // amplification of `kIndexEntryOverheadBytes` on subsequent writes.
  Status CreateIndex(const std::string& table, const std::string& column);

  // Inserts or replaces the row identified by its primary-key field.
  // Returns the write's version. Fails when the row is missing the primary
  // key or references an undeclared table.
  Result<uint64_t> Insert(Region region, const std::string& table, const Row& row);

  // Primary-key point read at the region's replica.
  std::optional<Row> SelectByPk(Region region, const std::string& table,
                                const Value& pk) const;

  // Predicate scan: rows where `column == value`. Uses the replica snapshot;
  // indexed columns are noted in the plan metrics but the result is the same.
  std::vector<Row> SelectWhere(Region region, const std::string& table,
                               const std::string& column, const Value& value) const;

  // Read-modify-write of one row by primary key at the authority copy.
  Result<uint64_t> UpdateRow(Region region, const std::string& table, const Value& pk,
                             const std::string& column, const Value& value);

  // Tombstones a row (the deletion replicates like a write).
  Result<uint64_t> DeleteRow(Region region, const std::string& table, const Value& pk);

  // Number of rows matching `column == value` at the region's replica.
  size_t CountWhere(Region region, const std::string& table, const std::string& column,
                    const Value& value) const {
    return SelectWhere(region, table, column, value).size();
  }

  // Key under which a row lives in the underlying replicated engine; shims
  // need it to build write identifiers.
  static std::string RowKey(const std::string& table, const Value& pk);

  bool HasIndex(const std::string& table, const std::string& column) const;

  // Declared primary-key column of a table.
  Result<std::string> PrimaryKeyColumn(const std::string& table) const;

  static constexpr size_t kIndexEntryOverheadBytes = 14 * 1024;

 private:
  struct TableMeta {
    std::vector<std::string> columns;
    std::string primary_key;
    std::set<std::string> indexes;
  };

  Result<const TableMeta*> FindTable(const std::string& table) const;

  mutable std::mutex schema_mu_;
  std::map<std::string, TableMeta> tables_;
};

}  // namespace antipode

#endif  // SRC_STORE_SQL_STORE_H_
