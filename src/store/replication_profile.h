// Replication-latency profile of a datastore: how long after a write at the
// origin the update becomes visible at a remote replica. Modelled as a
// (possibly bimodal) lognormal shipping delay plus the WAN one-way delay plus
// a payload/bandwidth term. The bimodal mixture captures stores like S3 whose
// cross-region replication is usually seconds but occasionally minutes
// (AWS documents up to 15 minutes — paper §7.4).

#ifndef SRC_STORE_REPLICATION_PROFILE_H_
#define SRC_STORE_REPLICATION_PROFILE_H_

#include <mutex>

#include "src/common/random.h"
#include "src/net/region.h"
#include "src/net/topology.h"

namespace antipode {

struct ReplicationProfileOptions {
  // Primary mode of the shipping delay (model milliseconds).
  double median_millis = 500.0;
  double sigma = 0.3;

  // Optional slow second mode (probability 0 disables it).
  double slow_mode_probability = 0.0;
  double slow_mode_median_millis = 0.0;
  double slow_mode_sigma = 0.5;

  // Extra model-milliseconds per MiB shipped (replication bandwidth).
  double payload_millis_per_mib = 20.0;

  // Multiplier on the WAN one-way delay between origin and replica. 1.0 for
  // pipelined protocols; >1 for chatty protocols whose lag compounds with
  // distance (MongoDB-style, §7.3).
  double network_delay_multiplier = 1.0;

  uint64_t seed = 42;
};

class ReplicationProfile {
 public:
  ReplicationProfile(ReplicationProfileOptions options, RegionTopology* topology);

  // Samples the visibility delay for shipping `payload_bytes` from `origin`
  // to `destination`, in model milliseconds.
  double SampleMillis(Region origin, Region destination, size_t payload_bytes);

  const ReplicationProfileOptions& options() const { return options_; }

 private:
  ReplicationProfileOptions options_;
  RegionTopology* topology_;
  std::mutex mu_;
  Rng rng_;
};

}  // namespace antipode

#endif  // SRC_STORE_REPLICATION_PROFILE_H_
