// RabbitMQ/AMQ-like message broker: named queues mirrored across regions.
// A message published at its origin is delivered to that region's consumer
// immediately and to each remote region's consumer once the mirror has
// replicated it (which is exactly the race Table 1 and Fig. 8 measure).
//
// Delivery is at-least-once in spirit but the simulation is reliable, so each
// consumer sees each message exactly once. Consumers run on their own
// executor, never on the replication timer thread.

#ifndef SRC_STORE_QUEUE_STORE_H_
#define SRC_STORE_QUEUE_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/store/replicated_store.h"

namespace antipode {

// Ack timeout for broker deliveries: when the fault injector drops a
// delivery (kQueueDropDelivery — the consumer never acked), the broker
// redelivers the message this much model time later. Redelivery timers count
// as in-flight replication, so DrainReplication covers them.
inline constexpr double kBrokerRedeliveryModelMillis = 200.0;

struct BrokerMessage {
  std::string channel;  // queue or topic name
  std::string payload;
  std::string key;      // storage key of the message entry
  uint64_t version = 0;
  Region delivered_at = Region::kLocal;
  // Producer-side span context (stamped onto the stored entry by Put), so a
  // consumer execution can join the publishing request's trace.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

using MessageHandler = std::function<void(const BrokerMessage&)>;

class QueueStore : public ReplicatedStore {
 public:
  static ReplicatedStoreOptions DefaultOptions(std::string name, std::vector<Region> regions);

  QueueStore(ReplicatedStoreOptions options,
             RegionTopology* topology = &RegionTopology::Default(),
             TimerService* timers = &TimerService::Shared());

  // Drain while the subscriber map is still alive (the apply hook uses it).
  ~QueueStore() override { DrainReplication(); }

  // Registers the consumer for (region, queue). One consumer per queue per
  // region; messages are dispatched onto `executor`. Register before
  // publishing — earlier messages are not replayed.
  void Subscribe(Region region, const std::string& queue, ThreadPool* executor,
                 MessageHandler handler);

  // Publishes a message; returns its version (its write identifier is
  // ⟨store, key, version⟩ with key = MessageKey(queue, seq)).
  uint64_t Publish(Region origin, const std::string& queue, std::string payload);

  // Key assigned to the most recently published message (exposed so shims
  // can form write identifiers). Thread-safe per publish via return pairing:
  // prefer PublishWithKey when the key is needed.
  struct PublishResult {
    std::string key;
    uint64_t version;
  };
  PublishResult PublishWithKey(Region origin, const std::string& queue, std::string payload);

 private:
  void OnApply(Region region, const StoredEntry& entry);

  std::atomic<uint64_t> next_sequence_{1};
  mutable std::mutex subscribers_mu_;
  // (region index, queue) -> consumer
  std::map<std::pair<int, std::string>, std::pair<ThreadPool*, MessageHandler>> subscribers_;
};

}  // namespace antipode

#endif  // SRC_STORE_QUEUE_STORE_H_
