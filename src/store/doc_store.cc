#include "src/store/doc_store.h"

namespace antipode {

ReplicatedStoreOptions DocStore::DefaultOptions(std::string name, std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  // Small base lag, but the oplog tail compounds with WAN distance: the
  // multiplier makes US→SG lag ~2x US→EU, matching the violation-rate gap the
  // paper reports (0.1% vs 34%).
  options.replication.median_millis = 50.0;
  options.replication.sigma = 0.15;
  options.replication.network_delay_multiplier = 8.0;
  options.replication.payload_millis_per_mib = 25.0;
  return options;
}

Result<uint64_t> DocStore::UpdateField(Region region, const std::string& collection,
                                       const std::string& id, const std::string& field,
                                       const Value& value) {
  auto doc = FindById(region, collection, id);
  if (!doc.has_value()) {
    return Status::NotFound("no document " + collection + "/" + id);
  }
  doc->Set(field, value);
  return InsertDoc(region, collection, id, *doc);
}

size_t DocStore::CountCollection(Region region, const std::string& collection) const {
  size_t count = 0;
  for (const auto& entry : replica(region).ScanPrefix(collection + "/")) {
    if (!entry.bytes.empty()) {
      ++count;
    }
  }
  return count;
}

std::vector<Document> DocStore::FindWhere(Region region, const std::string& collection,
                                          const std::string& field, const Value& value) const {
  std::vector<Document> out;
  for (const auto& entry : replica(region).ScanPrefix(collection + "/")) {
    auto doc = Document::Deserialize(entry.bytes);
    if (!doc.ok()) {
      continue;
    }
    auto f = doc->Get(field);
    if (f.has_value() && *f == value) {
      out.push_back(std::move(*doc));
    }
  }
  return out;
}

}  // namespace antipode
