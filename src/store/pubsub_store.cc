#include "src/store/pubsub_store.h"

namespace antipode {
namespace {

std::string TopicOfKey(const std::string& key) {
  const size_t slash = key.rfind('/');
  return slash == std::string::npos ? key : key.substr(0, slash);
}

}  // namespace

ReplicatedStoreOptions PubSubStore::DefaultOptions(std::string name,
                                                   std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  // SNS-style: notifications fan out across regions quickly, with a fairly
  // wide spread (push pipelines share fan-out infrastructure).
  options.replication.median_millis = 180.0;
  options.replication.sigma = 0.55;
  options.replication.payload_millis_per_mib = 40.0;
  return options;
}

PubSubStore::PubSubStore(ReplicatedStoreOptions options, RegionTopology* topology,
                         TimerService* timers)
    : ReplicatedStore(std::move(options), topology, timers) {
  SetApplyHook([this](Region region, const StoredEntry& entry) { OnApply(region, entry); });
}

void PubSubStore::Subscribe(Region region, const std::string& topic, ThreadPool* executor,
                            MessageHandler handler) {
  std::lock_guard<std::mutex> lock(subscribers_mu_);
  subscribers_[{RegionIndex(region), topic}].emplace_back(executor, std::move(handler));
}

PubSubStore::PublishResult PubSubStore::PublishWithKey(Region origin, const std::string& topic,
                                                       std::string payload) {
  const uint64_t sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  std::string key = topic + "/" + std::to_string(sequence);
  const uint64_t version = Put(origin, key, std::move(payload));
  return PublishResult{std::move(key), version};
}

void PubSubStore::OnApply(Region region, const StoredEntry& entry) {
  std::vector<std::pair<ThreadPool*, MessageHandler>> targets;
  const std::string topic = TopicOfKey(entry.key);
  {
    std::lock_guard<std::mutex> lock(subscribers_mu_);
    auto it = subscribers_.find({RegionIndex(region), topic});
    if (it == subscribers_.end()) {
      return;
    }
    targets = it->second;
  }
  for (auto& [executor, handler] : targets) {
    BrokerMessage message{topic,         entry.bytes,    entry.key,
                          entry.version, region,         entry.trace_id,
                          entry.parent_span_id};
    executor->Submit([handler, message] { handler(message); });
  }
}

}  // namespace antipode
