#include "src/store/pubsub_store.h"

#include "src/obs/metrics.h"
#include "src/store/queue_store.h"

namespace antipode {
namespace {

std::string TopicOfKey(const std::string& key) {
  const size_t slash = key.rfind('/');
  return slash == std::string::npos ? key : key.substr(0, slash);
}

}  // namespace

ReplicatedStoreOptions PubSubStore::DefaultOptions(std::string name,
                                                   std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  // SNS-style: notifications fan out across regions quickly, with a fairly
  // wide spread (push pipelines share fan-out infrastructure).
  options.replication.median_millis = 180.0;
  options.replication.sigma = 0.55;
  options.replication.payload_millis_per_mib = 40.0;
  return options;
}

PubSubStore::PubSubStore(ReplicatedStoreOptions options, RegionTopology* topology,
                         TimerService* timers)
    : ReplicatedStore(std::move(options), topology, timers) {
  SetApplyHook([this](Region region, const StoredEntry& entry) { OnApply(region, entry); });
}

void PubSubStore::Subscribe(Region region, const std::string& topic, ThreadPool* executor,
                            MessageHandler handler) {
  std::lock_guard<std::mutex> lock(subscribers_mu_);
  subscribers_[{RegionIndex(region), topic}].emplace_back(executor, std::move(handler));
}

PubSubStore::PublishResult PubSubStore::PublishWithKey(Region origin, const std::string& topic,
                                                       std::string payload) {
  const uint64_t sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  std::string key = topic + "/" + std::to_string(sequence);
  const uint64_t version = Put(origin, key, std::move(payload));
  return PublishResult{std::move(key), version};
}

void PubSubStore::OnApply(Region region, const StoredEntry& entry) {
  // Lost fan-out (subscriber crash before ack): redeliver after the ack
  // timeout instead of losing the lineage-carrying notification.
  if (fault_injector() != nullptr && fault_injector()->DropDelivery(name(), region)) {
    MetricsRegistry::Default().GetCounter("queue.redeliveries", {{"store", name()}})->Increment();
    auto copy = std::make_shared<const StoredEntry>(entry);
    ScheduleStoreWork(TimeScale::FromModelMillis(kBrokerRedeliveryModelMillis),
                      std::hash<std::string>{}(entry.key) ^ 0x5ca1ab1eULL,
                      [this, region, copy] { OnApply(region, *copy); });
    return;
  }
  std::vector<std::pair<ThreadPool*, MessageHandler>> targets;
  const std::string topic = TopicOfKey(entry.key);
  {
    std::lock_guard<std::mutex> lock(subscribers_mu_);
    auto it = subscribers_.find({RegionIndex(region), topic});
    if (it == subscribers_.end()) {
      return;
    }
    targets = it->second;
  }
  for (auto& [executor, handler] : targets) {
    BrokerMessage message{topic,         entry.bytes,    entry.key,
                          entry.version, region,         entry.trace_id,
                          entry.parent_span_id};
    executor->Submit([handler, message] { handler(message); });
  }
}

}  // namespace antipode
