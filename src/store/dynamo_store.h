// DynamoDB-like item store: tables of attribute maps with a 400 KB item-size
// cap, eventually-consistent reads by default and an opt-in strongly
// consistent read (which is how the paper implements `wait` for Dynamo,
// §6.4 [8]). Two replication profiles are provided: the fast global-table
// path used for regular items, and the much slower stream/trigger path the
// paper hypothesizes for notification payloads ("a less optimized
// replication for the notification's specific type of payload", §2.3).

#ifndef SRC_STORE_DYNAMO_STORE_H_
#define SRC_STORE_DYNAMO_STORE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/store/replicated_store.h"
#include "src/store/value.h"

namespace antipode {

class DynamoStore : public ReplicatedStore {
 public:
  static constexpr size_t kMaxItemBytes = 400 * 1024;

  // Regular global-table replication (fast).
  static ReplicatedStoreOptions DefaultOptions(std::string name, std::vector<Region> regions);

  // Stream/trigger delivery profile used when Dynamo plays the notifier role.
  static ReplicatedStoreOptions NotifierOptions(std::string name, std::vector<Region> regions);

  explicit DynamoStore(ReplicatedStoreOptions options,
                       RegionTopology* topology = &RegionTopology::Default(),
                       TimerService* timers = &TimerService::Shared())
      : ReplicatedStore(std::move(options), topology, timers) {}

  // Returns the write's version; fails when the item exceeds the size cap.
  Result<uint64_t> PutItem(Region region, const std::string& table, const std::string& key,
                           const Document& item);

  // Eventually consistent read from the local replica.
  std::optional<Document> GetItem(Region region, const std::string& table,
                                  const std::string& key) const;

  // Strongly consistent read: fetches the authoritative copy, paying a WAN
  // round trip.
  std::optional<Document> GetItemConsistent(Region region, const std::string& table,
                                            const std::string& key) const;

  static std::string ItemKey(const std::string& table, const std::string& key) {
    return table + "/" + key;
  }
};

}  // namespace antipode

#endif  // SRC_STORE_DYNAMO_STORE_H_
