#include "src/store/queue_store.h"

#include "src/obs/metrics.h"

namespace antipode {
namespace {

std::string MessageKey(const std::string& queue, uint64_t sequence) {
  return queue + "/" + std::to_string(sequence);
}

// The channel name is the key prefix before the final '/'.
std::string ChannelOfKey(const std::string& key) {
  const size_t slash = key.rfind('/');
  return slash == std::string::npos ? key : key.substr(0, slash);
}

}  // namespace

ReplicatedStoreOptions QueueStore::DefaultOptions(std::string name,
                                                  std::vector<Region> regions) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = std::move(regions);
  options.replication.median_millis = 700.0;
  options.replication.sigma = 0.15;
  options.replication.payload_millis_per_mib = 40.0;
  return options;
}

QueueStore::QueueStore(ReplicatedStoreOptions options, RegionTopology* topology,
                       TimerService* timers)
    : ReplicatedStore(std::move(options), topology, timers) {
  SetApplyHook([this](Region region, const StoredEntry& entry) { OnApply(region, entry); });
}

void QueueStore::Subscribe(Region region, const std::string& queue, ThreadPool* executor,
                           MessageHandler handler) {
  std::lock_guard<std::mutex> lock(subscribers_mu_);
  subscribers_[{RegionIndex(region), queue}] = {executor, std::move(handler)};
}

uint64_t QueueStore::Publish(Region origin, const std::string& queue, std::string payload) {
  return PublishWithKey(origin, queue, std::move(payload)).version;
}

QueueStore::PublishResult QueueStore::PublishWithKey(Region origin, const std::string& queue,
                                                     std::string payload) {
  const uint64_t sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  std::string key = MessageKey(queue, sequence);
  const uint64_t version = Put(origin, key, std::move(payload));
  return PublishResult{std::move(key), version};
}

void QueueStore::OnApply(Region region, const StoredEntry& entry) {
  // Lost delivery (consumer crash before ack): schedule a redelivery instead
  // of losing the lineage-carrying message. The redelivery re-enters this
  // gate, so repeated drops redeliver again until the fault window closes.
  if (fault_injector() != nullptr && fault_injector()->DropDelivery(name(), region)) {
    MetricsRegistry::Default().GetCounter("queue.redeliveries", {{"store", name()}})->Increment();
    auto copy = std::make_shared<const StoredEntry>(entry);
    ScheduleStoreWork(TimeScale::FromModelMillis(kBrokerRedeliveryModelMillis),
                      std::hash<std::string>{}(entry.key) ^ 0x5ca1ab1eULL,
                      [this, region, copy] { OnApply(region, *copy); });
    return;
  }
  ThreadPool* executor = nullptr;
  MessageHandler handler;
  const std::string channel = ChannelOfKey(entry.key);
  {
    std::lock_guard<std::mutex> lock(subscribers_mu_);
    auto it = subscribers_.find({RegionIndex(region), channel});
    if (it == subscribers_.end()) {
      return;
    }
    executor = it->second.first;
    handler = it->second.second;
  }
  BrokerMessage message{channel,       entry.bytes,    entry.key,
                        entry.version, region,         entry.trace_id,
                        entry.parent_span_id};
  executor->Submit([handler = std::move(handler), message = std::move(message)] {
    handler(message);
  });
}

}  // namespace antipode
