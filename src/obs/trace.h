// In-process distributed tracing (paper-evaluation substrate): spans with
// trace/span ids, a region, and typed annotations, collected by a process-wide
// `Tracer` and exported as Chrome trace-event JSON (chrome://tracing /
// ui.perfetto.dev) or a JSONL stream the bench harness can post-process.
//
// Propagation model: a span context (trace id + span id) rides the
// `RequestContext` baggage under `kTraceIdBaggageKey`/`kSpanIdBaggageKey`, so
// it crosses every `RpcClient::Call` hop for free and is stamped onto
// replication shipments by `ReplicatedStore::Put`. One trace therefore links
// client RPC → handler → store write → replication apply → barrier wait.
//
// Overhead discipline: every entry point first checks `Tracer::enabled()`
// (one relaxed atomic load) and produces an inert span when tracing is off or
// the root was not sampled, so instrumented hot paths cost ~a branch when
// sampling is disabled (bench/micro_barrier guards this).

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/context/baggage.h"
#include "src/net/region.h"

namespace antipode {

// Baggage keys the span context travels under (hex-encoded uint64s).
inline constexpr char kTraceIdBaggageKey[] = "obs-trace-id";
inline constexpr char kSpanIdBaggageKey[] = "obs-span-id";

// Identifies one span within one trace. `trace_id == 0` means "not traced":
// spans started from an invalid parent context are inert unless they are
// roots that pass the sampler.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

// Injects `context` into `baggage` (removes the keys when invalid).
void InjectSpanContext(Baggage& baggage, const SpanContext& context);
// Extracts a span context from `baggage`; invalid when the keys are absent.
SpanContext ExtractSpanContext(const Baggage& baggage);

// The span context installed on the current thread's RequestContext baggage
// (invalid when no context is installed or it carries none).
SpanContext CurrentSpanContext();
// Writes `context` into the current RequestContext's baggage; no-op without
// an installed context.
void SetCurrentSpanContext(const SpanContext& context);

// A finished span as recorded by the Tracer.
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  Region region = Region::kLocal;
  TimePoint start{};
  TimePoint end{};
  std::vector<std::pair<std::string, std::string>> annotations;
};

class Span;

// Process-wide span collector. Disabled (and therefore nearly free) by
// default; benches enable it behind a --trace-out flag.
class Tracer {
 public:
  static Tracer& Default();

  // Starts collecting. `sample_period` = trace one of every N roots (children
  // of a sampled trace are always recorded); 1 traces everything.
  void Enable(uint64_t sample_period = 1);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // True when the next root span should be traced (advances the sampler).
  bool SampleRoot();

  uint64_t NextTraceId();
  uint64_t NextSpanId();

  void Record(TraceEvent event);

  std::vector<TraceEvent> Snapshot() const;
  size_t NumEvents() const;
  void Clear();

  // Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...}, ...]}.
  void WriteChromeTrace(std::ostream& os) const;
  // One JSON object per line, full fidelity (trace/span/parent ids, region,
  // model-millisecond timestamps, annotations).
  void WriteJsonl(std::ostream& os) const;

  Status ExportChromeTrace(const std::string& path) const;
  Status ExportJsonl(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> sample_period_{1};
  std::atomic<uint64_t> root_counter_{0};
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  TimePoint epoch_{};  // set on first Enable; timestamps are relative to it
};

// RAII span. `Span::Start` opens a child of the current request's span
// context (or a sampled new root when there is none) and installs itself as
// the current context; destruction (or `End`) restores the previous context
// and hands the finished event to the tracer. Inert spans (tracing disabled,
// unsampled root) skip all of that.
//
// Spans are thread-affine: start and end one on the same thread. For work
// whose start and end live on different threads (barrier waits, replication
// shipments), build a `TraceEvent` directly and `Tracer::Record` it.
struct SpanOptions {
  std::string category;
  Region region = Region::kLocal;
  // Start as a child of this context instead of the thread's current one
  // (used when the parent arrives out-of-band, e.g. off a queue frame).
  SpanContext parent{};
  Tracer* tracer = &Tracer::Default();
};

class Span {
 public:
  using Options = SpanOptions;

  static Span Start(std::string name, Options options = {});

  Span(Span&& other) noexcept;
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  // False for inert spans; annotations on inert spans are dropped.
  bool recording() const { return recording_; }
  SpanContext context() const { return context_; }

  void Annotate(std::string key, std::string value);
  void Annotate(std::string key, uint64_t value);
  void Annotate(std::string key, double value);

  // Finishes the span (idempotent; the destructor calls it).
  void End();

 private:
  Span() = default;

  bool recording_ = false;
  bool restore_context_ = false;  // had a RequestContext to scribble on
  SpanContext context_{};
  SpanContext previous_{};
  Tracer* tracer_ = nullptr;
  TraceEvent event_{};
};

}  // namespace antipode

#endif  // SRC_OBS_TRACE_H_
