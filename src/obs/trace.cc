#include "src/obs/trace.h"

#include <charconv>
#include <fstream>
#include <thread>

#include "src/context/request_context.h"

namespace antipode {
namespace {

std::string ToHex(uint64_t value) {
  char buf[17];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value, 16);
  return std::string(buf, ptr);
}

uint64_t FromHex(std::string_view text) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return 0;
  }
  return value;
}

// Minimal JSON string escaping (annotation values are short ASCII-ish
// identifiers; anything non-printable is escaped numerically).
void WriteJsonString(std::ostream& os, std::string_view text) {
  os << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

int64_t MicrosSince(TimePoint epoch, TimePoint t) {
  if (t < epoch) {
    return 0;
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch).count();
}

}  // namespace

void InjectSpanContext(Baggage& baggage, const SpanContext& context) {
  if (!context.valid()) {
    baggage.Erase(kTraceIdBaggageKey);
    baggage.Erase(kSpanIdBaggageKey);
    return;
  }
  baggage.Set(kTraceIdBaggageKey, ToHex(context.trace_id));
  baggage.Set(kSpanIdBaggageKey, ToHex(context.span_id));
}

SpanContext ExtractSpanContext(const Baggage& baggage) {
  SpanContext context;
  auto trace = baggage.Get(kTraceIdBaggageKey);
  if (!trace.has_value()) {
    return context;
  }
  context.trace_id = FromHex(*trace);
  auto span = baggage.Get(kSpanIdBaggageKey);
  if (span.has_value()) {
    context.span_id = FromHex(*span);
  }
  return context;
}

SpanContext CurrentSpanContext() {
  RequestContext* current = RequestContext::Current();
  if (current == nullptr) {
    return SpanContext{};
  }
  return ExtractSpanContext(current->baggage());
}

void SetCurrentSpanContext(const SpanContext& context) {
  RequestContext* current = RequestContext::Current();
  if (current == nullptr) {
    return;
  }
  InjectSpanContext(current->baggage(), context);
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // leaked: outlives late span flushes
  return *tracer;
}

void Tracer::Enable(uint64_t sample_period) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch_ == TimePoint{}) {
      epoch_ = GlobalClock().Now();
    }
  }
  sample_period_.store(sample_period == 0 ? 1 : sample_period, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

bool Tracer::SampleRoot() {
  const uint64_t period = sample_period_.load(std::memory_order_relaxed);
  if (period <= 1) {
    return true;
  }
  return root_counter_.fetch_add(1, std::memory_order_relaxed) % period == 0;
}

uint64_t Tracer::NextTraceId() {
  // SplitMix-style scramble of a counter: unique and well-spread without any
  // global RNG state (ids only need to be distinct, not unpredictable).
  uint64_t z = next_id_.fetch_add(1, std::memory_order_relaxed) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

uint64_t Tracer::NextSpanId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

void Tracer::Record(TraceEvent event) {
  if (!enabled()) {
    return;  // raced a Disable; drop rather than grow the buffer forever
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> events;
  TimePoint epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    epoch = epoch_;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    const int64_t ts = MicrosSince(epoch, event.start);
    const int64_t dur = std::max<int64_t>(1, MicrosSince(epoch, event.end) - ts);
    // pid = 1 (one process); tid = region, so each region renders as its own
    // track and cross-region flows (write → remote apply) are side by side.
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << RegionIndex(event.region) << ",\"ts\":" << ts
       << ",\"dur\":" << dur << ",\"name\":";
    WriteJsonString(os, event.name);
    os << ",\"cat\":";
    WriteJsonString(os, event.category.empty() ? "span" : event.category);
    os << ",\"args\":{\"trace_id\":";
    WriteJsonString(os, ToHex(event.trace_id));
    os << ",\"span_id\":";
    WriteJsonString(os, ToHex(event.span_id));
    os << ",\"parent_span_id\":";
    WriteJsonString(os, ToHex(event.parent_span_id));
    os << ",\"region\":";
    WriteJsonString(os, RegionName(event.region));
    for (const auto& [key, value] : event.annotations) {
      os << ",";
      WriteJsonString(os, key);
      os << ":";
      WriteJsonString(os, value);
    }
    os << "}}";
  }
  // Name the region tracks.
  for (int i = 0; i < kNumRegions; ++i) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    WriteJsonString(os, std::string("region ") + std::string(RegionName(Region(i))));
    os << "}}";
  }
  os << "]}\n";
}

void Tracer::WriteJsonl(std::ostream& os) const {
  std::vector<TraceEvent> events;
  TimePoint epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    epoch = epoch_;
  }
  for (const TraceEvent& event : events) {
    const int64_t start_us = MicrosSince(epoch, event.start);
    const int64_t end_us = MicrosSince(epoch, event.end);
    os << "{\"name\":";
    WriteJsonString(os, event.name);
    os << ",\"cat\":";
    WriteJsonString(os, event.category);
    os << ",\"trace_id\":";
    WriteJsonString(os, ToHex(event.trace_id));
    os << ",\"span_id\":";
    WriteJsonString(os, ToHex(event.span_id));
    os << ",\"parent_span_id\":";
    WriteJsonString(os, ToHex(event.parent_span_id));
    os << ",\"region\":";
    WriteJsonString(os, RegionName(event.region));
    os << ",\"start_model_ms\":" << TimeScale::ToModelMillis(Micros(start_us))
       << ",\"dur_model_ms\":" << TimeScale::ToModelMillis(Micros(end_us - start_us));
    for (const auto& [key, value] : event.annotations) {
      os << ",";
      WriteJsonString(os, key);
      os << ":";
      WriteJsonString(os, value);
    }
    os << "}\n";
  }
}

Status Tracer::ExportChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Unavailable("cannot open trace output: " + path);
  }
  WriteChromeTrace(out);
  return out.good() ? Status::Ok() : Status::Internal("short write: " + path);
}

Status Tracer::ExportJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Unavailable("cannot open trace output: " + path);
  }
  WriteJsonl(out);
  return out.good() ? Status::Ok() : Status::Internal("short write: " + path);
}

Span Span::Start(std::string name, Options options) {
  Span span;
  Tracer* tracer = options.tracer;
  if (!tracer->enabled()) {
    return span;
  }
  SpanContext parent = options.parent.valid() ? options.parent : CurrentSpanContext();
  if (!parent.valid() && !tracer->SampleRoot()) {
    return span;
  }
  span.recording_ = true;
  span.tracer_ = tracer;
  span.context_.trace_id = parent.valid() ? parent.trace_id : tracer->NextTraceId();
  span.context_.span_id = tracer->NextSpanId();
  span.event_.name = std::move(name);
  span.event_.category = std::move(options.category);
  span.event_.trace_id = span.context_.trace_id;
  span.event_.span_id = span.context_.span_id;
  span.event_.parent_span_id = parent.span_id;
  span.event_.region = options.region;
  span.event_.start = GlobalClock().Now();
  // Make this span the current one so nested spans and store writes pick it
  // up as their parent; End() restores the previous context.
  if (RequestContext::Current() != nullptr) {
    span.previous_ = CurrentSpanContext();
    span.restore_context_ = true;
    SetCurrentSpanContext(span.context_);
  }
  return span;
}

Span::Span(Span&& other) noexcept
    : recording_(other.recording_),
      restore_context_(other.restore_context_),
      context_(other.context_),
      previous_(other.previous_),
      tracer_(other.tracer_),
      event_(std::move(other.event_)) {
  other.recording_ = false;
  other.restore_context_ = false;
}

Span::~Span() { End(); }

void Span::Annotate(std::string key, std::string value) {
  if (!recording_) {
    return;
  }
  event_.annotations.emplace_back(std::move(key), std::move(value));
}

void Span::Annotate(std::string key, uint64_t value) {
  Annotate(std::move(key), std::to_string(value));
}

void Span::Annotate(std::string key, double value) {
  if (!recording_) {
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  event_.annotations.emplace_back(std::move(key), buf);
}

void Span::End() {
  if (!recording_) {
    return;
  }
  recording_ = false;
  event_.end = GlobalClock().Now();
  if (restore_context_) {
    SetCurrentSpanContext(previous_);
    restore_context_ = false;
  }
  tracer_->Record(std::move(event_));
}

}  // namespace antipode
