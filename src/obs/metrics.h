// Process-wide metrics: counters, gauges, and histograms, labelled by
// free-form dimensions (store, region, service, …). This is the single
// observability sink the ISSUE's evaluation harness consumes: stores
// (`StoreMetrics`), the RPC and network layers, and the barrier all record
// here, and benches print one `Snapshot()`/`Dump()` instead of ad-hoc
// per-subsystem counters.
//
// Concurrency contract: recording uses relaxed atomics (counters/gauges) or a
// per-instrument mutex (histograms) and never takes the registry lock, so hot
// paths stay cheap. `Snapshot()` is a consistent per-instrument read;
// `SnapshotAndReset()` drains each instrument atomically (counter exchange,
// histogram swap-under-lock), so concurrent recordings are never lost or
// double-counted across snapshots — the coherent reset `StoreMetrics::Reset`
// lacked (its old multi-field `= 0` raced concurrent `RecordWrite`s).

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace antipode {

// Label dimensions, canonicalized to "k1=v1,k2=v2" (sorted by key).
using MetricLabels = std::initializer_list<std::pair<std::string, std::string>>;

// Monotonic counter. Relaxed increments; Drain() is an atomic exchange so a
// concurrent Add lands either before the drain or in the next window.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  uint64_t Drain() { return value_.exchange(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value (resident waiters, queue depth, …).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Distribution instrument. Record/Snapshot/Drain share one mutex, so a drain
// observes every record that happened-before it and none twice.
class HistogramMetric {
 public:
  void Record(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Record(value);
  }

  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

  Histogram Drain() {
    std::lock_guard<std::mutex> lock(mu_);
    Histogram out = hist_;
    hist_.Reset();
    return out;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One instrument's state at snapshot time.
struct MetricSample {
  std::string name;
  std::string labels;  // canonical "k=v,k=v" form; empty for unlabelled
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  Histogram histogram;

  std::string ToString() const;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, labels)

  // Lookup by exact name (+ canonical labels); nullptr when absent.
  const MetricSample* Find(std::string_view name, std::string_view labels = "") const;
  // Sum of counter values across every labelling of `name`.
  uint64_t CounterTotal(std::string_view name) const;
  // Merge of every histogram labelling of `name`.
  Histogram HistogramTotal(std::string_view name) const;

  std::string ToString() const;
};

// Owner of all instruments. Instrument pointers are stable for the registry's
// lifetime — callers look up once and cache (see StoreMetrics).
class MetricsRegistry {
 public:
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, MetricLabels labels = {});
  HistogramMetric* GetHistogram(std::string_view name, MetricLabels labels = {});

  // Consistent per-instrument read; instruments keep their values.
  MetricsSnapshot Snapshot() const;
  // Atomically drains every instrument into the returned snapshot: values
  // recorded concurrently appear either here or in the next snapshot, never
  // both and never nowhere.
  MetricsSnapshot SnapshotAndReset();

  // Human-readable table of the current snapshot (benches print this).
  std::string Dump() const { return Snapshot().ToString(); }

  size_t NumInstruments() const;

 private:
  struct Instrument {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Instrument* GetOrCreate(std::string_view name, MetricLabels labels, MetricKind kind);

  mutable std::mutex mu_;
  // key = name + '|' + canonical labels
  std::map<std::string, Instrument> instruments_;
};

}  // namespace antipode

#endif  // SRC_OBS_METRICS_H_
