#include "src/obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace antipode {
namespace {

std::string CanonicalLabels(MetricLabels labels) {
  std::vector<std::pair<std::string, std::string>> sorted(labels.begin(), labels.end());
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) {
      out += ',';
    }
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

}  // namespace

std::string MetricSample::ToString() const {
  std::ostringstream os;
  os << name;
  if (!labels.empty()) {
    os << '{' << labels << '}';
  }
  switch (kind) {
    case MetricKind::kCounter:
      os << " = " << counter_value;
      break;
    case MetricKind::kGauge:
      os << " = " << gauge_value;
      break;
    case MetricKind::kHistogram:
      os << " " << histogram.Summary();
      break;
  }
  return os.str();
}

const MetricSample* MetricsSnapshot::Find(std::string_view name, std::string_view labels) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name && sample.labels == labels) {
      return &sample;
    }
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  for (const MetricSample& sample : samples) {
    if (sample.name == name && sample.kind == MetricKind::kCounter) {
      total += sample.counter_value;
    }
  }
  return total;
}

Histogram MetricsSnapshot::HistogramTotal(std::string_view name) const {
  Histogram total;
  for (const MetricSample& sample : samples) {
    if (sample.name == name && sample.kind == MetricKind::kHistogram) {
      total.Merge(sample.histogram);
    }
  }
  return total;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const MetricSample& sample : samples) {
    out += sample.ToString();
    out += '\n';
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: see Tracer
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::GetOrCreate(std::string_view name,
                                                          MetricLabels labels, MetricKind kind) {
  std::string key = std::string(name) + '|' + CanonicalLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    // Same name+labels with a different kind is a programming error; return
    // the existing instrument of the requested kind or a fresh orphan is
    // worse — assert via null-safe fallthrough in the typed getters.
    return &it->second;
  }
  Instrument instrument;
  instrument.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      instrument.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      instrument.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      instrument.histogram = std::make_unique<HistogramMetric>();
      break;
  }
  return &instruments_.emplace(std::move(key), std::move(instrument)).first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name, MetricLabels labels) {
  Instrument* instrument = GetOrCreate(name, labels, MetricKind::kCounter);
  return instrument->counter ? instrument->counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  Instrument* instrument = GetOrCreate(name, labels, MetricKind::kGauge);
  return instrument->gauge ? instrument->gauge.get() : nullptr;
}

HistogramMetric* MetricsRegistry::GetHistogram(std::string_view name, MetricLabels labels) {
  Instrument* instrument = GetOrCreate(name, labels, MetricKind::kHistogram);
  return instrument->histogram ? instrument->histogram.get() : nullptr;
}

namespace {

MetricSample SampleOf(const std::string& key, MetricKind kind) {
  MetricSample sample;
  const size_t bar = key.find('|');
  sample.name = key.substr(0, bar);
  sample.labels = bar == std::string::npos ? "" : key.substr(bar + 1);
  sample.kind = kind;
  return sample;
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.samples.reserve(instruments_.size());
  for (const auto& [key, instrument] : instruments_) {
    MetricSample sample = SampleOf(key, instrument.kind);
    switch (instrument.kind) {
      case MetricKind::kCounter:
        sample.counter_value = instrument.counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge_value = instrument.gauge->value();
        break;
      case MetricKind::kHistogram:
        sample.histogram = instrument.histogram->Snapshot();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

MetricsSnapshot MetricsRegistry::SnapshotAndReset() {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.samples.reserve(instruments_.size());
  for (auto& [key, instrument] : instruments_) {
    MetricSample sample = SampleOf(key, instrument.kind);
    switch (instrument.kind) {
      case MetricKind::kCounter:
        sample.counter_value = instrument.counter->Drain();
        break;
      case MetricKind::kGauge:
        sample.gauge_value = instrument.gauge->value();  // gauges are levels, not flows
        break;
      case MetricKind::kHistogram:
        sample.histogram = instrument.histogram->Drain();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

}  // namespace antipode
