#include "src/apps/workload.h"

#include <condition_variable>
#include <mutex>

namespace antipode {

WorkloadResult OpenLoopRunner::Run(const Options& options,
                                   std::function<void(uint64_t)> request) {
  WorkloadResult result;
  ThreadPool clients(options.client_threads, "workload-clients");
  ConcurrentHistogram latency;
  Rng rng(options.seed);

  std::mutex mu;
  std::condition_variable cv;
  uint64_t inflight = 0;

  const TimePoint start = GlobalClock().Now();
  const Duration duration = TimeScale::FromModelMillis(options.duration_model_seconds * 1000.0);
  const double mean_gap_millis = 1000.0 / options.rate_per_model_second;

  uint64_t sequence = 0;
  TimePoint next_arrival = start;
  while (next_arrival - start < duration) {
    GlobalClock().SleepFor(
        std::chrono::duration_cast<Duration>(next_arrival - GlobalClock().Now()));
    const uint64_t id = sequence++;
    {
      std::lock_guard<std::mutex> lock(mu);
      ++inflight;
    }
    clients.Submit([&, id] {
      const TimePoint begin = GlobalClock().Now();
      request(id);
      const TimePoint end = GlobalClock().Now();
      latency.Record(TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(end - begin)));
      {
        std::lock_guard<std::mutex> lock(mu);
        --inflight;
      }
      cv.notify_all();
    });
    const double gap = options.poisson_arrivals ? rng.NextExponential(mean_gap_millis)
                                                : mean_gap_millis;
    next_arrival += TimeScale::FromModelMillis(gap);
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return inflight == 0; });
  }
  const TimePoint finish = GlobalClock().Now();
  clients.Shutdown();

  result.offered = sequence;
  result.completed = sequence;
  result.duration_model_seconds =
      TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(finish - start)) / 1000.0;
  result.throughput = result.duration_model_seconds > 0
                          ? static_cast<double>(result.completed) / result.duration_model_seconds
                          : 0.0;
  result.latency_model_millis = latency.Snapshot();
  return result;
}

}  // namespace antipode
