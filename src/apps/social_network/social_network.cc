#include "src/apps/social_network/social_network.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "src/antipode/antipode.h"
#include "src/apps/workload.h"
#include "src/common/serialization.h"
#include "src/context/request_context.h"
#include "src/rpc/rpc.h"

namespace antipode {
namespace {

std::atomic<uint64_t> g_run_counter{0};

struct FanoutTask {
  std::string post_id;
  std::string author;
  TimePoint write_time{};
  std::vector<std::string> followers;

  std::string Encode() const {
    Serializer s;
    s.WriteString(post_id);
    s.WriteString(author);
    s.WriteUint64(static_cast<uint64_t>(write_time.time_since_epoch().count()));
    s.WriteVarint(followers.size());
    for (const auto& follower : followers) {
      s.WriteString(follower);
    }
    return s.Release();
  }

  static bool Decode(const std::string& bytes, FanoutTask* task) {
    Deserializer d(bytes);
    auto post_id = d.ReadString();
    auto author = d.ReadString();
    auto when = d.ReadUint64();
    auto count = d.ReadVarint();
    if (!post_id.ok() || !author.ok() || !when.ok() || !count.ok()) {
      return false;
    }
    task->post_id = std::move(*post_id);
    task->author = std::move(*author);
    task->write_time = TimePoint(TimePoint::duration(static_cast<int64_t>(*when)));
    for (uint64_t i = 0; i < *count; ++i) {
      auto follower = d.ReadString();
      if (!follower.ok()) {
        return false;
      }
      task->followers.push_back(std::move(*follower));
    }
    return true;
  }
};

// The deployed application: stores, shims, and RPC services.
class SocialNetworkApp {
 public:
  explicit SocialNetworkApp(const SocialNetworkConfig& config)
      : config_(config),
        run_(g_run_counter.fetch_add(1, std::memory_order_relaxed)),
        regions_({config.home_region, config.remote_region}),
        posts_(DocStore::DefaultOptions("mongo-posts-" + std::to_string(run_), regions_)),
        post_shim_(&posts_),
        wht_queue_(QueueStore::DefaultOptions("rabbit-wht-" + std::to_string(run_), regions_)),
        queue_shim_(&wht_queue_),
        timeline_cache_(
            KvStore::DefaultOptions("redis-timeline-" + std::to_string(run_), regions_)),
        timeline_shim_(&timeline_cache_),
        service_registry_(),
        consumer_pool_(8, "wht-consumer") {
    registry_.Register(&post_shim_);
    registry_.Register(&queue_shim_);
    registry_.Register(&timeline_shim_);

    compose_service_ = service_registry_.RegisterService("compose-post", config.home_region,
                                                         config.service_threads);
    storage_service_ = service_registry_.RegisterService("post-storage", config.home_region,
                                                         config.service_threads);
    graph_service_ = service_registry_.RegisterService("social-graph", config.home_region,
                                                       config.service_threads);

    RegisterHandlers();
    SubscribeConsumer();
  }

  ~SocialNetworkApp() {
    // Ordering matters: drain replication (delivers pending queue messages),
    // then stop the consumer pool, then let stores destruct.
    posts_.DrainReplication();
    wht_queue_.DrainReplication();
    timeline_cache_.DrainReplication();
    service_registry_.ShutdownAll();
    consumer_pool_.Shutdown();
  }

  // One end-to-end compose-post request issued by a client in the home
  // region. Returns once the synchronous part (the RPC) completes.
  void ComposePost(uint64_t sequence) {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    if (config_.antipode) {
      LineageApi::Root();
    }
    const std::string author = "user" + std::to_string(sequence % config_.num_users);
    RpcClient client(&service_registry_, config_.home_region);
    client.Call("compose-post", "compose",
                author + ":" + std::to_string(run_) + "-" + std::to_string(sequence));
    if (config_.antipode) {
      auto lineage = LineageApi::Current();
      if (lineage.has_value()) {
        lineage_sizes_.Record(static_cast<double>(lineage->WireSize()));
      }
    }
  }

  void WaitForFanoutCompletion() {
    std::unique_lock<std::mutex> lock(fanout_mu_);
    fanout_cv_.wait(lock, [&] { return tasks_consumed_ >= tasks_published_.load(); });
  }

  SocialNetworkResult CollectResults(const WorkloadResult& workload) {
    SocialNetworkResult result;
    result.throughput = workload.throughput;
    result.compose_latency_model_ms = workload.latency_model_millis;
    result.consistency_window_model_ms = window_.Snapshot();
    result.fanout_tasks = tasks_published_.load();
    result.violations = violations_.load();
    result.max_lineage_bytes = lineage_sizes_.Snapshot().max();
    result.mean_post_object_bytes = posts_.metrics().MeanObjectBytes();
    result.mean_queue_object_bytes = wht_queue_.metrics().MeanObjectBytes();
    return result;
  }

 private:
  void RegisterHandlers() {
    // compose-post: the entry-point service.
    compose_service_->RegisterMethod("compose", [this](const std::string& payload) {
      return HandleCompose(payload);
    });
    // post-storage: fronts the document store.
    storage_service_->RegisterMethod("store", [this](const std::string& payload) {
      return HandleStorePost(payload);
    });
    // social-graph: returns the author's followers.
    graph_service_->RegisterMethod("followers", [this](const std::string& payload) {
      return HandleGetFollowers(payload);
    });
  }

  Result<std::string> HandleCompose(const std::string& payload) {
    // payload = "author:post_id"
    const size_t colon = payload.find(':');
    const std::string author = payload.substr(0, colon);
    const std::string post_id = payload.substr(colon + 1);

    // Collapsed service time of the text/media/unique-id helper services.
    GlobalClock().SleepFor(
        TimeScale::FromModelMillis(config_.compose_work_model_millis));

    RpcClient client(&service_registry_, config_.home_region);
    client.Call("post-storage", "store", post_id + ":" + author);
    const TimePoint write_time = GlobalClock().Now();
    auto followers = client.Call("social-graph", "followers", author);

    FanoutTask task;
    task.post_id = post_id;
    task.author = author;
    task.write_time = write_time;
    if (followers.ok()) {
      Deserializer d(*followers);
      auto count = d.ReadVarint();
      if (count.ok()) {
        for (uint64_t i = 0; i < *count; ++i) {
          auto follower = d.ReadString();
          if (!follower.ok()) {
            break;
          }
          task.followers.push_back(std::move(*follower));
        }
      }
    }

    tasks_published_.fetch_add(1, std::memory_order_relaxed);
    if (config_.antipode) {
      queue_shim_.PublishCtx(config_.home_region, kQueueName, task.Encode());
    } else {
      wht_queue_.Publish(config_.home_region, kQueueName, task.Encode());
    }
    return std::string("ok");
  }

  Result<std::string> HandleStorePost(const std::string& payload) {
    const size_t colon = payload.find(':');
    const std::string post_id = payload.substr(0, colon);
    const std::string author = payload.substr(colon + 1);
    Document doc{{"author", Value(author)}, {"text", Value(std::string(256, 't'))}};
    if (config_.antipode) {
      post_shim_.InsertDocCtx(config_.home_region, "posts", post_id, std::move(doc));
    } else {
      posts_.InsertDoc(config_.home_region, "posts", post_id, doc);
    }
    return std::string("ok");
  }

  Result<std::string> HandleGetFollowers(const std::string& author) {
    // The follower graph is synthetic and static; serve it directly.
    Serializer s;
    s.WriteVarint(static_cast<uint64_t>(config_.followers_per_user));
    const uint64_t author_index = std::hash<std::string>{}(author);
    for (int i = 0; i < config_.followers_per_user; ++i) {
      s.WriteString("user" +
                    std::to_string((author_index + 1 + static_cast<uint64_t>(i)) %
                                   static_cast<uint64_t>(config_.num_users)));
    }
    return s.Release();
  }

  void SubscribeConsumer() {
    auto handler = [this](const ConsumedMessage& message) { ConsumeFanout(message); };
    if (config_.antipode) {
      queue_shim_.Subscribe(config_.remote_region, kQueueName, &consumer_pool_, handler);
    } else {
      wht_queue_.Subscribe(config_.remote_region, kQueueName, &consumer_pool_,
                           [handler](const BrokerMessage& message) {
                             handler(ConsumedMessage{message.payload, Lineage(),
                                                     message.delivered_at});
                           });
    }
  }

  void ConsumeFanout(const ConsumedMessage& message) {
    FanoutTask task;
    if (!FanoutTask::Decode(message.payload, &task)) {
      return;
    }
    if (config_.antipode) {
      lineage_sizes_.Record(static_cast<double>(message.lineage.WireSize()));
      // The barrier right after dequeuing the notification object (§7.1).
      Barrier(message.lineage, config_.remote_region, BarrierOptions{.registry = &registry_});
    }
    const TimePoint fetch_time = GlobalClock().Now();
    window_.Record(TimeScale::ToModelMillis(
        std::chrono::duration_cast<Duration>(fetch_time - task.write_time)));

    bool found = false;
    if (config_.antipode) {
      found = post_shim_.FindByIdCtx(config_.remote_region, "posts", task.post_id).ok();
    } else {
      found = posts_.FindById(config_.remote_region, "posts", task.post_id).has_value();
    }
    if (!found) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }

    // Update each follower's home timeline in the cache tier.
    for (const auto& follower : task.followers) {
      const std::string key = "hometimeline:" + follower;
      if (config_.antipode) {
        timeline_shim_.WriteCtx(config_.remote_region, key, task.post_id);
      } else {
        timeline_cache_.Set(config_.remote_region, key, task.post_id);
      }
    }

    {
      std::lock_guard<std::mutex> lock(fanout_mu_);
      ++tasks_consumed_;
    }
    fanout_cv_.notify_all();
  }

  static constexpr char kQueueName[] = "write-home-timeline";

  const SocialNetworkConfig config_;
  const uint64_t run_;
  std::vector<Region> regions_;

  DocStore posts_;
  DocShim post_shim_;
  QueueStore wht_queue_;
  QueueShim queue_shim_;
  KvStore timeline_cache_;
  KvShim timeline_shim_;
  ShimRegistry registry_;

  ServiceRegistry service_registry_;
  RpcService* compose_service_ = nullptr;
  RpcService* storage_service_ = nullptr;
  RpcService* graph_service_ = nullptr;

  ThreadPool consumer_pool_;

  std::atomic<uint64_t> tasks_published_{0};
  std::mutex fanout_mu_;
  std::condition_variable fanout_cv_;
  uint64_t tasks_consumed_ = 0;
  std::atomic<uint64_t> violations_{0};
  ConcurrentHistogram window_;
  ConcurrentHistogram lineage_sizes_;
};

}  // namespace

SocialNetworkResult RunSocialNetwork(const SocialNetworkConfig& config) {
  SocialNetworkApp app(config);

  OpenLoopRunner::Options load;
  load.rate_per_model_second = config.load_rps;
  load.duration_model_seconds = config.duration_model_seconds;
  load.seed = config.seed;
  WorkloadResult workload =
      OpenLoopRunner::Run(load, [&app](uint64_t sequence) { app.ComposePost(sequence); });

  app.WaitForFanoutCompletion();
  return app.CollectResults(workload);
}

}  // namespace antipode
