// DeathStarBench-style social network (paper §7.1): microservices behind the
// RPC substrate, a MongoDB-like post storage, a RabbitMQ-like queue for the
// asynchronous write-home-timeline task, and a Redis-like home-timeline
// cache. The measured interaction is compose-post:
//
//   client ──rpc──► compose-post ──► post-storage.insert (doc store)
//                        │
//                        └──► write-home-timeline queue.publish
//   (remote region) queue consumer ──► fetch post ──► update follower
//                                      home timelines (kv cache)
//
// XCY violation: the remote consumer dequeues the task before the post has
// replicated and the fetch returns object-not-found. Antipode's fix is a
// barrier right after dequeuing (off the writer's critical path, so the
// throughput/latency cost stays under ~2% — Fig. 8).

#ifndef SRC_APPS_SOCIAL_NETWORK_SOCIAL_NETWORK_H_
#define SRC_APPS_SOCIAL_NETWORK_SOCIAL_NETWORK_H_

#include <string>

#include "src/common/histogram.h"
#include "src/net/region.h"

namespace antipode {

struct SocialNetworkConfig {
  Region home_region = Region::kUs;
  Region remote_region = Region::kEu;  // or Region::kSg
  bool antipode = false;

  // Open-loop load (model req/s) and duration (model seconds).
  double load_rps = 100.0;
  double duration_model_seconds = 5.0;

  int num_users = 100;
  int followers_per_user = 8;
  // Modeled application work inside compose-post (media/text/unique-id
  // services collapsed into one service-time term).
  double compose_work_model_millis = 20.0;
  size_t service_threads = 4;
  uint64_t seed = 17;
};

struct SocialNetworkResult {
  // Writer-side view (Fig. 8 left).
  double throughput = 0.0;  // completed compose-posts per model second
  Histogram compose_latency_model_ms;

  // Reader-side view (Fig. 8 right).
  Histogram consistency_window_model_ms;
  uint64_t fanout_tasks = 0;
  uint64_t violations = 0;
  double ViolationRate() const {
    return fanout_tasks == 0 ? 0.0 : static_cast<double>(violations) / fanout_tasks;
  }

  // Lineage metadata (§7.4: max size < 200 B in DeathStarBench).
  double max_lineage_bytes = 0.0;
  double mean_post_object_bytes = 0.0;
  double mean_queue_object_bytes = 0.0;
};

SocialNetworkResult RunSocialNetwork(const SocialNetworkConfig& config);

}  // namespace antipode

#endif  // SRC_APPS_SOCIAL_NETWORK_SOCIAL_NETWORK_H_
