// DeathStarBench media-service case study. The paper notes (§7.1, footnote)
// that DSB's media service exhibits the same violation class as the social
// network: a review references an uploaded media object, the review event is
// processed remotely, and the worker can observe the review while the media
// blob (a *different* datastore, with much slower replication) is missing.
//
// Flow: upload-media (S3-like object store) → write review referencing it
// (MongoDB-like doc store) → publish review event (RabbitMQ-like queue) →
// remote render worker: [barrier] → read review → fetch media.
//
// Two distinct read dependencies hang off one message, so this exercises
// multi-store barriers in a single lineage.

#ifndef SRC_APPS_MEDIA_SERVICE_MEDIA_SERVICE_H_
#define SRC_APPS_MEDIA_SERVICE_MEDIA_SERVICE_H_

#include "src/antipode/shim.h"
#include "src/common/histogram.h"
#include "src/net/region.h"

namespace antipode {

struct MediaServiceConfig {
  Region upload_region = Region::kUs;
  Region render_region = Region::kEu;
  bool antipode = false;
  // Enforcement strategy for the render-side barrier (kInherit = the
  // registry default, i.e. the native lineage backend).
  EnforcementBackendKind backend = EnforcementBackendKind::kInherit;
  // Replica footprint of the three stores. Empty ⇒ {upload_region,
  // render_region}; wider footprints widen every write's locality scope.
  std::vector<Region> store_regions;
  // Regions the render-side barrier enforces at. Empty ⇒ just render_region;
  // non-empty ⇒ BarrierGlobal over exactly these regions.
  std::vector<Region> barrier_regions;
  // Honor dependency locality scopes at the barrier
  // (BarrierOptions::use_scope). Off is the unscoped baseline.
  bool use_scope = true;
  int num_reviews = 100;
  int concurrency = 16;
  size_t media_size_bytes = 32 * 1024;  // scaled-down poster/thumbnail
};

struct MediaServiceResult {
  int reviews = 0;
  int review_missing = 0;  // review doc not yet visible
  int media_missing = 0;   // review visible but media blob missing
  int TotalViolations() const { return review_missing + media_missing; }
  double ViolationRate() const {
    return reviews == 0 ? 0.0 : static_cast<double>(TotalViolations()) / reviews;
  }
  Histogram consistency_window_model_ms;
};

MediaServiceResult RunMediaService(const MediaServiceConfig& config);

}  // namespace antipode

#endif  // SRC_APPS_MEDIA_SERVICE_MEDIA_SERVICE_H_
