#include "src/apps/media_service/media_service.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "src/antipode/antipode.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"

namespace antipode {
namespace {

std::atomic<uint64_t> g_run_counter{0};

}  // namespace

MediaServiceResult RunMediaService(const MediaServiceConfig& config) {
  const uint64_t run = g_run_counter.fetch_add(1, std::memory_order_relaxed);
  const std::vector<Region> regions =
      config.store_regions.empty()
          ? std::vector<Region>{config.upload_region, config.render_region}
          : config.store_regions;
  const std::string suffix = std::to_string(run);

  ObjectStore media(ObjectStore::DefaultOptions("media-s3-" + suffix, regions));
  DocStore reviews(DocStore::DefaultOptions("reviews-mongo-" + suffix, regions));
  QueueStore events(QueueStore::DefaultOptions("events-rabbit-" + suffix, regions));
  ObjectShim media_shim(&media);
  DocShim review_shim(&reviews);
  QueueShim event_shim(&events);
  ShimRegistry registry;
  registry.Register(&media_shim);
  registry.Register(&review_shim);
  registry.Register(&event_shim);

  ThreadPool uploaders(static_cast<size_t>(config.concurrency), "uploaders");
  ThreadPool renderers(static_cast<size_t>(config.concurrency), "renderers");

  std::mutex mu;
  std::condition_variable cv;
  int rendered = 0;
  std::atomic<int> review_missing{0};
  std::atomic<int> media_missing{0};
  ConcurrentHistogram window;

  const bool antipode = config.antipode;
  const Region render_region = config.render_region;

  // The remote render worker, triggered by the review event.
  auto render = [&](const ConsumedMessage& message) {
    Deserializer d(message.payload);
    auto review_id = d.ReadString();
    auto when = d.ReadUint64();
    if (!review_id.ok() || !when.ok()) {
      return;
    }
    if (antipode) {
      // One barrier enforces both the review doc and the media blob: they
      // are different datastores but members of the same lineage.
      const BarrierOptions barrier_options{.registry = &registry,
                                           .use_scope = config.use_scope,
                                           .backend = config.backend};
      if (config.barrier_regions.empty()) {
        Barrier(message.lineage, render_region, barrier_options);
      } else {
        BarrierGlobal(message.lineage, config.barrier_regions, barrier_options);
      }
    }
    window.Record(TimeScale::ToModelMillis(std::chrono::duration_cast<Duration>(
        GlobalClock().Now() -
        TimePoint(TimePoint::duration(static_cast<int64_t>(*when))))));

    std::optional<Document> review;
    if (antipode) {
      auto found_review = review_shim.FindByIdCtx(render_region, "reviews", *review_id);
      if (found_review.ok()) {
        review = std::move(*found_review);
      }
    } else {
      review = reviews.FindById(render_region, "reviews", *review_id);
    }
    if (!review.has_value()) {
      review_missing.fetch_add(1, std::memory_order_relaxed);
    } else {
      auto media_key = review->Get("media");
      bool found = false;
      if (media_key.has_value() && media_key->is_string()) {
        if (antipode) {
          found = media_shim.GetObjectCtx(render_region, "media", media_key->as_string()).ok();
        } else {
          found = media.GetObject(render_region, "media", media_key->as_string()).has_value();
        }
      }
      if (!found) {
        media_missing.fetch_add(1, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ++rendered;
    }
    cv.notify_all();
  };

  if (antipode) {
    event_shim.Subscribe(render_region, "review-events", &renderers, render);
  } else {
    events.Subscribe(render_region, "review-events", &renderers,
                     [render](const BrokerMessage& message) {
                       render(ConsumedMessage{message.payload, Lineage(),
                                              message.delivered_at});
                     });
  }

  // Uploaders: media blob, then the review referencing it, then the event.
  const std::string blob(config.media_size_bytes, 'm');
  for (int i = 0; i < config.num_reviews; ++i) {
    uploaders.Submit([&, i] {
      RequestContext context;
      ScopedContext scoped(std::move(context));
      if (antipode) {
        LineageApi::Root();
      }
      const std::string media_key = "poster-" + suffix + "-" + std::to_string(i);
      const std::string review_id = "review-" + suffix + "-" + std::to_string(i);
      Document review{{"media", Value(media_key)}, {"stars", Value(static_cast<int64_t>(5))}};
      if (antipode) {
        media_shim.PutObjectCtx(config.upload_region, "media", media_key, blob);
        review_shim.InsertDocCtx(config.upload_region, "reviews", review_id,
                                 std::move(review));
      } else {
        media.PutObject(config.upload_region, "media", media_key, blob);
        reviews.InsertDoc(config.upload_region, "reviews", review_id, review);
      }
      Serializer s;
      s.WriteString(review_id);
      s.WriteUint64(
          static_cast<uint64_t>(GlobalClock().Now().time_since_epoch().count()));
      if (antipode) {
        event_shim.PublishCtx(config.upload_region, "review-events", s.Release());
      } else {
        events.Publish(config.upload_region, "review-events", s.Release());
      }
    });
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return rendered >= config.num_reviews; });
  }
  uploaders.Shutdown();
  media.DrainReplication();
  reviews.DrainReplication();
  events.DrainReplication();
  renderers.Shutdown();

  MediaServiceResult result;
  result.reviews = config.num_reviews;
  result.review_missing = review_missing.load();
  result.media_missing = media_missing.load();
  result.consistency_window_model_ms = window.Snapshot();
  return result;
}

}  // namespace antipode
