#include "src/apps/post_notification/post_notification.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "src/antipode/antipode.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/serialization.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"

namespace antipode {
namespace {

std::atomic<uint64_t> g_run_counter{0};

// ---------------------------------------------------------------------------
// Post-storage backends
// ---------------------------------------------------------------------------

// Uniform facade over the four post-storage choices. Every backend exposes a
// raw (baseline) path and a shimmed (Antipode) path.
class PostStorageBackend {
 public:
  virtual ~PostStorageBackend() = default;
  virtual void WritePost(Region region, const std::string& post_id, const std::string& content,
                         bool antipode) = 0;
  // Returns true when the post is found. With Antipode, callers invoke this
  // only after a successful barrier.
  virtual bool ReadPost(Region region, const std::string& post_id, bool antipode) = 0;
  virtual Shim* shim() = 0;
  virtual const StoreMetrics& metrics() const = 0;
};

class MysqlPostStorage final : public PostStorageBackend {
 public:
  MysqlPostStorage(const std::string& name, std::vector<Region> regions, bool antipode)
      : store_(SqlStore::DefaultOptions(name, std::move(regions))), shim_(&store_) {
    store_.CreateTable("posts", {"id", "content"}, "id");
    if (antipode) {
      // The one-time schema change: lineage column + index (Table 3).
      shim_.InstrumentTable("posts");
    }
  }

  void WritePost(Region region, const std::string& post_id, const std::string& content,
                 bool antipode) override {
    Row row{{"id", Value(post_id)}, {"content", Value(content)}};
    if (antipode) {
      shim_.InsertCtx(region, "posts", std::move(row));
    } else {
      store_.Insert(region, "posts", row);
    }
  }

  bool ReadPost(Region region, const std::string& post_id, bool antipode) override {
    if (antipode) {
      return shim_.SelectByPkCtx(region, "posts", Value(post_id)).ok();
    }
    return store_.SelectByPk(region, "posts", Value(post_id)).has_value();
  }

  Shim* shim() override { return &shim_; }
  const StoreMetrics& metrics() const override { return store_.metrics(); }

 private:
  SqlStore store_;
  SqlShim shim_;
};

class DynamoPostStorage final : public PostStorageBackend {
 public:
  DynamoPostStorage(const std::string& name, std::vector<Region> regions)
      : store_(DynamoStore::DefaultOptions(name, std::move(regions))), shim_(&store_) {}

  void WritePost(Region region, const std::string& post_id, const std::string& content,
                 bool antipode) override {
    Document item{{"content", Value(content)}};
    if (antipode) {
      shim_.PutItemCtx(region, "posts", post_id, std::move(item));
    } else {
      store_.PutItem(region, "posts", post_id, item);
    }
  }

  bool ReadPost(Region region, const std::string& post_id, bool antipode) override {
    if (antipode) {
      // Post-barrier reads use strongly consistent reads — Dynamo's wait is
      // implemented with them (§6.4), so consistency carries into the read.
      return shim_.GetItemConsistentCtx(region, "posts", post_id).ok();
    }
    return store_.GetItem(region, "posts", post_id).has_value();
  }

  Shim* shim() override { return &shim_; }
  const StoreMetrics& metrics() const override { return store_.metrics(); }

 private:
  DynamoStore store_;
  DynamoShim shim_;
};

class RedisPostStorage final : public PostStorageBackend {
 public:
  RedisPostStorage(const std::string& name, std::vector<Region> regions)
      : store_(KvStore::DefaultOptions(name, std::move(regions))), shim_(&store_) {}

  void WritePost(Region region, const std::string& post_id, const std::string& content,
                 bool antipode) override {
    if (antipode) {
      shim_.WriteCtx(region, PostKey(post_id), content);
    } else {
      store_.Set(region, PostKey(post_id), content);
    }
  }

  bool ReadPost(Region region, const std::string& post_id, bool antipode) override {
    if (antipode) {
      return shim_.ReadCtx(region, PostKey(post_id)).ok();
    }
    return store_.GetValue(region, PostKey(post_id)).has_value();
  }

  Shim* shim() override { return &shim_; }
  const StoreMetrics& metrics() const override { return store_.metrics(); }

 private:
  static std::string PostKey(const std::string& post_id) { return "post:" + post_id; }

  KvStore store_;
  KvShim shim_;
};

class S3PostStorage final : public PostStorageBackend {
 public:
  S3PostStorage(const std::string& name, std::vector<Region> regions)
      : store_(ObjectStore::DefaultOptions(name, std::move(regions))), shim_(&store_) {}

  void WritePost(Region region, const std::string& post_id, const std::string& content,
                 bool antipode) override {
    if (antipode) {
      shim_.PutObjectCtx(region, "posts", post_id, content);
    } else {
      store_.PutObject(region, "posts", post_id, std::string(content));
    }
  }

  bool ReadPost(Region region, const std::string& post_id, bool antipode) override {
    if (antipode) {
      return shim_.GetObjectCtx(region, "posts", post_id).ok();
    }
    return store_.GetObject(region, "posts", post_id).has_value();
  }

  Shim* shim() override { return &shim_; }
  const StoreMetrics& metrics() const override { return store_.metrics(); }

 private:
  ObjectStore store_;
  ObjectShim shim_;
};

// ---------------------------------------------------------------------------
// Notifier backends
// ---------------------------------------------------------------------------

// Delivers a ⟨notification⟩ payload from the writer region to a reader
// callback in the reader region, once the notification has replicated there.
class NotifierChannel {
 public:
  virtual ~NotifierChannel() = default;
  virtual void Publish(Region region, const std::string& payload, bool antipode) = 0;
  // Registers the single reader; the handler receives payload + lineage
  // (empty lineage on the baseline path).
  virtual void SubscribeReader(Region region, ThreadPool* executor,
                               ShimMessageHandler handler, bool antipode) = 0;
  virtual Shim* shim() = 0;
  virtual const StoreMetrics& metrics() const = 0;
};

class SnsNotifier final : public NotifierChannel {
 public:
  SnsNotifier(const std::string& name, std::vector<Region> regions)
      : store_(PubSubStore::DefaultOptions(name, std::move(regions))), shim_(&store_) {}

  void Publish(Region region, const std::string& payload, bool antipode) override {
    if (antipode) {
      shim_.PublishCtx(region, kTopic, payload);
    } else {
      store_.Publish(region, kTopic, payload);
    }
  }

  void SubscribeReader(Region region, ThreadPool* executor, ShimMessageHandler handler,
                       bool antipode) override {
    if (antipode) {
      shim_.Subscribe(region, kTopic, executor, std::move(handler));
    } else {
      store_.Subscribe(region, kTopic, executor,
                       [handler = std::move(handler)](const BrokerMessage& message) {
                         handler(ConsumedMessage{message.payload, Lineage(),
                                                 message.delivered_at});
                       });
    }
  }

  Shim* shim() override { return &shim_; }
  const StoreMetrics& metrics() const override { return store_.metrics(); }

 private:
  static constexpr char kTopic[] = "new-posts";
  PubSubStore store_;
  PubSubShim shim_;
};

class AmqNotifier final : public NotifierChannel {
 public:
  AmqNotifier(const std::string& name, std::vector<Region> regions)
      : store_(Options(name, std::move(regions))), shim_(&store_) {}

  void Publish(Region region, const std::string& payload, bool antipode) override {
    if (antipode) {
      shim_.PublishCtx(region, kQueue, payload);
    } else {
      store_.Publish(region, kQueue, payload);
    }
  }

  void SubscribeReader(Region region, ThreadPool* executor, ShimMessageHandler handler,
                       bool antipode) override {
    if (antipode) {
      shim_.Subscribe(region, kQueue, executor, std::move(handler));
    } else {
      store_.Subscribe(region, kQueue, executor,
                       [handler = std::move(handler)](const BrokerMessage& message) {
                         handler(ConsumedMessage{message.payload, Lineage(),
                                                 message.delivered_at});
                       });
    }
  }

  Shim* shim() override { return &shim_; }
  const StoreMetrics& metrics() const override { return store_.metrics(); }

 private:
  // AMQ mirrors propagate noticeably slower than SNS fan-out.
  static ReplicatedStoreOptions Options(const std::string& name, std::vector<Region> regions) {
    ReplicatedStoreOptions options = QueueStore::DefaultOptions(name, std::move(regions));
    options.replication.median_millis = 1200.0;
    options.replication.sigma = 0.3;
    return options;
  }

  static constexpr char kQueue[] = "new-posts";
  QueueStore store_;
  QueueShim shim_;
};

// DynamoDB playing the notifier role: notifications are items; the reader is
// triggered (stream/trigger style) when the item replicates into its region.
class DynamoNotifier final : public NotifierChannel {
 public:
  DynamoNotifier(const std::string& name, std::vector<Region> regions)
      : store_(DynamoStore::NotifierOptions(name, std::move(regions))), shim_(&store_) {
    store_.SetApplyHook([this](Region region, const StoredEntry& entry) {
      OnApply(region, entry);
    });
  }

  ~DynamoNotifier() override { store_.DrainReplication(); }

  void Publish(Region region, const std::string& payload, bool antipode) override {
    const std::string id = std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
    Document item{{"payload", Value(payload)}};
    if (antipode) {
      shim_.PutItemCtx(region, kTable, id, std::move(item));
    } else {
      store_.PutItem(region, kTable, id, item);
    }
  }

  void SubscribeReader(Region region, ThreadPool* executor, ShimMessageHandler handler,
                       bool antipode) override {
    std::lock_guard<std::mutex> lock(mu_);
    reader_region_ = region;
    executor_ = executor;
    handler_ = std::move(handler);
    antipode_ = antipode;
  }

  Shim* shim() override { return &shim_; }
  const StoreMetrics& metrics() const override { return store_.metrics(); }

 private:
  void OnApply(Region region, const StoredEntry& entry) {
    ShimMessageHandler handler;
    ThreadPool* executor = nullptr;
    bool antipode = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (handler_ == nullptr || region != reader_region_) {
        return;
      }
      handler = handler_;
      executor = executor_;
      antipode = antipode_;
    }
    auto item = Document::Deserialize(entry.bytes);
    if (!item.ok()) {
      return;
    }
    ConsumedMessage message;
    auto payload = item->Get("payload");
    message.payload = payload.has_value() && payload->is_string() ? payload->as_string() : "";
    message.delivered_at = region;
    if (antipode) {
      auto lineage_field = item->Get(kLineageField);
      if (lineage_field.has_value() && lineage_field->is_string()) {
        auto lineage = Lineage::Deserialize(lineage_field->as_string());
        if (lineage.ok()) {
          message.lineage = std::move(*lineage);
        }
      }
      message.lineage.Append(
          WriteId{store_.name(), entry.key, entry.version, store_.region_mask()});
    }
    executor->Submit([handler, message] { handler(message); });
  }

  static constexpr char kTable[] = "notifications";
  DynamoStore store_;
  DynamoShim shim_;
  std::atomic<uint64_t> next_id_{1};
  std::mutex mu_;
  Region reader_region_ = Region::kUs;
  ThreadPool* executor_ = nullptr;
  ShimMessageHandler handler_;
  bool antipode_ = false;
};

std::unique_ptr<PostStorageBackend> MakePostStorage(PostStorageKind kind,
                                                    const std::string& name,
                                                    std::vector<Region> regions,
                                                    bool antipode) {
  switch (kind) {
    case PostStorageKind::kMysql:
      return std::make_unique<MysqlPostStorage>(name, std::move(regions), antipode);
    case PostStorageKind::kDynamo:
      return std::make_unique<DynamoPostStorage>(name, std::move(regions));
    case PostStorageKind::kRedis:
      return std::make_unique<RedisPostStorage>(name, std::move(regions));
    case PostStorageKind::kS3:
      return std::make_unique<S3PostStorage>(name, std::move(regions));
  }
  return nullptr;
}

std::unique_ptr<NotifierChannel> MakeNotifier(NotifierKind kind, const std::string& name,
                                              std::vector<Region> regions) {
  switch (kind) {
    case NotifierKind::kSns:
      return std::make_unique<SnsNotifier>(name, std::move(regions));
    case NotifierKind::kAmq:
      return std::make_unique<AmqNotifier>(name, std::move(regions));
    case NotifierKind::kDynamo:
      return std::make_unique<DynamoNotifier>(name, std::move(regions));
  }
  return nullptr;
}

std::string EncodeNotification(const std::string& post_id, TimePoint write_time) {
  Serializer s;
  s.WriteString(post_id);
  s.WriteUint64(static_cast<uint64_t>(write_time.time_since_epoch().count()));
  // Pad to ~120 bytes, the notification object size of §7.2.
  std::string payload = s.Release();
  if (payload.size() < 120) {
    payload.resize(120, '.');
  }
  return payload;
}

bool DecodeNotification(const std::string& payload, std::string* post_id,
                        TimePoint* write_time) {
  Deserializer d(payload);
  auto id = d.ReadString();
  auto when = d.ReadUint64();
  if (!id.ok() || !when.ok()) {
    return false;
  }
  *post_id = std::move(*id);
  *write_time = TimePoint(TimePoint::duration(static_cast<int64_t>(*when)));
  return true;
}

}  // namespace

std::string_view PostStorageName(PostStorageKind kind) {
  switch (kind) {
    case PostStorageKind::kMysql:
      return "MySQL";
    case PostStorageKind::kDynamo:
      return "DynamoDB";
    case PostStorageKind::kRedis:
      return "Redis";
    case PostStorageKind::kS3:
      return "S3";
  }
  return "?";
}

std::string_view NotifierName(NotifierKind kind) {
  switch (kind) {
    case NotifierKind::kSns:
      return "SNS";
    case NotifierKind::kAmq:
      return "AMQ";
    case NotifierKind::kDynamo:
      return "DynamoDB";
  }
  return "?";
}

PostNotificationResult RunPostNotification(const PostNotificationConfig& config) {
  const uint64_t run = g_run_counter.fetch_add(1, std::memory_order_relaxed);
  const std::vector<Region> regions =
      config.store_regions.empty()
          ? std::vector<Region>{config.writer_region, config.reader_region}
          : config.store_regions;

  auto post_storage = MakePostStorage(
      config.post_storage,
      std::string(PostStorageName(config.post_storage)) + "-post-" + std::to_string(run),
      regions, config.antipode);
  auto notifier = MakeNotifier(
      config.notifier,
      std::string(NotifierName(config.notifier)) + "-notif-" + std::to_string(run), regions);

  ShimRegistry registry;
  registry.Register(post_storage->shim());
  registry.Register(notifier->shim());

  ThreadPool writers(static_cast<size_t>(config.writer_concurrency), "writers");
  ThreadPool readers(static_cast<size_t>(config.writer_concurrency), "readers");

  std::mutex done_mu;
  std::condition_variable done_cv;
  int readers_done = 0;
  std::atomic<int> violations{0};
  ConcurrentHistogram window;

  // Reader: triggered by the notification's arrival in the reader region.
  const bool antipode = config.antipode;
  const Region reader_region = config.reader_region;
  notifier->SubscribeReader(
      reader_region, &readers,
      [&, antipode, reader_region](const ConsumedMessage& message) {
        std::string post_id;
        TimePoint write_time{};
        if (!DecodeNotification(message.payload, &post_id, &write_time)) {
          return;
        }
        if (antipode) {
          // The barrier right after receiving the notification event (§7.1).
          const BarrierOptions barrier_options{.registry = &registry,
                                               .use_scope = config.use_scope,
                                               .backend = config.backend};
          if (config.barrier_regions.empty()) {
            Barrier(message.lineage, reader_region, barrier_options);
          } else {
            BarrierGlobal(message.lineage, config.barrier_regions, barrier_options);
          }
        }
        const TimePoint read_time = GlobalClock().Now();
        window.Record(TimeScale::ToModelMillis(
            std::chrono::duration_cast<Duration>(read_time - write_time)));
        const bool found = post_storage->ReadPost(reader_region, post_id, antipode);
        if (!found) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        {
          std::lock_guard<std::mutex> lock(done_mu);
          ++readers_done;
        }
        done_cv.notify_all();
      },
      antipode);

  // Writers: write post, (optionally delay), publish notification.
  Rng content_rng(config.seed);
  std::string content(config.post_size_bytes, 'x');
  for (int i = 0; i < config.num_requests; ++i) {
    const std::string post_id = "p" + std::to_string(run) + "-" + std::to_string(i);
    writers.Submit([&, post_id] {
      RequestContext context;
      ScopedContext scoped(std::move(context));
      if (antipode) {
        LineageApi::Root();
      }
      post_storage->WritePost(config.writer_region, post_id, content, antipode);
      const TimePoint write_time = GlobalClock().Now();
      if (config.artificial_delay_model_millis > 0) {
        GlobalClock().SleepFor(
            TimeScale::FromModelMillis(config.artificial_delay_model_millis));
      }
      notifier->Publish(config.writer_region, EncodeNotification(post_id, write_time),
                        antipode);
    });
  }

  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return readers_done >= config.num_requests; });
  }
  writers.Shutdown();
  readers.Shutdown();

  PostNotificationResult result;
  result.requests = config.num_requests;
  result.violations = violations.load();
  result.consistency_window_model_ms = window.Snapshot();
  result.mean_post_object_bytes = post_storage->metrics().MeanObjectBytes();
  result.mean_notification_object_bytes = notifier->metrics().MeanObjectBytes();
  return result;
}

}  // namespace antipode
