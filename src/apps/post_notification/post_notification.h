// The Post-Notification case study (paper §2.2, §7.1): a Writer writes a
// post to a geo-replicated post-storage, then publishes a ⟨notification-id,
// post-id⟩ notification; a Reader in another region is triggered by the
// notification's arrival and tries to read the post. An XCY violation occurs
// when the read returns "object not found".
//
// The harness is parameterized over four post-storage backends (MySQL-,
// DynamoDB-, Redis-, and S3-like) and three notifier backends (SNS-, AMQ-,
// and DynamoDB-like), with or without Antipode — the full Table 1 grid —
// plus the artificial pre-notification delay of Fig. 6 and the consistency
// window measurement of Fig. 7.

#ifndef SRC_APPS_POST_NOTIFICATION_POST_NOTIFICATION_H_
#define SRC_APPS_POST_NOTIFICATION_POST_NOTIFICATION_H_

#include <string>
#include <string_view>

#include "src/antipode/shim.h"
#include "src/common/histogram.h"
#include "src/net/region.h"

namespace antipode {

enum class PostStorageKind { kMysql, kDynamo, kRedis, kS3 };
enum class NotifierKind { kSns, kAmq, kDynamo };

std::string_view PostStorageName(PostStorageKind kind);
std::string_view NotifierName(NotifierKind kind);

struct PostNotificationConfig {
  PostStorageKind post_storage = PostStorageKind::kMysql;
  NotifierKind notifier = NotifierKind::kSns;
  // Paper §7.2: posts created in Frankfurt (EU), notifications read in
  // Central US.
  Region writer_region = Region::kEu;
  Region reader_region = Region::kUs;

  bool antipode = false;
  // Enforcement strategy for the reader-side barrier (kInherit = the
  // registry default, i.e. the native lineage backend).
  EnforcementBackendKind backend = EnforcementBackendKind::kInherit;

  // Replica footprint of both stores. Empty ⇒ {writer_region, reader_region},
  // the classic two-region bed. A wider footprint (e.g. adding kSg) widens
  // every write's locality scope to match — the scoped-vs-unscoped beds.
  std::vector<Region> store_regions;
  // Regions the reader-side barrier enforces at. Empty ⇒ just reader_region
  // (the paper's region-local optimization); non-empty ⇒ BarrierGlobal over
  // exactly these regions (the conservative deployment-wide barrier).
  std::vector<Region> barrier_regions;
  // Honor dependency locality scopes at the barrier
  // (BarrierOptions::use_scope). Off is the unscoped baseline.
  bool use_scope = true;

  // Fig. 6: artificial delay inserted before publishing the notification.
  double artificial_delay_model_millis = 0.0;

  // Scaled-down payloads (the paper uses ~1 MB posts; sizes only contribute
  // a bandwidth term to replication lag, so smaller payloads preserve every
  // ordering the experiments measure — see DESIGN.md).
  size_t post_size_bytes = 8 * 1024;

  int num_requests = 1000;
  int writer_concurrency = 32;
  uint64_t seed = 3;
};

struct PostNotificationResult {
  int requests = 0;
  int violations = 0;
  double ViolationRate() const {
    return requests == 0 ? 0.0 : static_cast<double>(violations) / requests;
  }
  // Post written at the Writer -> Reader attempts (or, with Antipode,
  // is first allowed) to read it. Model milliseconds.
  Histogram consistency_window_model_ms;
  // Object-size accounting for Table 3.
  double mean_post_object_bytes = 0.0;
  double mean_notification_object_bytes = 0.0;
};

// Builds the deployment described by `config`, runs it, tears it down.
PostNotificationResult RunPostNotification(const PostNotificationConfig& config);

}  // namespace antipode

#endif  // SRC_APPS_POST_NOTIFICATION_POST_NOTIFICATION_H_
