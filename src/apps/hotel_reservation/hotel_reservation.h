// DeathStarBench hotel-reservation negative control. The paper reports that
// hotel reservation "has a very simple architecture with no cross-datastore
// references, resulting in no XCY violations being found" (§7.1, footnote).
// We reproduce the negative result: the reservation flow writes one
// datastore and reads it back in the same region, so even with aggressive
// replication delays nothing can go inconsistent — and Antipode's dry-run
// checker confirms every candidate site is already consistent.

#ifndef SRC_APPS_HOTEL_RESERVATION_HOTEL_RESERVATION_H_
#define SRC_APPS_HOTEL_RESERVATION_HOTEL_RESERVATION_H_

#include "src/net/region.h"

namespace antipode {

struct HotelReservationConfig {
  Region region = Region::kUs;
  int num_reservations = 100;
};

struct HotelReservationResult {
  int reservations = 0;
  int violations = 0;           // reservations not readable right after booking
  int checker_inconsistent = 0;  // dry-run checker reports at the read site
};

HotelReservationResult RunHotelReservation(const HotelReservationConfig& config);

}  // namespace antipode

#endif  // SRC_APPS_HOTEL_RESERVATION_HOTEL_RESERVATION_H_
