#include "src/apps/hotel_reservation/hotel_reservation.h"

#include <atomic>

#include "src/antipode/antipode.h"
#include "src/context/request_context.h"
#include "src/store/doc_store.h"

namespace antipode {
namespace {

std::atomic<uint64_t> g_run_counter{0};

}  // namespace

HotelReservationResult RunHotelReservation(const HotelReservationConfig& config) {
  const uint64_t run = g_run_counter.fetch_add(1, std::memory_order_relaxed);
  // Geo-replicated (so replication *does* lag), but the flow never reads a
  // different region or a different datastore than it wrote.
  DocStore reservations(DocStore::DefaultOptions(
      "hotel-mongo-" + std::to_string(run), {Region::kUs, Region::kEu}));
  DocShim shim(&reservations);
  ShimRegistry registry;
  registry.Register(&shim);
  ConsistencyChecker checker(&registry);

  HotelReservationResult result;
  result.reservations = config.num_reservations;
  for (int i = 0; i < config.num_reservations; ++i) {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Root();

    const std::string id = "res-" + std::to_string(run) + "-" + std::to_string(i);
    shim.InsertDocCtx(config.region, "reservations", id,
                      Document{{"hotel", Value("h1")}, {"nights", Value(static_cast<int64_t>(2))}});

    // Confirmation page: read back in the same region.
    if (!checker.CheckCtx("confirmation-read", config.region)) {
      result.checker_inconsistent++;
    }
    if (!shim.FindByIdCtx(config.region, "reservations", id).ok()) {
      result.violations++;
    }
  }
  reservations.DrainReplication();
  return result;
}

}  // namespace antipode
