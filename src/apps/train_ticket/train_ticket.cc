#include "src/apps/train_ticket/train_ticket.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>

#include "src/antipode/antipode.h"
#include "src/apps/workload.h"
#include "src/common/serialization.h"
#include "src/context/request_context.h"
#include "src/rpc/rpc.h"

namespace antipode {
namespace {

std::atomic<uint64_t> g_run_counter{0};

constexpr double kRefundWorkModelMillis = 3.0;
// Time between the user receiving the cancellation response and looking at
// the refund (page navigation / rendering).
constexpr double kUserCheckDelayModelMillis = 10.0;

// Rendezvous between the cancellation handler and the asynchronous refund
// task: the payment consumer posts its lineage here once the refund row is
// durable, and (under Antipode) the handler picks it up to barrier on it.
class CompletionBoard {
 public:
  void Signal(const std::string& order_id, Lineage lineage) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_[order_id] = std::move(lineage);
    }
    cv_.notify_all();
  }

  Lineage WaitFor(const std::string& order_id) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return completed_.count(order_id) > 0; });
    Lineage lineage = completed_[order_id];
    completed_.erase(order_id);
    return lineage;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Lineage> completed_;
};

class TrainTicketApp {
 public:
  explicit TrainTicketApp(const TrainTicketConfig& config)
      : config_(config),
        run_(g_run_counter.fetch_add(1, std::memory_order_relaxed)),
        orders_(SqlStore::DefaultOptions("mysql-orders-" + std::to_string(run_),
                                         {Region::kLocal})),
        order_shim_(&orders_),
        payments_(SqlStore::DefaultOptions("mysql-payments-" + std::to_string(run_),
                                           {Region::kLocal})),
        payment_shim_(&payments_),
        task_queue_(QueueStore::DefaultOptions("queue-tasks-" + std::to_string(run_),
                                               {Region::kLocal})),
        queue_shim_(&task_queue_),
        payment_pool_(8, "payment"),
        service_registry_() {
    orders_.CreateTable("orders", {"id", "status"}, "id");
    payments_.CreateTable("refunds", {"order_id", "amount"}, "order_id");
    if (config_.antipode) {
      order_shim_.InstrumentTable("orders", /*with_index=*/false);
      payment_shim_.InstrumentTable("refunds", /*with_index=*/false);
    }
    registry_.Register(&order_shim_);
    registry_.Register(&payment_shim_);
    registry_.Register(&queue_shim_);

    cancel_service_ = service_registry_.RegisterService("cancel-order", Region::kLocal,
                                                        config_.service_threads);
    cancel_service_->RegisterMethod("cancel", [this](const std::string& order_id) {
      return HandleCancel(order_id);
    });
    SubscribePaymentConsumer();
  }

  ~TrainTicketApp() {
    task_queue_.DrainReplication();
    service_registry_.ShutdownAll();
    payment_pool_.Shutdown();
  }

  // One end-to-end cancellation by a user, including the user's refund check.
  void CancelTicket(uint64_t sequence) {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    if (config_.antipode) {
      LineageApi::Root();
    }
    const std::string order_id = "o" + std::to_string(run_) + "-" + std::to_string(sequence);

    RpcClient client(&service_registry_, Region::kLocal);
    client.Call("cancel-order", "cancel", order_id);
    const TimePoint response_time = GlobalClock().Now();

    // Poll until the refund is visible; the consistency window is the gap
    // between the response and refund visibility, and a *violation* is a
    // window longer than the user's check delay (the refund page showed no
    // refund).
    const Duration poll_step = TimeScale::FromModelMillis(0.5);
    while (!payments_.SelectByPk(Region::kLocal, "refunds", Value(order_id)).has_value()) {
      GlobalClock().SleepFor(poll_step);
    }
    const TimePoint visible_time = GlobalClock().Now();
    const double window_ms = TimeScale::ToModelMillis(
        std::chrono::duration_cast<Duration>(visible_time - response_time));
    window_.Record(window_ms);
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (window_ms > kUserCheckDelayModelMillis) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  TrainTicketResult CollectResults(const WorkloadResult& workload) {
    TrainTicketResult result;
    result.throughput = workload.throughput;
    result.cancel_latency_model_ms = workload.latency_model_millis;
    result.consistency_window_model_ms = window_.Snapshot();
    result.requests = requests_.load();
    result.violations = violations_.load();
    return result;
  }

 private:
  Result<std::string> HandleCancel(const std::string& order_id) {
    // (business logic: seat release, fare recomputation, notifications…)
    GlobalClock().SleepFor(
        TimeScale::FromModelMillis(config_.cancel_work_model_millis));

    // (a) mark the order cancelled.
    Row order{{"id", Value(order_id)}, {"status", Value(std::string("cancelled"))}};
    if (config_.antipode) {
      order_shim_.InsertCtx(Region::kLocal, "orders", std::move(order));
    } else {
      orders_.Insert(Region::kLocal, "orders", order);
    }

    // (b) hand the refund to the payment service asynchronously.
    if (config_.antipode) {
      queue_shim_.PublishCtx(Region::kLocal, kRefundQueue, order_id);
      // The barrier on the critical path (§7.4): wait for the refund task's
      // lineage, fold it in, and enforce it before answering the user.
      Lineage refund_lineage = board_.WaitFor(order_id);
      LineageApi::Transfer(refund_lineage);
      BarrierCtx(Region::kLocal, BarrierOptions{.registry = &registry_});
    } else {
      task_queue_.Publish(Region::kLocal, kRefundQueue, order_id);
    }
    return std::string("cancelled");
  }

  void SubscribePaymentConsumer() {
    auto process = [this](const std::string& order_id) {
      GlobalClock().SleepFor(TimeScale::FromModelMillis(kRefundWorkModelMillis));
      Row refund{{"order_id", Value(order_id)}, {"amount", Value(static_cast<int64_t>(4200))}};
      if (config_.antipode) {
        payment_shim_.InsertCtx(Region::kLocal, "refunds", std::move(refund));
        board_.Signal(order_id, LineageApi::Current().value_or(Lineage()));
      } else {
        payments_.Insert(Region::kLocal, "refunds", refund);
      }
    };
    if (config_.antipode) {
      queue_shim_.Subscribe(Region::kLocal, kRefundQueue, &payment_pool_,
                            [process](const ConsumedMessage& message) {
                              process(message.payload);
                            });
    } else {
      task_queue_.Subscribe(Region::kLocal, kRefundQueue, &payment_pool_,
                            [process](const BrokerMessage& message) {
                              process(message.payload);
                            });
    }
  }

  static constexpr char kRefundQueue[] = "refunds";

  const TrainTicketConfig config_;
  const uint64_t run_;

  SqlStore orders_;
  SqlShim order_shim_;
  SqlStore payments_;
  SqlShim payment_shim_;
  QueueStore task_queue_;
  QueueShim queue_shim_;
  ShimRegistry registry_;

  ThreadPool payment_pool_;
  ServiceRegistry service_registry_;
  RpcService* cancel_service_ = nullptr;

  CompletionBoard board_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> violations_{0};
  ConcurrentHistogram window_;
};

}  // namespace

TrainTicketResult RunTrainTicket(const TrainTicketConfig& config) {
  TrainTicketApp app(config);

  OpenLoopRunner::Options load;
  load.rate_per_model_second = config.load_rps;
  load.duration_model_seconds = config.duration_model_seconds;
  load.seed = config.seed;
  WorkloadResult workload =
      OpenLoopRunner::Run(load, [&app](uint64_t sequence) { app.CancelTicket(sequence); });
  return app.CollectResults(workload);
}

}  // namespace antipode
