// TrainTicket-style ticket cancellation (paper §7.1, §7.4): cancelling a
// ticket (a) updates the order's status and (b) refunds the price — the
// refund is processed by a different service via an asynchronous message.
// There is no geo-replication; the violation is the "lack of sequence
// control in asynchronous invocations": the user receives the cancellation
// response and immediately queries the refund, which may not be visible yet.
//
// Antipode's fix places the barrier on the request's critical path: the
// cancellation handler waits for the refund task's lineage and enforces it
// before returning, trading ~15% throughput / ~17% latency (Fig. 9) for a
// consistent output.

#ifndef SRC_APPS_TRAIN_TICKET_TRAIN_TICKET_H_
#define SRC_APPS_TRAIN_TICKET_TRAIN_TICKET_H_

#include "src/common/histogram.h"
#include "src/net/region.h"

namespace antipode {

struct TrainTicketConfig {
  bool antipode = false;

  double load_rps = 200.0;
  double duration_model_seconds = 5.0;

  // Modeled service time of the order-cancellation business logic.
  double cancel_work_model_millis = 20.0;
  size_t service_threads = 8;
  uint64_t seed = 23;
};

struct TrainTicketResult {
  double throughput = 0.0;
  Histogram cancel_latency_model_ms;
  // Response returned -> both effects (status + refund) visible.
  Histogram consistency_window_model_ms;
  uint64_t requests = 0;
  uint64_t violations = 0;  // refund not visible when the user checked
  double ViolationRate() const {
    return requests == 0 ? 0.0 : static_cast<double>(violations) / requests;
  }
};

TrainTicketResult RunTrainTicket(const TrainTicketConfig& config);

}  // namespace antipode

#endif  // SRC_APPS_TRAIN_TICKET_TRAIN_TICKET_H_
