// Open-loop workload generator: issues requests at a fixed model-time rate
// regardless of completion (the load-generation style of §7.2), dispatching
// each one onto a client pool and recording per-request latency.

#ifndef SRC_APPS_WORKLOAD_H_
#define SRC_APPS_WORKLOAD_H_

#include <atomic>
#include <functional>
#include <string>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/thread_pool.h"

namespace antipode {

struct WorkloadResult {
  uint64_t offered = 0;
  uint64_t completed = 0;
  double duration_model_seconds = 0.0;
  // Completed requests per model second.
  double throughput = 0.0;
  Histogram latency_model_millis;
};

class OpenLoopRunner {
 public:
  struct Options {
    double rate_per_model_second = 100.0;
    double duration_model_seconds = 5.0;
    size_t client_threads = 64;
    bool poisson_arrivals = true;
    uint64_t seed = 11;
  };

  // Runs `request` (indexed by sequence number) open-loop and waits for all
  // issued requests to complete before returning.
  static WorkloadResult Run(const Options& options, std::function<void(uint64_t)> request);
};

}  // namespace antipode

#endif  // SRC_APPS_WORKLOAD_H_
