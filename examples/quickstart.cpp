// Quickstart: the smallest end-to-end Antipode integration.
//
// Two regions, two datastores (a Redis-like cache for posts, an SNS-like
// topic for notifications). Without Antipode, the reader in EU can be
// notified of a post that has not replicated yet; with Antipode, a barrier
// right after the notification arrives blocks until the post is visible.
//
//   ./quickstart            # runs both modes and prints the outcome

#include <atomic>
#include <cstdio>

#include "src/antipode/antipode.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"
#include "src/store/pubsub_store.h"

using namespace antipode;

namespace {

bool RunOnce(bool use_antipode) {
  // --- Deployment: one KV store and one pub/sub topic, both geo-replicated
  // between US and EU.
  const std::vector<Region> regions = {Region::kUs, Region::kEu};
  KvStore posts(KvStore::DefaultOptions(use_antipode ? "posts-a" : "posts-b", regions));
  PubSubStore notifications(
      PubSubStore::DefaultOptions(use_antipode ? "notif-a" : "notif-b", regions));
  KvShim post_shim(&posts);
  PubSubShim notif_shim(&notifications);

  ShimRegistry registry;
  registry.Register(&post_shim);
  registry.Register(&notif_shim);

  // --- Reader in EU: triggered when the notification replicates there.
  ThreadPool reader_pool(1, "reader");
  std::atomic<bool> done{false};
  std::atomic<bool> post_found{false};

  notif_shim.Subscribe(Region::kEu, "new-posts", &reader_pool,
                       [&](const ConsumedMessage& message) {
                         if (use_antipode) {
                           // Enforce the notification's causal dependencies
                           // before reading.
                           Barrier(message.lineage, Region::kEu,
                                   BarrierOptions{.registry = &registry});
                         }
                         post_found = post_shim.Read(Region::kEu, message.payload).ok();
                         done = true;
                       });

  // --- Writer in US: write the post, then notify followers.
  {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Root();
    post_shim.WriteCtx(Region::kUs, "post-1", "hello, causal world");
    notif_shim.PublishCtx(Region::kUs, "new-posts", "post-1");
  }

  while (!done) {
    SystemClock::Instance().SleepFor(Millis(1));
  }
  reader_pool.Shutdown();
  return post_found;
}

}  // namespace

int main() {
  // Compress simulated WAN/replication delays 50x so this demo runs in
  // ~a second.
  TimeScale::Set(0.02);

  std::printf("without Antipode: post %s when the notification arrived\n",
              RunOnce(false) ? "FOUND" : "NOT FOUND (XCY violation!)");
  std::printf("with    Antipode: post %s after barrier()\n",
              RunOnce(true) ? "FOUND" : "NOT FOUND (XCY violation!)");
  return 0;
}
