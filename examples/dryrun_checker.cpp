// Using Antipode as a passive testing tool (§5.2 / §6.3): instead of placing
// barriers up front, a developer runs the application with ConsistencyChecker
// probes at candidate sites. Sites that report inconsistencies during the
// test run are where real barriers belong.
//
// This drives the post-notification flow with two candidate sites:
//   "notifier/on-receive"   — right after the notification arrives (good)
//   "storage/after-write"   — right after the local write (always consistent,
//                             a barrier here would be wasted)
//
//   ./dryrun_checker [num_requests]

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/antipode/antipode.h"
#include "src/antipode/checker.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"
#include "src/store/pubsub_store.h"

using namespace antipode;

int main(int argc, char** argv) {
  TimeScale::Set(0.02);
  const int num_requests = argc > 1 ? std::atoi(argv[1]) : 50;

  KvStore posts(KvStore::DefaultOptions("post-storage", {Region::kUs, Region::kEu}));
  PubSubStore notifications(
      PubSubStore::DefaultOptions("notifier", {Region::kUs, Region::kEu}));
  KvShim post_shim(&posts);
  PubSubShim notif_shim(&notifications);
  ShimRegistry registry;
  registry.Register(&post_shim);
  registry.Register(&notif_shim);

  ConsistencyChecker checker(&registry);
  ThreadPool readers(2, "readers");
  std::atomic<int> done{0};

  notif_shim.Subscribe(Region::kEu, "new-posts", &readers,
                       [&](const ConsumedMessage& message) {
                         // Candidate site B: the notification consumer.
                         checker.Check("notifier/on-receive", message.lineage, Region::kEu);
                         post_shim.ReadCtx(Region::kEu, message.payload);
                         done.fetch_add(1);
                       });

  for (int i = 0; i < num_requests; ++i) {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Root();
    const std::string key = "post-" + std::to_string(i);
    post_shim.WriteCtx(Region::kUs, key, "content");
    // Candidate site A: right after the (local) write — never inconsistent,
    // so the checker will tell us a barrier here is unnecessary.
    checker.CheckCtx("storage/after-write", Region::kUs);
    notif_shim.PublishCtx(Region::kUs, "new-posts", key);
  }

  while (done.load() < num_requests) {
    SystemClock::Instance().SleepFor(Millis(5));
  }

  std::printf("--- consistency checker report (%d requests) ---\n%s", num_requests,
              checker.Summary().c_str());
  std::printf("=> place a barrier at every site with a non-zero rate\n");

  posts.DrainReplication();
  notifications.DrainReplication();
  readers.Shutdown();
  return 0;
}
