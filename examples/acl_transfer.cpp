// The explicit `transfer` scenario of §5.1: Alice blocks Bob (lineage
// ℒ_block, written to a slowly-replicating ACL store), then posts (lineage
// ℒ_post). Because the two actions are separate lineages, Antipode's default
// truncation means a barrier on ℒ_post alone does NOT wait for the ACL
// write — Bob's region may see the post while the block is still in flight.
// Calling transfer(ℒ_block, ℒ_post) re-establishes the ordering.
//
//   ./acl_transfer

#include <cstdio>

#include "src/antipode/antipode.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

using namespace antipode;

namespace {

struct AclDemo {
  AclDemo()
      : acl(SlowAcl()), posts(FastPosts()), acl_shim(&acl), post_shim(&posts) {
    registry.Register(&acl_shim);
    registry.Register(&post_shim);
  }

  static ReplicatedStoreOptions SlowAcl() {
    auto options = KvStore::DefaultOptions("acl-storage", {Region::kUs, Region::kEu});
    options.replication.median_millis = 2000.0;  // ACL replicates slowly
    options.replication.sigma = 0.05;
    return options;
  }
  static ReplicatedStoreOptions FastPosts() {
    auto options = KvStore::DefaultOptions("post-storage", {Region::kUs, Region::kEu});
    options.replication.median_millis = 50.0;  // posts replicate quickly
    options.replication.sigma = 0.05;
    return options;
  }

  KvStore acl;
  KvStore posts;
  KvShim acl_shim;
  KvShim post_shim;
  ShimRegistry registry;
};

bool BobWouldSeeInconsistency(AclDemo& demo, bool use_transfer, int round) {
  const std::string block_key = "acl:alice:" + std::to_string(round);
  const std::string post_key = "post:alice:" + std::to_string(round);

  // ℒ_block: Alice blocks Bob.
  Lineage block_lineage;
  {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    block_lineage = LineageApi::Root();
    demo.acl_shim.WriteCtx(Region::kUs, block_key, "blocked:bob");
    block_lineage = *LineageApi::Current();
    LineageApi::Stop();  // lineage ends with the request (default truncation)
  }

  // ℒ_post: Alice posts. The developer may explicitly carry ℒ_block forward.
  Lineage post_lineage;
  {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Root();
    if (use_transfer) {
      LineageApi::Transfer(block_lineage);  // transfer(ℒ_block, ℒ_post)
    }
    demo.post_shim.WriteCtx(Region::kUs, post_key, "alice's post");
    post_lineage = *LineageApi::Current();
  }

  // Region B: the notification pipeline barriers on ℒ_post before showing
  // the post to followers.
  Barrier(post_lineage, Region::kEu, BarrierOptions{.registry = &demo.registry});

  // Inconsistency: post visible while the block is not.
  const bool post_visible = demo.posts.Exists(Region::kEu, post_key);
  const bool block_visible = demo.acl.Exists(Region::kEu, block_key);
  return post_visible && !block_visible;
}

}  // namespace

int main() {
  TimeScale::Set(0.02);
  AclDemo demo;

  const bool without_transfer = BobWouldSeeInconsistency(demo, /*use_transfer=*/false, 0);
  const bool with_transfer = BobWouldSeeInconsistency(demo, /*use_transfer=*/true, 1);

  std::printf("without transfer: Bob %s the post before the block arrived\n",
              without_transfer ? "SAW" : "did not see");
  std::printf("with    transfer: Bob %s the post before the block arrived\n",
              with_transfer ? "SAW" : "did not see");
  std::printf("(transfer(L_block, L_post) makes the barrier wait for the ACL write too)\n");

  demo.acl.DrainReplication();
  demo.posts.DrainReplication();
  return (!with_transfer && without_transfer) ? 0 : 1;
}
