// The paper's running example (§2.2) end-to-end, built on the public API:
// four services (post-upload, post-storage, notifier, follower-notify)
// behind the RPC substrate, a MySQL-like post store and an SNS-like
// notification topic, geo-replicated US (writer side: region A) -> EU
// (followers: region B).
//
// Follows the numbered request flow of Fig. 4: the lineage starts at
// post-upload, travels through RPC baggage into post-storage's shim write,
// returns in the RPC response, rides the notification to region B, and is
// enforced by follower-notify's barrier before the post is read.
//
//   ./post_notification [num_posts]

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/antipode/antipode.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/rpc/rpc.h"
#include "src/store/pubsub_store.h"
#include "src/store/sql_store.h"

using namespace antipode;

namespace {

struct Deployment {
  Deployment()
      : posts(SqlStore::DefaultOptions("post-storage", {Region::kUs, Region::kEu})),
        post_shim(&posts),
        notifications(PubSubStore::DefaultOptions("notifier", {Region::kUs, Region::kEu})),
        notif_shim(&notifications),
        followers_pool(2, "follower-notify") {
    posts.CreateTable("posts", {"id", "content"}, "id");
    post_shim.InstrumentTable("posts");
    registry.Register(&post_shim);
    registry.Register(&notif_shim);

    // ② post-storage service: stores the post through the shim; the updated
    // lineage flows back in the RPC response automatically.
    RpcService* storage = services.RegisterService("post-storage", Region::kUs, 2);
    storage->RegisterMethod("store", [this](const std::string& payload) {
      const size_t colon = payload.find(':');
      Row row{{"id", Value(payload.substr(0, colon))},
              {"content", Value(payload.substr(colon + 1))}};
      post_shim.InsertCtx(Region::kUs, "posts", std::move(row));
      return Result<std::string>(std::string("stored"));
    });

    // ①③ post-upload service: the client-facing entry point.
    RpcService* upload = services.RegisterService("post-upload", Region::kUs, 2);
    upload->RegisterMethod("publish", [this](const std::string& payload) {
      RpcClient client(&services, Region::kUs);
      client.Call("post-storage", "store", payload);
      // ④ notify followers; the lineage (now carrying the post write id)
      // rides inside the notification message.
      const std::string post_id = payload.substr(0, payload.find(':'));
      notif_shim.PublishCtx(Region::kUs, "new-posts", post_id);
      return Result<std::string>(std::string("published"));
    });

    // ⑤⑥⑦⑧ follower-notify in region B: barrier, then read and deliver.
    notif_shim.Subscribe(Region::kEu, "new-posts", &followers_pool,
                         [this](const ConsumedMessage& message) {
                           Barrier(message.lineage, Region::kEu,
                                   BarrierOptions{.registry = &registry});
                           auto row = post_shim.SelectByPkCtx(Region::kEu, "posts",
                                                              Value(message.payload));
                           if (row.ok()) {
                             delivered.fetch_add(1);
                           } else {
                             missing.fetch_add(1);
                           }
                         });
  }

  SqlStore posts;
  SqlShim post_shim;
  PubSubStore notifications;
  PubSubShim notif_shim;
  ShimRegistry registry;
  ServiceRegistry services;
  ThreadPool followers_pool;
  std::atomic<int> delivered{0};
  std::atomic<int> missing{0};
};

}  // namespace

int main(int argc, char** argv) {
  TimeScale::Set(0.02);
  const int num_posts = argc > 1 ? std::atoi(argv[1]) : 20;

  Deployment app;
  for (int i = 0; i < num_posts; ++i) {
    // Each user request starts a fresh context + lineage at the edge.
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Root();
    RpcClient client(&app.services, Region::kUs);
    client.Call("post-upload", "publish",
                "post-" + std::to_string(i) + ":hello from region A");
  }

  while (app.delivered.load() + app.missing.load() < num_posts) {
    SystemClock::Instance().SleepFor(Millis(5));
  }
  std::printf("published %d posts; followers in EU received %d consistently, %d missing\n",
              num_posts, app.delivered.load(), app.missing.load());
  std::printf("(with Antipode's barrier, 'missing' must be 0)\n");

  app.posts.DrainReplication();
  app.notifications.DrainReplication();
  app.services.ShutdownAll();
  app.followers_pool.Shutdown();
  return app.missing.load() == 0 ? 0 : 1;
}
