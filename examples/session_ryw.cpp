// Read-your-writes sessions built on lineages. Alice edits her profile from
// a device in the US, then her traffic fails over to the EU region. Without
// a session guard she may read her *old* profile (the edit has not
// replicated); with `Session::GuardRead` the read blocks until her own
// writes are visible — no centralized ticket service involved (contrast
// with the FlightTracker design discussed in the paper's related work).
//
//   ./session_ryw

#include <cstdio>

#include "src/antipode/antipode.h"
#include "src/antipode/session.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

using namespace antipode;

int main() {
  TimeScale::Set(0.02);

  auto options = KvStore::DefaultOptions("profiles", {Region::kUs, Region::kEu});
  options.replication.median_millis = 800.0;
  KvStore profiles(options);
  KvShim shim(&profiles);
  ShimRegistry registry;
  registry.Register(&shim);

  Session alice("alice");

  // Request 1 (US): Alice updates her profile.
  {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Root();
    alice.Attach();  // start causally after everything the session did
    shim.WriteCtx(Region::kUs, "profile:alice", "bio v2");
    alice.AbsorbCtx();  // the session now depends on this write
  }

  // Request 2 (EU, moments later): Alice opens her profile page. A shim read
  // returns Result<ReadResult>: NotFound while the write has not replicated.
  auto before_guard = shim.Read(Region::kEu, "profile:alice");
  const bool stale_without_guard = !before_guard.ok() || before_guard->value != "bio v2";

  alice.GuardRead(Region::kEu, BarrierOptions{.registry = &registry});
  auto guarded = shim.Read(Region::kEu, "profile:alice");
  const std::string after_guard = guarded.ok() ? guarded->value : "<none>";

  std::printf("immediately after failover: EU read was %s\n",
              stale_without_guard ? "STALE (read-your-writes violated)" : "fresh");
  std::printf("after Session::GuardRead:   EU read returned \"%s\"\n", after_guard.c_str());
  std::printf("session carries %zu dependency (no metadata service, no extra RPCs)\n",
              alice.NumDeps());

  profiles.DrainReplication();
  return after_guard == "bio v2" ? 0 : 1;
}
