#include "src/baseline/flight_tracker.h"

#include <gtest/gtest.h>

#include "src/antipode/kv_shim.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class FlightTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(FlightTrackerTest, TicketAccumulatesSessionWrites) {
  TicketService tickets(Region::kUs);
  tickets.RecordWrite(Region::kUs, "alice", WriteId{"s", "a", 1});
  tickets.RecordWrite(Region::kUs, "alice", WriteId{"s", "b", 1});
  tickets.RecordWrite(Region::kUs, "bob", WriteId{"s", "c", 1});
  EXPECT_EQ(tickets.GetTicket(Region::kUs, "alice").size(), 2u);
  EXPECT_EQ(tickets.GetTicket(Region::kUs, "bob").size(), 1u);
  EXPECT_EQ(tickets.GetTicket(Region::kUs, "carol").size(), 0u);
}

TEST_F(FlightTrackerTest, ClearSessionDropsTicket) {
  TicketService tickets(Region::kUs);
  tickets.RecordWrite(Region::kUs, "alice", WriteId{"s", "a", 1});
  tickets.ClearSession("alice");
  EXPECT_TRUE(tickets.GetTicket(Region::kUs, "alice").empty());
}

TEST_F(FlightTrackerTest, EveryInteractionCountsAnRpc) {
  TicketService tickets(Region::kUs);
  tickets.RecordWrite(Region::kUs, "alice", WriteId{"s", "a", 1});
  tickets.GetTicket(Region::kUs, "alice");
  EXPECT_EQ(tickets.rpc_count(), 2u);
}

TEST_F(FlightTrackerTest, RemoteCallerPaysWanRoundTrip) {
  TicketService tickets(Region::kUs);
  const TimePoint t0 = SystemClock::Instance().Now();
  tickets.GetTicket(Region::kUs, "alice");  // ~intra-region
  const auto local_cost = SystemClock::Instance().Now() - t0;
  const TimePoint t1 = SystemClock::Instance().Now();
  tickets.GetTicket(Region::kSg, "alice");  // cross-WAN
  const auto remote_cost = SystemClock::Instance().Now() - t1;
  EXPECT_GT(remote_cost, local_cost * 5);
}

TEST_F(FlightTrackerTest, BeforeReadEnforcesReadYourWrites) {
  auto options = KvStore::DefaultOptions("ft1", kRegions);
  options.replication.median_millis = 100.0;
  options.replication.sigma = 0.05;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  TicketService tickets(Region::kUs);
  FlightTrackerClient client(&tickets, &registry);

  shim.Write(Region::kUs, "k", "v", Lineage(1));
  client.OnWrite(Region::kUs, "alice", WriteId{"ft1", "k", 1});

  EXPECT_FALSE(store.IsVisible(Region::kEu, "k", 1));
  ASSERT_TRUE(client.BeforeRead(Region::kEu, "alice").ok());
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 1));
}

TEST_F(FlightTrackerTest, BeforeReadTimesOutOnStall) {
  KvStore store(KvStore::DefaultOptions("ft2", kRegions));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  TicketService tickets(Region::kUs);
  FlightTrackerClient client(&tickets, &registry);
  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  shim.Write(Region::kUs, "k", "v", Lineage(1));
  client.OnWrite(Region::kUs, "alice", WriteId{"ft2", "k", 1});
  EXPECT_EQ(client.BeforeRead(Region::kEu, "alice", Millis(50)).code(),
            StatusCode::kDeadlineExceeded);
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
}

TEST_F(FlightTrackerTest, SessionsAreIsolated) {
  auto options = KvStore::DefaultOptions("ft3", kRegions);
  options.replication.median_millis = 1000000.0;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  TicketService tickets(Region::kUs);
  FlightTrackerClient client(&tickets, &registry);
  shim.Write(Region::kUs, "k", "v", Lineage(1));
  client.OnWrite(Region::kUs, "alice", WriteId{"ft3", "k", 1});
  // Bob's session has no ticket entries: his reads are not gated.
  EXPECT_TRUE(client.BeforeRead(Region::kEu, "bob", Millis(100)).ok());
}

}  // namespace
}  // namespace antipode
