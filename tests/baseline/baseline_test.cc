#include <gtest/gtest.h>

#include "src/baseline/potential_tracker.h"
#include "src/baseline/vector_clock.h"

namespace antipode {
namespace {

TEST(VectorClockTest, StartsAtZero) {
  VectorClock clock;
  EXPECT_EQ(clock.Get(0), 0u);
  EXPECT_EQ(clock.NumEntries(), 0u);
}

TEST(VectorClockTest, IncrementAdvancesComponent) {
  VectorClock clock;
  clock.Increment(3);
  clock.Increment(3);
  clock.Increment(7);
  EXPECT_EQ(clock.Get(3), 2u);
  EXPECT_EQ(clock.Get(7), 1u);
  EXPECT_EQ(clock.NumEntries(), 2u);
}

TEST(VectorClockTest, MergeTakesComponentwiseMax) {
  VectorClock a;
  VectorClock b;
  a.Increment(1);
  a.Increment(1);
  b.Increment(1);
  b.Increment(2);
  a.Merge(b);
  EXPECT_EQ(a.Get(1), 2u);
  EXPECT_EQ(a.Get(2), 1u);
}

TEST(VectorClockTest, HappensBeforeOnChain) {
  VectorClock a;
  a.Increment(0);
  VectorClock b = a;
  b.Increment(0);
  EXPECT_TRUE(a.HappensBefore(b));
  EXPECT_FALSE(b.HappensBefore(a));
}

TEST(VectorClockTest, ConcurrentClocks) {
  VectorClock a;
  VectorClock b;
  a.Increment(0);
  b.Increment(1);
  EXPECT_TRUE(a.Concurrent(b));
  EXPECT_FALSE(a.HappensBefore(b));
  EXPECT_FALSE(b.HappensBefore(a));
}

TEST(VectorClockTest, EqualClocksNeitherBeforeNorConcurrent) {
  VectorClock a;
  a.Increment(0);
  VectorClock b = a;
  EXPECT_FALSE(a.HappensBefore(b));
  EXPECT_FALSE(a.Concurrent(b));
  EXPECT_TRUE(a == b);
}

TEST(VectorClockTest, MessageDeliveryOrdering) {
  // Classic send/receive: sender ticks, receiver merges + ticks.
  VectorClock sender;
  sender.Increment(0);
  VectorClock receiver;
  receiver.Merge(sender);
  receiver.Increment(1);
  EXPECT_TRUE(sender.HappensBefore(receiver));
}

TEST(VectorClockTest, SerializeRoundTrip) {
  VectorClock clock;
  clock.Increment(5);
  clock.Increment(5);
  clock.Increment(900);
  VectorClock restored = VectorClock::Deserialize(clock.Serialize());
  EXPECT_TRUE(restored == clock);
}

TEST(VectorClockTest, WireSizeGrowsWithEntries) {
  VectorClock clock;
  const size_t empty = clock.WireSize();
  for (uint32_t p = 0; p < 50; ++p) {
    clock.Increment(p);
  }
  EXPECT_GT(clock.WireSize(), empty + 50);
}

TEST(PotentialTrackerTest, AccumulatesOwnWrites) {
  PotentialCausalityTracker tracker;
  tracker.OnWrite(WriteId{"s", "a", 1});
  tracker.OnWrite(WriteId{"s", "b", 1});
  EXPECT_EQ(tracker.NumDeps(), 2u);
}

TEST(PotentialTrackerTest, ReadInheritsFullHistory) {
  PotentialCausalityTracker writer;
  writer.OnWrite(WriteId{"s", "a", 1});
  writer.OnWrite(WriteId{"s", "b", 1});
  PotentialCausalityTracker reader;
  reader.OnReadFrom(writer);
  reader.OnWrite(WriteId{"s", "c", 1});
  EXPECT_EQ(reader.NumDeps(), 3u);
}

TEST(PotentialTrackerTest, GrowsUnboundedAcrossChain) {
  PotentialCausalityTracker prev;
  size_t last = 0;
  for (int depth = 0; depth < 16; ++depth) {
    PotentialCausalityTracker current;
    current.OnReadFrom(prev);
    for (int w = 0; w < 3; ++w) {
      current.OnWrite(WriteId{"s", "d" + std::to_string(depth) + "w" + std::to_string(w), 1});
    }
    EXPECT_GT(current.NumDeps(), last);
    last = current.NumDeps();
    prev = current;
  }
  EXPECT_EQ(last, 16u * 3u);
}

TEST(PotentialTrackerTest, WireSizeMatchesLineageEncoding) {
  PotentialCausalityTracker tracker;
  tracker.OnWrite(WriteId{"store", "key", 1});
  Lineage equivalent;
  equivalent.Append(WriteId{"store", "key", 1});
  EXPECT_EQ(tracker.WireSize(), equivalent.WireSize());
}

}  // namespace
}  // namespace antipode
