// The Shim API layer: write/read/wait per datastore, lineage propagation
// through stored values, and the ShimRegistry.

#include <gtest/gtest.h>

#include "src/antipode/antipode.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class ShimsTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }
};

// ---- KvShim ----------------------------------------------------------------

TEST_F(ShimsTest, KvWriteReturnsExtendedLineage) {
  KvStore store(KvStore::DefaultOptions("kvs1", kRegions));
  KvShim shim(&store);
  Lineage lineage(1);
  lineage = shim.Write(Region::kUs, "k", "v", std::move(lineage));
  EXPECT_EQ(lineage.Size(), 1u);
  EXPECT_TRUE(lineage.Contains(WriteId{"kvs1", "k", 1}));
}

TEST_F(ShimsTest, KvReadReturnsValueAndWriterLineage) {
  KvStore store(KvStore::DefaultOptions("kvs2", kRegions));
  KvShim shim(&store);
  Lineage writer_lineage(1);
  writer_lineage.Append(WriteId{"otherstore", "dep", 5});
  shim.Write(Region::kUs, "k", "v", writer_lineage);
  auto result = shim.Read(Region::kUs, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, "v");
  // The read's lineage contains the writer's dependency set plus the write's
  // own identifier (reads-from-lineage, §4.2).
  EXPECT_TRUE(result->lineage.Contains(WriteId{"otherstore", "dep", 5}));
  EXPECT_TRUE(result->lineage.Contains(WriteId{"kvs2", "k", 1}));
}

TEST_F(ShimsTest, KvReadMissingKey) {
  KvStore store(KvStore::DefaultOptions("kvs3", kRegions));
  KvShim shim(&store);
  auto result = shim.Read(Region::kUs, "nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ShimsTest, KvCtxVariantsFlowThroughContext) {
  KvStore store(KvStore::DefaultOptions("kvs4", kRegions));
  KvShim shim(&store);
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  shim.WriteCtx(Region::kUs, "k", "v");
  EXPECT_TRUE(LineageApi::Current()->Contains(WriteId{"kvs4", "k", 1}));

  // A different request reading the value inherits the writer's lineage.
  ScopedContext reader(RequestContext(2));
  LineageApi::Root();
  auto read = shim.ReadCtx(Region::kUs, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v");
  EXPECT_TRUE(LineageApi::Current()->Contains(WriteId{"kvs4", "k", 1}));
}

TEST_F(ShimsTest, KvWaitBlocksUntilReplicated) {
  auto options = KvStore::DefaultOptions("kvs5", kRegions);
  options.replication.median_millis = 100.0;
  options.replication.sigma = 0.05;
  KvStore store(options);
  KvShim shim(&store);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  const WriteId id{"kvs5", "k", 1};
  EXPECT_FALSE(shim.IsVisible(Region::kEu, id));
  EXPECT_TRUE(shim.Wait(Region::kEu, id, std::chrono::seconds(5)).ok());
  EXPECT_TRUE(shim.IsVisible(Region::kEu, id));
}

TEST_F(ShimsTest, KvWaitTimesOut) {
  auto options = KvStore::DefaultOptions("kvs6", kRegions);
  options.replication.median_millis = 1000000.0;
  KvStore store(options);
  KvShim shim(&store);
  shim.Write(Region::kUs, "k", "v", Lineage(1));
  EXPECT_EQ(shim.Wait(Region::kEu, WriteId{"kvs6", "k", 1}, Millis(30)).code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(ShimsTest, WaitLineageFiltersByStore) {
  KvStore store(KvStore::DefaultOptions("kvs7", kRegions));
  KvShim shim(&store);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  lineage.Append(WriteId{"unrelated-store", "x", 99});
  // Only kvs7 deps are enforced; the unrelated store's id is ignored here.
  EXPECT_TRUE(shim.WaitLineage(Region::kUs, lineage,
                               LineageWaitOptions{.wait = {.timeout = std::chrono::seconds(1)}})
                  .ok());
}

// ---- SqlShim ----------------------------------------------------------------

TEST_F(ShimsTest, SqlShimStripsLineageColumnOnRead) {
  SqlStore store(SqlStore::DefaultOptions("sqls1", kRegions));
  store.CreateTable("posts", {"id", "text"}, "id");
  SqlShim shim(&store);
  ASSERT_TRUE(shim.InstrumentTable("posts").ok());

  Lineage lineage(1);
  lineage.Append(WriteId{"acl", "alice", 2});
  auto updated = shim.Insert(Region::kUs, "posts", Row{{"id", Value("p1")}, {"text", Value("t")}},
                             lineage);
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(updated->Contains(WriteId{"sqls1", "posts/p1", 1}));

  auto result = shim.SelectByPk(Region::kUs, "posts", Value("p1"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->row.Has(kLineageField));
  EXPECT_EQ(result->row.Get("text"), Value("t"));
  EXPECT_TRUE(result->lineage.Contains(WriteId{"acl", "alice", 2}));
  EXPECT_TRUE(result->lineage.Contains(WriteId{"sqls1", "posts/p1", 1}));
}

TEST_F(ShimsTest, SqlShimInstrumentAddsIndexOverhead) {
  SqlStore store(SqlStore::DefaultOptions("sqls2", kRegions));
  store.CreateTable("t", {"id"}, "id");
  SqlShim shim(&store);
  shim.InstrumentTable("t", /*with_index=*/true);
  EXPECT_TRUE(store.HasIndex("t", kLineageField));
  shim.Insert(Region::kUs, "t", Row{{"id", Value("1")}}, Lineage(1));
  EXPECT_GT(store.metrics().MeanObjectBytes(), SqlStore::kIndexEntryOverheadBytes / 2);
}

TEST_F(ShimsTest, SqlShimInsertUnknownTableFails) {
  SqlStore store(SqlStore::DefaultOptions("sqls3", kRegions));
  SqlShim shim(&store);
  auto result = shim.Insert(Region::kUs, "ghosts", Row{{"id", Value("1")}}, Lineage(1));
  EXPECT_FALSE(result.ok());
}

// ---- DocShim ----------------------------------------------------------------

TEST_F(ShimsTest, DocShimRoundTripWithLineageField) {
  DocStore store(DocStore::DefaultOptions("docs1", kRegions));
  DocShim shim(&store);
  Lineage lineage(1);
  lineage.Append(WriteId{"upstream", "u", 3});
  lineage = shim.InsertDoc(Region::kUs, "posts", "p1", Document{{"text", Value("hello")}},
                           std::move(lineage));
  EXPECT_TRUE(lineage.Contains(WriteId{"docs1", "posts/p1", 1}));

  auto result = shim.FindById(Region::kUs, "posts", "p1");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->doc.Has(kLineageField));
  EXPECT_TRUE(result->lineage.Contains(WriteId{"upstream", "u", 3}));
  EXPECT_TRUE(result->lineage.Contains(WriteId{"docs1", "posts/p1", 1}));
}

TEST_F(ShimsTest, DocShimCtxTransfersOnRead) {
  DocStore store(DocStore::DefaultOptions("docs2", kRegions));
  DocShim shim(&store);
  {
    ScopedContext writer(RequestContext(1));
    LineageApi::Root();
    shim.InsertDocCtx(Region::kUs, "c", "d", Document{{"a", Value("1")}});
  }
  ScopedContext reader(RequestContext(2));
  LineageApi::Root();
  auto doc = shim.FindByIdCtx(Region::kUs, "c", "d");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(LineageApi::Current()->Contains(WriteId{"docs2", "c/d", 1}));
}

// ---- ObjectShim ---------------------------------------------------------------

TEST_F(ShimsTest, ObjectShimRoundTrip) {
  ObjectStore store(ObjectStore::DefaultOptions("objs1", kRegions));
  ObjectShim shim(&store);
  Lineage lineage = shim.PutObject(Region::kUs, "b", "k", "bytes", Lineage(1));
  EXPECT_TRUE(lineage.Contains(WriteId{"objs1", "b/k", 1}));
  auto result = shim.GetObject(Region::kUs, "b", "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, "bytes");
  EXPECT_TRUE(result->lineage.Contains(WriteId{"objs1", "b/k", 1}));
}

// ---- DynamoShim ---------------------------------------------------------------

TEST_F(ShimsTest, DynamoShimWaitUsesStrongReads) {
  auto options = DynamoStore::DefaultOptions("dys1", kRegions);
  options.replication.median_millis = 1000000.0;  // local replica never catches up in test
  DynamoStore store(options);
  DynamoShim shim(&store);
  auto lineage = shim.PutItem(Region::kUs, "t", "k", Document{{"a", Value("1")}}, Lineage(1));
  ASSERT_TRUE(lineage.ok());
  const WriteId id{"dys1", "t/k", 1};
  // Strong-read wait resolves promptly even though the local replica lags…
  EXPECT_TRUE(shim.Wait(Region::kEu, id, std::chrono::seconds(5)).ok());
  // …while the dry-run probe (local view) still reports it as not visible.
  EXPECT_FALSE(shim.IsVisible(Region::kEu, id));
  // And consistent reads then observe the item.
  auto result = shim.GetItemConsistent(Region::kEu, "t", "k");
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(shim.GetItem(Region::kEu, "t", "k").ok());
}

TEST_F(ShimsTest, DynamoShimWaitTimesOutOnMissingItem) {
  DynamoStore store(DynamoStore::DefaultOptions("dys2", kRegions));
  DynamoShim shim(&store);
  EXPECT_EQ(shim.Wait(Region::kUs, WriteId{"dys2", "t/never", 1}, Millis(30)).code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(ShimsTest, DynamoShimStripsLineageField) {
  DynamoStore store(DynamoStore::DefaultOptions("dys3", kRegions));
  DynamoShim shim(&store);
  shim.PutItem(Region::kUs, "t", "k", Document{{"a", Value("1")}}, Lineage(1));
  auto result = shim.GetItem(Region::kUs, "t", "k");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->item.Has(kLineageField));
}

// ---- Queue / PubSub shims -----------------------------------------------------

TEST_F(ShimsTest, QueueShimDeliversLineageToConsumer) {
  QueueStore store(QueueStore::DefaultOptions("qs1", kRegions));
  QueueShim shim(&store);
  ThreadPool pool(1, "consumer");
  std::atomic<bool> got{false};
  Lineage seen;
  std::mutex mu;
  shim.Subscribe(Region::kEu, "q", &pool, [&](const ConsumedMessage& message) {
    std::lock_guard<std::mutex> lock(mu);
    seen = message.lineage;
    // The consumer's context carries the message lineage.
    auto current = LineageApi::Current();
    got = current.has_value() && current->Size() == message.lineage.Size();
  });
  Lineage lineage(1);
  lineage.Append(WriteId{"mongo", "posts/1", 4});
  shim.Publish(Region::kUs, "q", "payload", lineage);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (got.load()) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_TRUE(got.load());
  EXPECT_TRUE(seen.Contains(WriteId{"mongo", "posts/1", 4}));
  EXPECT_EQ(seen.DepsForStore("qs1").size(), 1u);  // the message's own write id
  pool.Shutdown();
}

TEST_F(ShimsTest, PubSubShimPublishCtxAppendsMessageId) {
  PubSubStore store(PubSubStore::DefaultOptions("pss1", kRegions));
  PubSubShim shim(&store);
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  shim.PublishCtx(Region::kUs, "topic", "m");
  EXPECT_EQ(LineageApi::Current()->DepsForStore("pss1").size(), 1u);
}

// ---- ShimRegistry --------------------------------------------------------------

TEST_F(ShimsTest, RegistryRegisterLookupUnregister) {
  KvStore store(KvStore::DefaultOptions("regs1", kRegions));
  KvShim shim(&store);
  ShimRegistry registry;
  EXPECT_EQ(registry.Lookup("regs1"), nullptr);
  registry.Register(&shim);
  EXPECT_EQ(registry.Lookup("regs1"), &shim);
  EXPECT_EQ(registry.RegisteredStores(), std::vector<std::string>{"regs1"});
  registry.Unregister("regs1");
  EXPECT_EQ(registry.Lookup("regs1"), nullptr);
}

TEST_F(ShimsTest, RegistryOptionsRejectDuplicateRegistration) {
  KvStore store(KvStore::DefaultOptions("regs4", kRegions));
  KvShim first(&store);
  KvShim second(&store);
  ShimRegistry registry(ShimRegistry::Options{.name = "strict", .allow_replace = false});
  EXPECT_TRUE(registry.Register(&first).ok());
  auto replaced = registry.Register(&second);
  EXPECT_EQ(replaced.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Lookup("regs4"), &first);

  // The default (replace-allowed) registry keeps the historical semantics.
  ShimRegistry lax;
  EXPECT_TRUE(lax.Register(&first).ok());
  EXPECT_TRUE(lax.Register(&second).ok());
  EXPECT_EQ(lax.Lookup("regs4"), &second);
}

TEST_F(ShimsTest, RegistryClear) {
  KvStore a(KvStore::DefaultOptions("regs2", kRegions));
  KvStore b(KvStore::DefaultOptions("regs3", kRegions));
  KvShim shim_a(&a);
  KvShim shim_b(&b);
  ShimRegistry registry;
  registry.Register(&shim_a);
  registry.Register(&shim_b);
  EXPECT_EQ(registry.RegisteredStores().size(), 2u);
  registry.Clear();
  EXPECT_TRUE(registry.RegisteredStores().empty());
}

}  // namespace
}  // namespace antipode
