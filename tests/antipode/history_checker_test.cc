#include "src/antipode/history_checker.h"

#include <gtest/gtest.h>

#include "src/antipode/barrier.h"
#include "src/antipode/kv_shim.h"
#include "src/common/random.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

Lineage MakeLineage(std::initializer_list<WriteId> deps) {
  Lineage lineage(1);
  for (const auto& dep : deps) {
    lineage.Append(dep);
  }
  return lineage;
}

TEST(HistoryCheckerTest, EmptyHistoryIsConsistent) {
  XcyHistoryChecker checker;
  EXPECT_TRUE(checker.Consistent());
  EXPECT_EQ(checker.EventCount(), 0u);
}

TEST(HistoryCheckerTest, FreshReadWithNoDependenciesIsFine) {
  XcyHistoryChecker checker;
  checker.ObserveRead(1, "kv", "k", 0, Lineage());
  checker.ObserveRead(1, "kv", "k", 3, Lineage());
  EXPECT_TRUE(checker.Consistent());
}

TEST(HistoryCheckerTest, PostNotificationViolationDetected) {
  // The paper's running example as a history: writer writes post then
  // notification (same lineage); the reader reads the notification (and thus
  // inherits the post dependency) but then misses the post.
  XcyHistoryChecker checker;
  const WriteId post{"post-storage", "post-1", 1};
  const WriteId notif{"notifier", "n-1", 1};

  checker.ObserveWrite(/*process=*/1, post, Lineage());
  checker.ObserveWrite(1, notif, MakeLineage({post}));

  // Reader observes the notification; the stored lineage names the post.
  checker.ObserveRead(/*process=*/2, "notifier", "n-1", 1, MakeLineage({post}));
  // The post read returns "not found" (version 0): XCY violation.
  checker.ObserveRead(2, "post-storage", "post-1", 0, Lineage());

  ASSERT_FALSE(checker.Consistent());
  const auto violations = checker.violations();
  ASSERT_EQ(violations.size(), 1u);
  const auto& violation = violations[0];
  EXPECT_EQ(violation.process, 2u);
  EXPECT_EQ(violation.required, post);
  EXPECT_EQ(violation.observed_version, 0u);
  EXPECT_NE(violation.ToString().find("post-storage"), std::string::npos);
}

TEST(HistoryCheckerTest, ConsistentPostNotificationPasses) {
  XcyHistoryChecker checker;
  const WriteId post{"post-storage", "post-1", 1};
  checker.ObserveWrite(1, post, Lineage());
  checker.ObserveRead(2, "notifier", "n-1", 1, MakeLineage({post}));
  checker.ObserveRead(2, "post-storage", "post-1", 1, MakeLineage({}));
  EXPECT_TRUE(checker.Consistent());
}

TEST(HistoryCheckerTest, StaleVersionAfterDependencyIsViolation) {
  XcyHistoryChecker checker;
  // Reader becomes dependent on version 5 of k, then reads version 3.
  checker.ObserveRead(1, "kv", "other", 1, MakeLineage({WriteId{"kv", "k", 5}}));
  checker.ObserveRead(1, "kv", "k", 3, Lineage());
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].required.version, 5u);
  EXPECT_EQ(checker.violations()[0].observed_version, 3u);
}

TEST(HistoryCheckerTest, NewerVersionSatisfiesDependency) {
  XcyHistoryChecker checker;
  checker.ObserveRead(1, "kv", "other", 1, MakeLineage({WriteId{"kv", "k", 5}}));
  checker.ObserveRead(1, "kv", "k", 7, Lineage());
  EXPECT_TRUE(checker.Consistent());
}

TEST(HistoryCheckerTest, OwnWritesMustBeObserved) {
  // Read-your-writes falls out of rule 1: a process that wrote v2 cannot
  // then read v1.
  XcyHistoryChecker checker;
  checker.ObserveWrite(1, WriteId{"kv", "k", 2}, Lineage());
  checker.ObserveRead(1, "kv", "k", 1, Lineage());
  EXPECT_FALSE(checker.Consistent());
}

TEST(HistoryCheckerTest, MessageCarriesFrontierAcrossProcesses) {
  XcyHistoryChecker checker;
  checker.ObserveWrite(1, WriteId{"kv", "k", 4}, Lineage());
  checker.ObserveMessage(1, 2);
  checker.ObserveRead(2, "kv", "k", 3, Lineage());  // stale after the message
  EXPECT_FALSE(checker.Consistent());
}

TEST(HistoryCheckerTest, ProcessesAreIndependentWithoutCommunication) {
  XcyHistoryChecker checker;
  checker.ObserveWrite(1, WriteId{"kv", "k", 4}, Lineage());
  // Process 2 never communicated with 1: reading an old version is allowed
  // (the writes are concurrent under ↝).
  checker.ObserveRead(2, "kv", "k", 1, Lineage());
  EXPECT_TRUE(checker.Consistent());
}

TEST(HistoryCheckerTest, TransitivityAcrossThreeProcesses) {
  XcyHistoryChecker checker;
  checker.ObserveWrite(1, WriteId{"kv", "a", 1}, Lineage());
  checker.ObserveMessage(1, 2);
  checker.ObserveWrite(2, WriteId{"kv", "b", 1}, MakeLineage({WriteId{"kv", "a", 1}}));
  checker.ObserveMessage(2, 3);
  checker.ObserveRead(3, "kv", "a", 0, Lineage());  // rule 3 violation
  EXPECT_FALSE(checker.Consistent());
}

TEST(HistoryCheckerTest, ResetClearsState) {
  XcyHistoryChecker checker;
  checker.ObserveWrite(1, WriteId{"kv", "k", 2}, Lineage());
  checker.ObserveRead(1, "kv", "k", 1, Lineage());
  checker.Reset();
  EXPECT_TRUE(checker.Consistent());
  EXPECT_EQ(checker.EventCount(), 0u);
}

// End-to-end: run the real substrate with and without a barrier, feed the
// observed history to the checker, and confirm it classifies both correctly.
TEST(HistoryCheckerTest, AgreesWithRuntimeOnRealExecutions) {
  TimeScale::Set(0.005);
  for (const bool use_barrier : {false, true}) {
    auto options = KvStore::DefaultOptions(
        std::string("hist-kv-") + (use_barrier ? "b" : "nb"), {Region::kUs, Region::kEu});
    options.replication.median_millis = 300.0;
    options.replication.sigma = 0.05;
    KvStore store(options);
    KvShim shim(&store);
    ShimRegistry registry;
    registry.Register(&shim);
    XcyHistoryChecker checker;

    // Writer (process 1).
    Lineage lineage = shim.Write(Region::kUs, "post", "content", Lineage(1));
    checker.ObserveWrite(1, WriteId{store.name(), "post", 1}, Lineage(1));

    // Reader (process 2) learns of the post via the lineage (message-like).
    if (use_barrier) {
      ASSERT_TRUE(Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
    }
    auto result = shim.Read(Region::kEu, "post");
    checker.ObserveRead(2, store.name(), "irrelevant-trigger", 1, lineage);
    checker.ObserveRead(2, store.name(), "post", result.ok() ? 1 : 0,
                        result.ok() ? result->lineage : Lineage());

    EXPECT_EQ(checker.Consistent(), use_barrier);
  }
  TimeScale::Set(1.0);
}

}  // namespace
}  // namespace antipode
