// Concurrency stress: many writers, barriers, sessions, and dry-run probes
// hammering the same stores from multiple threads.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/antipode/antipode.h"
#include "src/common/random.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.005); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(StressTest, ConcurrentWritersAndBarriers) {
  auto options = KvStore::DefaultOptions("stress1", kRegions);
  options.replication.median_millis = 30.0;
  options.replication.sigma = 0.5;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        RequestContext context;
        ScopedContext scoped(std::move(context));
        LineageApi::Root();
        const std::string key =
            "k" + std::to_string(t) + "-" + std::to_string(rng.NextBelow(16));
        shim.WriteCtx(Region::kUs, key, "v" + std::to_string(i));
        Status status = BarrierCtx(Region::kEu, BarrierOptions{.registry = &registry});
        if (!status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Post-barrier, the write (or newer) must be readable remotely.
        if (!shim.Read(Region::kEu, key).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(StressTest, SharedSessionAcrossThreads) {
  auto options = KvStore::DefaultOptions("stress2", kRegions);
  options.replication.median_millis = 20.0;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Session session("shared");

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        RequestContext context;
        ScopedContext scoped(std::move(context));
        LineageApi::Root();
        shim.WriteCtx(Region::kUs, "s" + std::to_string(t) + "-" + std::to_string(i), "v");
        session.AbsorbCtx();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(session.NumDeps(), 6u * 30u);
  ASSERT_TRUE(session.GuardRead(Region::kEu, BarrierOptions{.registry = &registry}).ok());
  EXPECT_TRUE(session.IsReadConsistent(Region::kEu, &registry));
}

TEST_F(StressTest, DryRunsRaceWithReplication) {
  auto options = KvStore::DefaultOptions("stress3", kRegions);
  options.replication.median_millis = 10.0;
  options.replication.sigma = 1.0;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  std::atomic<bool> stop{false};
  std::atomic<int> probes{0};
  std::thread prober([&] {
    while (!stop.load()) {
      Lineage lineage(1);
      lineage.Append(WriteId{"stress3", "hot", 1});
      (void)BarrierDryRun(lineage, Region::kEu, &registry);
      probes.fetch_add(1);
    }
  });
  for (int i = 0; i < 300; ++i) {
    shim.Write(Region::kUs, "hot", "v" + std::to_string(i), Lineage(1));
  }
  store.DrainReplication();
  stop = true;
  prober.join();
  EXPECT_GT(probes.load(), 0);
  // After the drain, the dry run must be stable-consistent.
  Lineage lineage(1);
  lineage.Append(WriteId{"stress3", "hot", 300});
  EXPECT_TRUE(BarrierDryRun(lineage, Region::kEu, &registry).consistent);
}

TEST_F(StressTest, ManyStoresOneBarrier) {
  constexpr int kStores = 12;
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<KvShim>> shims;
  ShimRegistry registry;
  for (int i = 0; i < kStores; ++i) {
    auto options = KvStore::DefaultOptions("stress4-" + std::to_string(i), kRegions);
    options.replication.median_millis = 10.0 + 10.0 * i;
    options.replication.sigma = 0.3;
    stores.push_back(std::make_unique<KvStore>(std::move(options)));
    shims.push_back(std::make_unique<KvShim>(stores.back().get()));
    registry.Register(shims.back().get());
  }
  RequestContext context;
  ScopedContext scoped(std::move(context));
  LineageApi::Root();
  for (int i = 0; i < kStores; ++i) {
    shims[static_cast<size_t>(i)]->WriteCtx(Region::kUs, "k", "v");
  }
  ASSERT_EQ(LineageApi::Current()->Size(), static_cast<size_t>(kStores));
  ASSERT_TRUE(BarrierCtx(Region::kEu, BarrierOptions{.registry = &registry}).ok());
  for (int i = 0; i < kStores; ++i) {
    EXPECT_TRUE(stores[static_cast<size_t>(i)]->IsVisible(Region::kEu, "k", 1)) << i;
  }
}

}  // namespace
}  // namespace antipode
