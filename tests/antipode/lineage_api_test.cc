#include "src/antipode/lineage_api.h"

#include <gtest/gtest.h>

#include "src/context/merge.h"
#include "src/context/request_context.h"

namespace antipode {
namespace {

WriteId Id(const std::string& key, uint64_t version = 1) {
  return WriteId{"store", key, version};
}

TEST(LineageApiTest, NoContextMeansNoLineage) {
  EXPECT_EQ(LineageApi::Current(), std::nullopt);
  LineageApi::Append(Id("k"));  // must not crash
  LineageApi::Stop();
}

TEST(LineageApiTest, RootInstallsEmptyLineage) {
  ScopedContext scoped(RequestContext(1));
  Lineage lineage = LineageApi::Root();
  EXPECT_TRUE(lineage.Empty());
  EXPECT_NE(lineage.id(), 0u);
  auto current = LineageApi::Current();
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->id(), lineage.id());
}

TEST(LineageApiTest, RootIdsAreUnique) {
  ScopedContext scoped(RequestContext(1));
  const uint64_t a = LineageApi::Root().id();
  const uint64_t b = LineageApi::Root().id();
  EXPECT_NE(a, b);
}

TEST(LineageApiTest, AppendUpdatesCurrent) {
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  LineageApi::Append(Id("k1"));
  LineageApi::Append(Id("k2"));
  auto current = LineageApi::Current();
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->Size(), 2u);
  EXPECT_TRUE(current->Contains(Id("k1")));
}

TEST(LineageApiTest, RemoveDropsDependency) {
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  LineageApi::Append(Id("k1"));
  LineageApi::Remove(Id("k1"));
  EXPECT_TRUE(LineageApi::Current()->Empty());
}

TEST(LineageApiTest, StopDiscardsLineage) {
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  LineageApi::Append(Id("k1"));
  LineageApi::Stop();
  EXPECT_EQ(LineageApi::Current(), std::nullopt);
}

TEST(LineageApiTest, TransferMergesIntoCurrent) {
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  LineageApi::Append(Id("mine"));
  Lineage other;
  other.Append(Id("theirs"));
  LineageApi::Transfer(other);
  auto current = LineageApi::Current();
  EXPECT_TRUE(current->Contains(Id("mine")));
  EXPECT_TRUE(current->Contains(Id("theirs")));
}

TEST(LineageApiTest, TransferWithoutLineageInstallsCopy) {
  ScopedContext scoped(RequestContext(1));
  Lineage other(42);
  other.Append(Id("dep"));
  LineageApi::Transfer(other);
  auto current = LineageApi::Current();
  ASSERT_TRUE(current.has_value());
  EXPECT_TRUE(current->Contains(Id("dep")));
}

TEST(LineageApiTest, RootReplacesExistingLineage) {
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  LineageApi::Append(Id("old"));
  LineageApi::Root();
  EXPECT_TRUE(LineageApi::Current()->Empty());
}

TEST(LineageApiTest, LineageSurvivesContextSerialization) {
  ScopedContext scoped(RequestContext(9));
  LineageApi::Root();
  LineageApi::Append(Id("k", 5));
  const std::string blob = RequestContext::SerializeCurrent();
  ScopedContext other(RequestContext::Deserialize(blob));
  auto current = LineageApi::Current();
  ASSERT_TRUE(current.has_value());
  EXPECT_TRUE(current->Contains(Id("k", 5)));
}

TEST(LineageApiTest, MergerUnionsLineagesAcrossContexts) {
  LineageApi::EnsureMergerRegistered();
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  LineageApi::Append(Id("caller-dep"));

  Lineage remote;
  remote.Append(Id("callee-dep"));
  Baggage incoming;
  incoming.Set(kLineageBaggageKey, remote.Serialize());
  BaggageMergerRegistry::Instance().MergeInto(*RequestContext::Current(), incoming);

  auto current = LineageApi::Current();
  EXPECT_TRUE(current->Contains(Id("caller-dep")));
  EXPECT_TRUE(current->Contains(Id("callee-dep")));
}

TEST(LineageApiTest, NestedContextsHaveIndependentLineages) {
  ScopedContext outer(RequestContext(1));
  LineageApi::Root();
  LineageApi::Append(Id("outer"));
  {
    ScopedContext inner(RequestContext(2));
    LineageApi::Root();
    LineageApi::Append(Id("inner"));
    EXPECT_FALSE(LineageApi::Current()->Contains(Id("outer")));
  }
  EXPECT_TRUE(LineageApi::Current()->Contains(Id("outer")));
  EXPECT_FALSE(LineageApi::Current()->Contains(Id("inner")));
}

}  // namespace
}  // namespace antipode
